"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's main flows:

* ``specs``    — print a preset machine's Table 1-style specification,
* ``learn``    — run the Figure 1 pipeline and write the model as JSON,
* ``monitor``  — run a workload under live monitoring, print per-period
  estimates (optionally CSV/JSONL output),
* ``serve``    — run a workload under monitoring while streaming the
  estimates to TCP telemetry subscribers,
* ``subscribe`` — connect to a telemetry server and print its stream,
* ``relay``    — subscribe to upstream telemetry server(s) and re-serve
  the merged stream downstream (a node in a relay tree),
* ``replay``   — the Figure 3 experiment: SPECjbb vs PowerSpy with an
  ASCII chart and the median error.
* ``matrix``   — scenario-matrix chaos campaigns: ``matrix run`` expands
  a declarative TOML into cells, checks invariants and shrinks failing
  cells; ``matrix report`` summarizes a saved campaign report.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import signal
import sys
import threading
import time
from pathlib import Path
from typing import List, Optional

from repro.analysis.report import ascii_chart, format_metrics, render_table
from repro.analysis.traces import PowerTrace, compare
from repro.core.model import PowerModel
from repro.core.monitor import PowerAPI
from repro.core.pipeline import PipelineSpec, TelemetrySpec
from repro.core.reporters import ConsoleReporter, CsvReporter, InMemoryReporter
from repro.core.sampling import SamplingCampaign, learn_power_model
from repro.errors import ReproError
from repro.faults import FaultPlan
from repro.os.kernel import SimKernel
from repro.powermeter.powerspy import PowerSpy
from repro.simcpu.spec import PRESETS, preset
from repro.workloads.specjbb import SpecJbbWorkload
from repro.workloads.stress import CpuStress, MemoryStress, MixedStress

WORKLOADS = {
    "cpu": lambda duration: CpuStress(utilization=1.0, threads=4,
                                      duration_s=duration),
    "memory": lambda duration: MemoryStress(utilization=1.0, threads=4,
                                            duration_s=duration),
    "mixed": lambda duration: MixedStress(utilization=1.0, threads=4,
                                          duration_s=duration),
    "specjbb": lambda duration: SpecJbbWorkload(duration_s=duration,
                                                threads=4),
}


class _GracefulStop:
    """SIGINT/SIGTERM handlers that request a stop instead of dying.

    ``monitor`` and ``serve`` advance the simulation in period-sized
    chunks and poll :attr:`requested` between chunks, so a signal ends
    the run at the next period boundary with reporters flushed and the
    telemetry server shut down cleanly (exit code 0) rather than with a
    KeyboardInterrupt traceback and a torn output file.  Handlers are
    only installed from the main thread (signal.signal raises anywhere
    else — e.g. when tests drive ``main()`` from a worker thread) and
    the previous handlers are restored on exit.
    """

    _SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self.requested = False
        self.signal_name: Optional[str] = None
        self._saved = {}

    def __enter__(self) -> "_GracefulStop":
        if threading.current_thread() is threading.main_thread():
            for signum in self._SIGNALS:
                self._saved[signum] = signal.signal(signum, self._handle)
        return self

    def __exit__(self, *_exc) -> None:
        for signum, previous in self._saved.items():
            signal.signal(signum, previous)
        self._saved.clear()

    def _handle(self, signum, _frame) -> None:
        self.requested = True
        self.signal_name = signal.Signals(signum).name


def _run_interruptible(api, duration_s: float, period_s: float,
                       stop: _GracefulStop, pace: float = 0.0) -> None:
    """Advance *api* for *duration_s*, one period at a time.

    Equivalent to ``api.run(duration_s)`` (the virtual clock steps in
    kernel quanta either way) but checks *stop* between periods and,
    with ``pace > 0``, sleeps ``period_s * pace`` wall-clock seconds per
    virtual period so wall-clock tools (subscribers, signal senders)
    can interleave with the run.
    """
    remaining = duration_s
    while remaining > 1e-9 and not stop.requested:
        step = min(period_s, remaining)
        api.run(step)
        remaining -= step
        if pace > 0 and remaining > 1e-9 and not stop.requested:
            time.sleep(step * pace)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PowerAPI reproduction: learn CPU power models and "
                    "monitor per-process power on a simulated machine.")
    parser.add_argument("--cpu", default="i3-2120",
                        choices=sorted(PRESETS),
                        help="machine preset (default: the paper's i3-2120)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("specs", help="print the machine specification")

    learn = commands.add_parser("learn", help="learn a power model")
    learn.add_argument("--output", type=Path, default=Path("model.json"),
                       help="where to write the model JSON")
    learn.add_argument("--quick", action="store_true",
                       help="sample only the ladder endpoints (faster)")
    learn.add_argument("--workers", type=int, default=1,
                       help="processes for the sampling campaign "
                            "(1 = serial, 0 = one per CPU); the learned "
                            "model is identical for any value")

    monitor = commands.add_parser("monitor",
                                  help="monitor a workload's power")
    monitor.add_argument("--model", type=Path, default=None,
                         help="model JSON (learned on the fly if omitted)")
    monitor.add_argument("--workload", default="cpu",
                         choices=sorted(WORKLOADS))
    monitor.add_argument("--duration", type=float, default=30.0)
    monitor.add_argument("--period", type=float, default=1.0)
    monitor.add_argument("--csv", type=Path, default=None,
                         help="also write per-period CSV here")
    monitor.add_argument("--faults", default=None, metavar="SPEC",
                         help="inject faults while monitoring; SPEC is "
                              "';'-separated kind@time[:args] entries "
                              "(meter-dropout@T:DOWN, pid-exit@T[:IDX], "
                              "starve@T:DUR[:SLOTS], hpc-loss@T:DUR, "
                              "crash@T:ACTOR) or random:SEED[:DURATION] "
                              "for a seeded campaign")
    monitor.add_argument("--pipeline", type=Path, default=None,
                         metavar="FILE",
                         help="assemble the pipeline from a declarative "
                              "JSON/TOML PipelineSpec file instead of the "
                              "default wiring (pids are re-targeted to "
                              "the spawned workload)")
    monitor.add_argument("--cap", type=float, default=None, metavar="WATTS",
                         help="hold estimated package power at or below "
                              "this cap via the closed control loop "
                              "(DVFS ceiling stepping, then process "
                              "throttling)")
    monitor.add_argument("--cap-policy", default="deadband",
                         choices=("deadband", "pi"),
                         help="control policy driving the cap "
                              "(default: deadband)")

    serve = commands.add_parser(
        "serve", help="monitor a workload and stream the estimates to "
                      "TCP telemetry subscribers")
    serve.add_argument("--model", type=Path, default=None,
                       help="model JSON (learned on the fly if omitted)")
    serve.add_argument("--workload", default="cpu",
                       choices=sorted(WORKLOADS))
    serve.add_argument("--duration", type=float, default=30.0)
    serve.add_argument("--period", type=float, default=1.0)
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port to listen on (0 = ephemeral; the "
                            "chosen port is printed)")
    serve.add_argument("--overflow", default="drop-oldest",
                       choices=("block", "drop-oldest", "coalesce"),
                       help="what a full subscriber queue does with the "
                            "next frame")
    serve.add_argument("--queue-capacity", type=int, default=256,
                       help="per-subscriber frame queue bound")
    serve.add_argument("--heartbeat-every", type=int, default=0,
                       help="emit a heartbeat frame every N reports "
                            "(0 = off)")
    serve.add_argument("--host-label", default="",
                       help="host name stamped on every frame (for "
                            "fleet aggregation)")
    serve.add_argument("--await-subscribers", type=int, default=0,
                       metavar="N",
                       help="wait for N subscribers before starting the "
                            "run")
    serve.add_argument("--await-timeout", type=float, default=30.0,
                       help="give up waiting for subscribers after this "
                            "many seconds")
    serve.add_argument("--pace", type=float, default=0.0,
                       help="wall-clock seconds slept per virtual "
                            "second (0 = run as fast as possible)")
    serve.add_argument("--replay-window", type=int, default=256,
                       help="frames of replay history kept so resuming "
                            "subscribers can catch up without loss "
                            "(0 = disable replay)")
    serve.add_argument("--net-faults", default=None, metavar="SPEC",
                       help="inject network faults into accepted "
                            "subscriber connections; SPEC is "
                            "';'-separated kind@time[:args] entries "
                            "(partition@T[:DUR], reset@T, corrupt@T[:N], "
                            "truncate@T, stall@T[:DUR[:DELAY]]) or "
                            "random:SEED[:DURATION] for a seeded plan")
    serve.add_argument("--uplink", action="append", default=None,
                       metavar="HOST:PORT",
                       help="also relay an upstream telemetry server "
                            "into this stream (repeatable; makes this "
                            "server a tree junction merging local and "
                            "upstream frames)")
    serve.add_argument("--max-subscribers", type=int, default=0,
                       help="refuse connections beyond this many "
                            "concurrent subscribers (0 = unlimited)")
    serve.add_argument("--batch-frames", type=int, default=None,
                       help="max frames coalesced per wire batch "
                            "(1 disables batching)")
    serve.add_argument("--batch-bytes", type=int, default=None,
                       help="max payload bytes coalesced per wire batch")
    serve.add_argument("--batch-latency", type=float, default=None,
                       metavar="SECONDS",
                       help="hold a partial batch up to this long "
                            "waiting for more frames (0 = flush "
                            "immediately)")
    serve.add_argument("--pipeline", type=Path, default=None,
                       metavar="FILE",
                       help="assemble the pipeline from a declarative "
                            "JSON/TOML PipelineSpec file; its [telemetry] "
                            "section (when present) overrides the flags "
                            "above, and the spec is advertised to "
                            "subscribers")

    subscribe = commands.add_parser(
        "subscribe", help="connect to a telemetry server and print its "
                          "stream")
    subscribe.add_argument("--host", default="127.0.0.1")
    subscribe.add_argument("--port", type=int, required=True)
    subscribe.add_argument("--pids", default=None,
                           help="comma-separated pid filter")
    subscribe.add_argument("--kinds", default=None,
                           help="comma-separated event kinds "
                                "(report,health,gap,heartbeat)")
    subscribe.add_argument("--downsample", type=int, default=1,
                           help="receive every Nth report")
    subscribe.add_argument("--max-frames", type=int, default=None,
                           help="exit after this many events")
    subscribe.add_argument("--reconnect", action="store_true",
                           help="re-dial with exponential backoff when "
                                "the server goes away (guarded by a "
                                "circuit breaker)")
    subscribe.add_argument("--spool", type=Path, default=None,
                           metavar="DIR",
                           help="journal every received frame to a "
                                "durable spool in DIR and resume from "
                                "the last acknowledged sequence after a "
                                "crash or restart")
    subscribe.add_argument("--net-faults", default=None, metavar="SPEC",
                           help="inject network faults into this "
                                "client's connections (same SPEC "
                                "grammar as serve --net-faults)")

    relay = commands.add_parser(
        "relay", help="subscribe to upstream telemetry server(s) and "
                      "re-serve the merged stream downstream")
    relay.add_argument("--upstream", action="append", required=True,
                       metavar="HOST:PORT",
                       help="upstream server to subscribe to "
                            "(repeatable; streams merge into one "
                            "downstream fan-out)")
    relay.add_argument("--host", default="127.0.0.1")
    relay.add_argument("--port", type=int, default=0,
                       help="downstream listen port (0 = ephemeral)")
    relay.add_argument("--replay-window", type=int, default=256,
                       help="frames of replay history for downstream "
                            "RESUME (0 = disable)")
    relay.add_argument("--max-subscribers", type=int, default=0,
                       help="refuse connections beyond this many "
                            "concurrent subscribers (0 = unlimited)")
    relay.add_argument("--batch-frames", type=int, default=None,
                       help="max frames coalesced per wire batch")
    relay.add_argument("--batch-bytes", type=int, default=None,
                       help="max payload bytes coalesced per wire batch")
    relay.add_argument("--batch-latency", type=float, default=None,
                       metavar="SECONDS",
                       help="hold a partial batch up to this long")
    relay.add_argument("--reconnect", action="store_true",
                       help="re-dial upstreams with exponential backoff "
                            "when they go away")
    relay.add_argument("--spool", type=Path, default=None, metavar="DIR",
                       help="journal each uplink to a durable spool in "
                            "DIR and RESUME upstream after a restart")
    relay.add_argument("--duration", type=float, default=0.0,
                       help="run this many wall-clock seconds then exit "
                            "(0 = until interrupted)")

    replay = commands.add_parser("replay",
                                 help="the Figure 3 SPECjbb experiment")
    replay.add_argument("--model", type=Path, default=None)
    replay.add_argument("--duration", type=float, default=300.0)

    matrix = commands.add_parser(
        "matrix", help="scenario-matrix chaos campaigns")
    matrix_sub = matrix.add_subparsers(dest="matrix_command", required=True)
    mrun = matrix_sub.add_parser(
        "run", help="expand a matrix TOML, run every cell, check "
                    "invariants, shrink failing cells")
    mrun.add_argument("--matrix", type=Path, required=True, metavar="FILE",
                      help="the declarative campaign TOML")
    mrun.add_argument("--output", type=Path, default=None, metavar="FILE",
                      help="write the machine-readable JSON report here "
                           "(shrunk repro TOMLs are written alongside)")
    mrun.add_argument("--workers", type=int, default=1,
                      help="worker processes for the cell fan-out "
                           "(1 = serial, 0 = one per CPU)")
    mrun.add_argument("--cell", default=None, metavar="PATTERN",
                      help="only run cells whose id matches this fnmatch "
                           "pattern (or a single cell index)")
    mrun.add_argument("--no-shrink", action="store_true",
                      help="skip delta-debugging failing cells")
    mrun.add_argument("--max-shrink", type=int, default=4,
                      help="shrink at most this many failing cells")
    mrun.add_argument("--shrink-budget", type=int, default=48,
                      help="candidate re-runs allowed per shrink")
    mrun.add_argument("--bench", type=Path, default=None, metavar="FILE",
                      help="write the BENCH headline JSON here")
    mreport = matrix_sub.add_parser(
        "report", help="summarize a saved campaign report JSON")
    mreport.add_argument("report", type=Path,
                         help="report file from `matrix run --output`")
    mreport.add_argument("--failures-only", action="store_true",
                         help="only list cells that violated an invariant")
    return parser


def _quick_campaign(spec) -> SamplingCampaign:
    return SamplingCampaign(
        spec,
        workloads=[CpuStress(utilization=1.0, threads=spec.num_threads),
                   MemoryStress(utilization=1.0, threads=spec.num_threads,
                                working_set_bytes=64 * 1024 ** 2),
                   MemoryStress(utilization=1.0, threads=spec.num_threads,
                                working_set_bytes=2 * 1024 ** 2)],
        frequencies_hz=[spec.min_frequency_hz, spec.max_frequency_hz],
        window_s=1.0, windows_per_run=4, settle_s=0.5)


def _paper_campaign(spec) -> SamplingCampaign:
    return SamplingCampaign(
        spec,
        workloads=[CpuStress(utilization=1.0, threads=spec.num_threads),
                   MemoryStress(utilization=1.0, threads=spec.num_threads,
                                working_set_bytes=64 * 1024 ** 2),
                   MemoryStress(utilization=1.0, threads=spec.num_threads,
                                working_set_bytes=2 * 1024 ** 2)],
        window_s=1.0, windows_per_run=4, settle_s=0.5)


def _load_or_learn_model(spec, model_path: Optional[Path],
                         quick: bool = True, out=sys.stdout) -> PowerModel:
    if model_path is not None:
        return PowerModel.from_json(model_path.read_text())
    print("no model given; learning one now ...", file=out)
    campaign = _quick_campaign(spec) if quick else _paper_campaign(spec)
    return learn_power_model(spec, campaign=campaign,
                             idle_duration_s=10.0).model


def cmd_specs(args, out=sys.stdout) -> int:
    """Print the selected preset's Table 1-style specification."""
    spec = preset(args.cpu)
    print(render_table(spec.specification_table(),
                       title=f"{spec.vendor} {spec.model} specification"),
          file=out)
    return 0


def cmd_learn(args, out=sys.stdout) -> int:
    """Run the Figure 1 pipeline and write the model JSON."""
    spec = preset(args.cpu)
    campaign = _quick_campaign(spec) if args.quick else _paper_campaign(spec)
    print(f"sampling {args.cpu} "
          f"({len(campaign.frequencies_hz)} frequencies) ...", file=out)
    report = learn_power_model(spec, campaign=campaign,
                               idle_duration_s=15.0,
                               workers=getattr(args, "workers", 1))
    args.output.write_text(report.model.to_json())
    print(report.model.equation_text(), file=out)
    print(f"model written to {args.output}", file=out)
    return 0


def _load_pipeline_spec(path: Path, pid: int,
                        out=sys.stdout) -> PipelineSpec:
    """A config file's spec, re-targeted to the spawned workload pid."""
    spec = PipelineSpec.from_file(path)
    spec = dataclasses.replace(spec, pids=(pid,))
    print(f"pipeline: {path} (sensor={spec.sensor.type}, "
          f"formula={spec.formula.type}, "
          f"reporters={[r.type for r in spec.reporters]})", file=out)
    return spec


def cmd_monitor(args, out=sys.stdout) -> int:
    """Run a workload under live monitoring, printing per-period rows."""
    spec = preset(args.cpu)
    model = _load_or_learn_model(spec, args.model, out=out)
    kernel = SimKernel(spec)
    workload = WORKLOADS[args.workload](args.duration)
    pid = kernel.spawn(workload, name=args.workload)

    memory = InMemoryReporter()
    cap_w = getattr(args, "cap", None)
    cap_policy = getattr(args, "cap_policy", "deadband")
    pipeline_file = getattr(args, "pipeline", None)
    if pipeline_file is not None:
        pipeline_spec = _load_pipeline_spec(pipeline_file, pid, out=out)
        if cap_w is not None:
            from repro.core.pipeline import ControlSpec, StageSpec
            pipeline_spec = dataclasses.replace(
                pipeline_spec,
                control=ControlSpec(cap_w=cap_w,
                                    policy=StageSpec(cap_policy)))
        period = (pipeline_spec.period_s if pipeline_spec.period_s
                  is not None else args.period)
        api = PowerAPI(kernel, model, period_s=period)
        handle = api.start_pipeline(pipeline_spec, reporters=(memory,))
    else:
        period = args.period
        api = PowerAPI(kernel, model, period_s=args.period)
        builder = api.monitor(pid).every(args.period)
        if cap_w is not None:
            builder = builder.cap(cap_w, policy=cap_policy)
        handle = builder.to(memory)
    if cap_w is not None:
        print(f"power cap: {cap_w:.1f} W ({cap_policy} policy)", file=out)
    api.system.spawn(ConsoleReporter(stream=out), name="console")
    if args.csv is not None:
        api.system.spawn(CsvReporter(args.csv, pids=[pid]), name="csv")
    faults = getattr(args, "faults", None)
    if faults:
        plan = FaultPlan.parse(faults)
        api.install_faults(plan)
        print(f"fault plan: {plan.describe() or '(empty)'}", file=out)
    with _GracefulStop() as stop:
        _run_interruptible(api, args.duration, period, stop)
    api.flush()
    if stop.requested:
        print(f"\n{stop.signal_name}: stopping early at "
              f"t={kernel.time_s:.1f}s; reporters flushed", file=out)

    if handle.pid_aggregator is not None:
        energy = handle.pid_aggregator.energy_by_pid_j.get(pid, 0.0)
        print(f"\n{args.workload}: estimated active energy {energy:.1f} J "
              f"over {args.duration:.0f} s", file=out)
    if handle.control is not None:
        events = handle.control.events
        actions = {}
        for event in events:
            actions[event.action] = actions.get(event.action, 0) + 1
        summary = ", ".join(f"{name} x{count}"
                            for name, count in sorted(actions.items()))
        print(f"cap actuations: {len(events)} "
              f"({summary or 'none'}); final ceiling "
              f"{handle.control.actuator.frequency_hz / 1e9:.2f} GHz",
              file=out)
    if faults:
        gaps = memory.gap_count()
        print(f"gap periods: {gaps}; health log "
              f"({len(handle.health)} events):", file=out)
        for event in handle.health:
            print(f"  t={event.time_s:8.2f}s  {event.component:<18} "
                  f"{event.kind:<22} {event.detail}", file=out)
    api.shutdown()
    return 0


def _batch_policy(args):
    """A BatchPolicy from ``--batch-*`` flags, or None when unset."""
    if (args.batch_frames is None and args.batch_bytes is None
            and args.batch_latency is None):
        return None
    from repro.telemetry.server import BatchPolicy
    base = BatchPolicy()
    return BatchPolicy(
        max_frames=(args.batch_frames if args.batch_frames is not None
                    else base.max_frames),
        max_bytes=(args.batch_bytes if args.batch_bytes is not None
                   else base.max_bytes),
        max_latency_s=(args.batch_latency if args.batch_latency is not None
                       else base.max_latency_s))


def cmd_serve(args, out=sys.stdout) -> int:
    """Monitor a workload while streaming estimates to subscribers."""
    spec = preset(args.cpu)
    model = _load_or_learn_model(spec, args.model, out=out)
    kernel = SimKernel(spec)
    workload = WORKLOADS[args.workload](args.duration)
    pid = kernel.spawn(workload, name=args.workload)

    injector = None
    net_faults = getattr(args, "net_faults", None)
    if net_faults:
        from repro.faults import NetworkFaultInjector, NetworkFaultPlan
        net_plan = NetworkFaultPlan.parse(net_faults)
        injector = NetworkFaultInjector(net_plan)
        print(f"net fault plan: {net_plan.describe() or '(empty)'}",
              file=out)

    pipeline_file = getattr(args, "pipeline", None)
    if pipeline_file is not None:
        pipeline_spec = _load_pipeline_spec(pipeline_file, pid, out=out)
        if pipeline_spec.telemetry is None:
            pipeline_spec = dataclasses.replace(
                pipeline_spec, telemetry=TelemetrySpec(
                    port=args.port, overflow=args.overflow,
                    queue_capacity=args.queue_capacity,
                    heartbeat_every=args.heartbeat_every or None,
                    host_label=args.host_label or None,
                    replay_window=args.replay_window,
                    batch_max_frames=args.batch_frames,
                    batch_max_bytes=args.batch_bytes,
                    batch_max_latency_s=args.batch_latency,
                    max_subscribers=args.max_subscribers or None,
                    uplinks=tuple(args.uplink or ())))
        period = (pipeline_spec.period_s if pipeline_spec.period_s
                  is not None else args.period)
        api = PowerAPI(kernel, model, period_s=period)
        handle = api.start_pipeline(pipeline_spec,
                                    reporters=(InMemoryReporter(),))
        server = api.telemetry_servers[-1]
        if injector is not None:
            server.set_transport(injector.wrap)
    else:
        period = args.period
        api = PowerAPI(kernel, model, period_s=args.period)
        handle = api.monitor(pid).every(args.period).to(InMemoryReporter())
        from repro.core.pipeline import parse_uplink
        extra = {}
        batch = _batch_policy(args)
        if batch is not None:
            extra["batch"] = batch
        if args.max_subscribers:
            extra["max_subscribers"] = args.max_subscribers
        uplinks = tuple(parse_uplink(u) for u in (args.uplink or ()))
        server = api.serve_telemetry(
            port=args.port, pids=handle.pids,
            overflow=args.overflow, queue_capacity=args.queue_capacity,
            heartbeat_every=args.heartbeat_every,
            host_label=args.host_label, spec=handle.spec,
            replay_window=args.replay_window,
            transport=injector.wrap if injector is not None else None,
            uplinks=uplinks or None, **extra)
        if uplinks:
            ups = ", ".join(f"{h}:{p}" for h, p in uplinks)
            print(f"telemetry: relaying uplinks {ups}", file=out)
    print(f"telemetry: serving on {server.host}:{server.port} "
          f"(overflow={server.overflow}, "
          f"queue-capacity={server.queue_capacity})", file=out)
    if args.await_subscribers > 0:
        print(f"waiting for {args.await_subscribers} subscriber(s) ...",
              file=out)
        if not server.wait_for_subscribers(args.await_subscribers,
                                           timeout=args.await_timeout):
            print(f"warning: only {server.subscriber_count} subscriber(s) "
                  f"after {args.await_timeout:.0f}s; starting anyway",
                  file=out)
    with _GracefulStop() as stop:
        _run_interruptible(api, args.duration, period, stop,
                           pace=args.pace)
    api.flush()
    if stop.requested:
        print(f"\n{stop.signal_name}: stopping early at "
              f"t={kernel.time_s:.1f}s; closing telemetry", file=out)

    stats = server.stats()
    print(f"published {stats['reports_published']} reports, "
          f"{stats['health_published']} health events, "
          f"{stats['gaps_published']} gaps to "
          f"{len(stats['subscribers'])} subscriber(s); "
          f"stalls: {stats['stalls']}", file=out)
    if stats["replay_window"] or stats["resumes_served"] \
            or stats["resumes_rejected"]:
        print(f"  replay: window {stats['replay_window']}, "
              f"{stats['resumes_served']} resume(s) served "
              f"({stats['resumes_rejected']} rejected), "
              f"{stats['frames_replayed']} frame(s) replayed, "
              f"{stats['replay_evictions']} eviction gap(s)", file=out)
    if injector is not None:
        print(f"  net faults injected: {len(injector.injected)}", file=out)
    for sub in stats["subscribers"]:
        print(f"  subscriber {sub['id']} ({sub['agent'] or sub['peer']}): "
              f"{sub['frames_sent']} sent, {sub['frames_dropped']} "
              f"dropped, {sub['bytes_sent']} bytes, queue high-water "
              f"{sub['queue_high_water']}", file=out)
    api.shutdown()
    return 0


def cmd_subscribe(args, out=sys.stdout) -> int:
    """Print a telemetry server's stream, one line per event."""
    from repro.telemetry.client import ReconnectPolicy, TelemetryClient
    from repro.telemetry.wire import (GapTelemetry, Heartbeat,
                                      HealthTelemetry, ReportEvent)
    pids = (None if args.pids is None
            else [int(chunk) for chunk in args.pids.split(",") if chunk])
    kinds = (None if args.kinds is None
             else [chunk.strip() for chunk in args.kinds.split(",")
                   if chunk.strip()])
    breaker = None
    if args.reconnect:
        from repro.faults import CircuitBreaker
        breaker = CircuitBreaker(failure_threshold=5, reset_timeout_s=2.0)
    transport = None
    net_faults = getattr(args, "net_faults", None)
    if net_faults:
        from repro.faults import NetworkFaultInjector, NetworkFaultPlan
        net_plan = NetworkFaultPlan.parse(net_faults)
        transport = NetworkFaultInjector(net_plan).wrap
        print(f"net fault plan: {net_plan.describe() or '(empty)'}",
              file=out)
    spool_dir = getattr(args, "spool", None)
    if spool_dir is not None:
        spool_dir.mkdir(parents=True, exist_ok=True)
    client = TelemetryClient(
        args.host, args.port, pids=pids, kinds=kinds,
        downsample=args.downsample,
        reconnect=ReconnectPolicy() if args.reconnect else None,
        agent="repro-cli-subscribe",
        spool=spool_dir, breaker=breaker, transport=transport)
    if client.spool is not None and client.last_seq is not None:
        print(f"spool: resuming after seq {client.last_seq} "
              f"(epoch {client.stream_epoch or 'unknown'})", file=out)
    try:
        for event in client.events(max_events=args.max_frames):
            if isinstance(event, ReportEvent):
                parts = [f"t={event.report.time_s:8.1f}s",
                         f"total={event.report.total_w:6.2f}W",
                         f"idle={event.report.idle_w:5.2f}W"]
                if event.report.gap:
                    parts.append("gap=1")
                for rpid in event.report.pids():
                    parts.append(
                        f"pid{rpid}={event.report.by_pid[rpid]:5.2f}W")
                if event.host:
                    parts.append(f"host={event.host}")
                print("  ".join(parts), file=out)
            elif isinstance(event, HealthTelemetry):
                print(f"t={event.event.time_s:8.1f}s  health  "
                      f"{event.event.component:<18} "
                      f"{event.event.kind:<22} {event.event.detail}",
                      file=out)
            elif isinstance(event, GapTelemetry):
                print(f"t={event.marker.time_s:8.1f}s  gap     "
                      f"source={event.marker.source} "
                      f"pid={event.marker.pid}", file=out)
            elif isinstance(event, Heartbeat):
                print(f"t={event.time_s:8.1f}s  heartbeat seq={event.seq}",
                      file=out)
    finally:
        client.close()
    print(f"received {client.frames_received} frame(s); "
          f"reconnects: {client.reconnects}", file=out)
    if spool_dir is not None:
        last = client.last_seq if client.last_seq is not None else "-"
        print(f"spool: last seq {last}; "
              f"resumes sent: {client.resumes_sent}; "
              f"duplicates dropped: {client.duplicates_dropped}", file=out)
    return 0


def cmd_relay(args, out=sys.stdout) -> int:
    """Run one relay-tree node until interrupted (or --duration)."""
    from repro.core.pipeline import parse_uplink
    from repro.telemetry.client import ReconnectPolicy
    from repro.telemetry.relay import TelemetryRelay
    upstreams = [parse_uplink(u) for u in args.upstream]
    server_kwargs = {"replay_window": args.replay_window}
    batch = _batch_policy(args)
    if batch is not None:
        server_kwargs["batch"] = batch
    if args.max_subscribers:
        server_kwargs["max_subscribers"] = args.max_subscribers
    if args.spool is not None:
        args.spool.mkdir(parents=True, exist_ok=True)
    relay = TelemetryRelay(
        upstreams, host=args.host, port=args.port,
        reconnect=ReconnectPolicy() if args.reconnect else None,
        spool_dir=args.spool, **server_kwargs)
    relay.start()
    ups = ", ".join(f"{host}:{port}" for host, port in upstreams)
    print(f"relay: serving on {relay.server.host}:{relay.port}; "
          f"uplinks: {ups}", file=out)
    try:
        with _GracefulStop() as stop:
            deadline = (time.monotonic() + args.duration
                        if args.duration > 0 else None)
            while not stop.requested:
                if deadline is not None and time.monotonic() >= deadline:
                    break
                time.sleep(0.1)
        if stop.requested:
            print(f"\n{stop.signal_name}: stopping relay", file=out)
        stats = relay.stats()
    finally:
        relay.stop()
    print(f"relayed {stats['frames_relayed']} frame(s) from "
          f"{len(stats['uplinks'])} uplink(s) to "
          f"{len(stats['server']['subscribers'])} subscriber(s)", file=out)
    for uplink in stats["uplinks"]:
        print(f"  uplink {uplink['upstream']}: "
              f"{uplink['frames_relayed']} relayed, "
              f"{uplink['reconnects']} reconnect(s), "
              f"{uplink['duplicates_dropped']} duplicate(s) dropped",
              file=out)
    return 0


def cmd_replay(args, out=sys.stdout) -> int:
    """Regenerate the Figure 3 SPECjbb experiment."""
    spec = preset(args.cpu)
    model = _load_or_learn_model(spec, args.model, quick=False, out=out)
    kernel = SimKernel(spec)
    meter = PowerSpy(kernel.machine, sample_rate_hz=1.0, seed=777)
    meter.connect()
    pid = kernel.spawn(SpecJbbWorkload(duration_s=args.duration, threads=4),
                       name="specjbb2013")
    api = PowerAPI(kernel, model, period_s=1.0)
    handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
    print(f"replaying SPECjbb2013 for {args.duration:.0f} s ...", file=out)
    api.run(args.duration)

    measured = PowerTrace.from_samples("powerspy", meter.samples)
    estimated = PowerTrace.from_series("powerapi",
                                       handle.reporter.time_series(),
                                       handle.reporter.total_series())
    print(ascii_chart([measured, estimated], width=78, height=16,
                      title="SPECjbb2013: measured vs estimated"), file=out)
    summary = compare(measured, estimated)
    print(format_metrics(summary), file=out)
    print(f"paper median error: 15%; this run: "
          f"{summary['median_ape'] * 100:.1f}%", file=out)
    api.shutdown()
    return 0


def _print_cell_line(payload, out) -> None:
    marker = {"pass": ".", "xfail": "x", "xpass": "X", "fail": "F"}
    line = (f"  [{marker[payload['outcome']]}] {payload['cell_id']} "
            f"({payload['wall_s']:.2f}s)")
    print(line, file=out)
    for violation in payload["violations"]:
        print(f"      - {violation['invariant']}: {violation['detail']}",
              file=out)
    shrunk = payload.get("shrunk")
    if shrunk:
        print(f"      shrunk to faults={shrunk['faults']!r} "
              f"net={shrunk['net_faults']!r} "
              f"(-{shrunk['events_removed']} events, "
              f"{shrunk['runs_used']} runs)", file=out)


def _print_report(report, out, failures_only: bool = False) -> None:
    outcomes = report["outcomes"]
    print(f"matrix {report['name']!r}: {report['cells_run']} of "
          f"{report['cells_total']} cell(s) in {report['wall_s']:.1f}s",
          file=out)
    print("  " + ", ".join(f"{n} {o}" for o, n in outcomes.items() if n)
          + f"; pass rate {report['pass_rate'] * 100:.1f}%"
          + f"; {report['unexpected']} unexpected", file=out)
    for payload in report["cells"]:
        if failures_only and payload["ok"]:
            continue
        _print_cell_line(payload, out)


def cmd_matrix(args, out=sys.stdout) -> int:
    """Run or summarize a scenario-matrix chaos campaign."""
    from repro.matrix import MatrixSpec, bench_headline, run_matrix

    if args.matrix_command == "report":
        report = json.loads(args.report.read_text())
        _print_report(report, out, failures_only=args.failures_only)
        return 0 if report["unexpected"] == 0 else 1

    spec = MatrixSpec.from_file(args.matrix)
    report = run_matrix(
        spec, workers=args.workers, shrink=not args.no_shrink,
        cell_filter=args.cell, max_shrink_cells=args.max_shrink,
        shrink_budget=args.shrink_budget,
        log=lambda msg: print(msg, file=out))
    if args.output is not None:
        for payload in report["cells"]:
            shrunk = payload.get("shrunk")
            if not shrunk:
                continue
            repro_path = args.output.with_name(
                f"{args.output.stem}.repro-{payload['index']}.toml")
            repro_path.write_text(shrunk["matrix_toml"])
            shrunk["command"] = (
                f"python -m repro matrix run --matrix {repro_path}")
            print(f"shrunk repro for {payload['cell_id']} -> {repro_path}",
                  file=out)
        args.output.write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"report written to {args.output}", file=out)
    if args.bench is not None:
        args.bench.write_text(
            json.dumps(bench_headline(report), indent=2, sort_keys=True))
        print(f"bench headline written to {args.bench}", file=out)
    _print_report(report, out, failures_only=True)
    return 0 if report["unexpected"] == 0 else 1


COMMANDS = {
    "specs": cmd_specs,
    "learn": cmd_learn,
    "monitor": cmd_monitor,
    "serve": cmd_serve,
    "subscribe": cmd_subscribe,
    "relay": cmd_relay,
    "replay": cmd_replay,
    "matrix": cmd_matrix,
}


def main(argv: Optional[List[str]] = None, out=sys.stdout) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args, out=out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

"""Virtualisation: per-VM and per-guest power estimation.

The paper's conclusion singles out virtual machines as the next target:
"they are more and more used and a lot of work still remains to optimize
their power consumptions".  This module models the estimation problem
virtualisation creates:

* a :class:`VirtualMachine` is a host *process* executing a guest
  scheduler: its guests' demands are multiplexed onto a fixed number of
  vCPUs, and the blend of their instruction mixes / memory profiles is
  what the host (and its HPCs) actually observes,
* the host-side PowerAPI pipeline therefore estimates the *VM's* power
  exactly like any process — per-guest attribution inside the VM has to
  fall back to guest-local accounting (:func:`split_vm_power`), because
  the host cannot read guest-level hardware counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.os.process import Demand
from repro.simcpu.caches import MemoryProfile
from repro.simcpu.pipeline import InstructionMix
from repro.workloads.base import Workload


@dataclass(frozen=True)
class GuestUsage:
    """One guest's share of its VM during a quantum."""

    name: str
    utilization: float


class VirtualMachine(Workload):
    """A VM as a host workload: guests multiplexed onto vCPUs.

    ``vcpus`` bounds the host threads the VM can occupy.  When guest
    demand exceeds vCPU capacity, guests are throttled proportionally —
    the classic steal-time effect.
    """

    def __init__(self, name: str, vcpus: int,
                 guests: Sequence[Workload]) -> None:
        if vcpus < 1:
            raise ConfigurationError("a VM needs at least one vCPU")
        if not guests:
            raise ConfigurationError("a VM needs at least one guest")
        self.name = name
        self.vcpus = vcpus
        self.guests = list(guests)
        self._last_usage: List[GuestUsage] = []

    # -- guest multiplexing ----------------------------------------------

    def _poll_guests(self, local_time_s: float
                     ) -> List[Tuple[Workload, Demand]]:
        demands = []
        for guest in self.guests:
            demand = guest.demand(local_time_s)
            if demand is not None and demand.utilization > 0:
                demands.append((guest, demand))
        return demands

    def demand(self, local_time_s: float) -> Optional[Demand]:
        demands = self._poll_guests(local_time_s)
        if not demands:
            finished = all(guest.demand(local_time_s) is None
                           for guest in self.guests)
            if finished:
                return None
            self._last_usage = []
            return Demand(utilization=0.0)

        wanted = sum(demand.utilization * demand.threads
                     for _guest, demand in demands)
        capacity = float(self.vcpus)
        scale = min(1.0, capacity / wanted) if wanted > 0 else 1.0
        granted = wanted * scale

        # Blend what the host's counters will actually observe.
        weights = [demand.utilization * demand.threads * scale
                   for _guest, demand in demands]
        total_weight = sum(weights)
        mix = _blend_mixes([d.mix for _g, d in demands], weights)
        memory = _blend_memory([d.memory for _g, d in demands], weights)

        self._last_usage = [
            GuestUsage(name=guest.name, utilization=weight)
            for (guest, _demand), weight in zip(demands, weights)]
        del total_weight

        threads = min(self.vcpus, max(1, round(granted + 0.49)))
        per_thread = min(1.0, granted / threads)
        return Demand(utilization=per_thread, mix=mix, memory=memory,
                      threads=threads)

    def guest_usage(self) -> Tuple[GuestUsage, ...]:
        """Per-guest vCPU usage during the most recent quantum."""
        return tuple(self._last_usage)

    def total_duration_s(self) -> Optional[float]:
        durations = [guest.total_duration_s() for guest in self.guests]
        if any(duration is None for duration in durations):
            return None
        return max(durations)


def _blend_mixes(mixes: Sequence[InstructionMix],
                 weights: Sequence[float]) -> InstructionMix:
    total = sum(weights)
    if total <= 0:
        return InstructionMix()

    def avg(attribute: str) -> float:
        return sum(getattr(mix, attribute) * weight
                   for mix, weight in zip(mixes, weights)) / total

    return InstructionMix(
        fp_fraction=avg("fp_fraction"),
        simd_fraction=avg("simd_fraction"),
        branch_fraction=avg("branch_fraction"),
        branch_miss_rate=avg("branch_miss_rate"),
    )


def _blend_memory(profiles: Sequence[MemoryProfile],
                  weights: Sequence[float]) -> MemoryProfile:
    total = sum(weights)
    if total <= 0:
        return MemoryProfile()
    mem_ops = sum(profile.mem_ops_per_instruction * weight
                  for profile, weight in zip(profiles, weights)) / total
    locality = sum(profile.locality * weight
                   for profile, weight in zip(profiles, weights)) / total
    # Co-resident guests sum their working sets (they share the VM's
    # address space footprint on the host caches).
    working_set = sum(profile.working_set_bytes for profile in profiles)
    return MemoryProfile(mem_ops_per_instruction=mem_ops,
                         working_set_bytes=working_set,
                         locality=locality)


def split_vm_power(vm: VirtualMachine, vm_active_power_w: float
                   ) -> Dict[str, float]:
    """Attribute a VM's estimated active power to its guests.

    The host cannot read guest HPCs, so the split uses the VM's own
    vCPU-time accounting (a guest-level Versick split) — the best any
    hypervisor-side tool can do, and the precision limit the paper's
    future work on VMs would have to push past.
    """
    if vm_active_power_w < 0:
        raise ConfigurationError("active power must be >= 0")
    usage = vm.guest_usage()
    total = sum(entry.utilization for entry in usage)
    if total <= 0:
        return {entry.name: 0.0 for entry in usage}
    return {entry.name: vm_active_power_w * entry.utilization / total
            for entry in usage}

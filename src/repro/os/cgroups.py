"""Control groups: container-level grouping of processes.

Modern deployments of counter-based power estimation (powerapi-ng,
Kepler) attribute power to *containers*, i.e. cgroups, not bare pids.
This module adds the grouping layer: a :class:`CgroupTree` maps
processes into named groups, and the monitoring pipeline can aggregate
per-process estimates per group
(:class:`repro.core.cgroup_monitor.CgroupAggregator`).

Semantics follow cgroup v2: a process belongs to exactly one group;
moving a process re-homes all its future accounting; removing a group
re-homes its members to the root group.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.errors import ConfigurationError, ProcessError

#: Name of the implicit root group every process starts in.
ROOT = "/"


class CgroupTree:
    """Flat cgroup-v2-style membership: pid -> group name."""

    def __init__(self) -> None:
        self._groups: Dict[str, Set[int]] = {ROOT: set()}
        self._membership: Dict[int, str] = {}

    # -- group management ---------------------------------------------

    def create(self, name: str) -> None:
        """Create an empty group (idempotent for existing names)."""
        if not name or name == ROOT:
            raise ConfigurationError(f"invalid cgroup name {name!r}")
        self._groups.setdefault(name, set())

    def remove(self, name: str) -> None:
        """Remove a group; members fall back to the root group."""
        if name == ROOT:
            raise ConfigurationError("cannot remove the root cgroup")
        members = self._groups.pop(name, set())
        for pid in members:
            self._membership[pid] = ROOT
            self._groups[ROOT].add(pid)

    def groups(self) -> Tuple[str, ...]:
        """All group names, root first, rest sorted."""
        rest = sorted(group for group in self._groups if group != ROOT)
        return (ROOT, *rest)

    # -- membership ------------------------------------------------------

    def attach(self, pid: int, group: str) -> None:
        """Put *pid* into *group* (creating the group implicitly)."""
        if pid < 0:
            raise ProcessError("pid must be >= 0")
        if group != ROOT:
            self.create(group)
        previous = self._membership.get(pid)
        if previous is not None:
            self._groups[previous].discard(pid)
        self._membership[pid] = group
        self._groups[group].add(pid)

    def group_of(self, pid: int) -> str:
        """The group containing *pid* (root if never attached)."""
        return self._membership.get(pid, ROOT)

    def members(self, group: str) -> Tuple[int, ...]:
        """Pids in *group*, ascending."""
        try:
            return tuple(sorted(self._groups[group]))
        except KeyError:
            raise ConfigurationError(f"no such cgroup {group!r}") from None

    def detach(self, pid: int) -> None:
        """Remove *pid* from its group (back to root)."""
        self.attach(pid, ROOT)

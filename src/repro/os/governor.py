"""cpufreq governors: choosing P-states from observed utilisation.

The sampling pipeline of the paper requires executing its workloads "for
each frequency made available by the processor" — that is the
:class:`UserspaceGovernor`.  The others model the standard Linux policies
so examples and the energy-aware-scheduling ablation can explore the
frequency/energy trade-off.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.errors import ConfigurationError, FrequencyError
from repro.simcpu.frequency import FrequencyDomain
from repro.simcpu.spec import CpuSpec
from repro.simcpu.topology import Topology


class Governor:
    """Base class: called once per quantum with per-CPU utilisation."""

    def __init__(self, spec: CpuSpec, topology: Topology,
                 domain: FrequencyDomain) -> None:
        self.spec = spec
        self.topology = topology
        self.domain = domain

    def update(self, cpu_busy: Mapping[int, float]) -> None:
        """Adjust per-core frequency targets for the next quantum."""
        raise NotImplementedError

    def _core_utilisation(self, cpu_busy: Mapping[int, float]
                          ) -> Dict[Tuple[int, int], float]:
        """Max thread utilisation per physical core."""
        result: Dict[Tuple[int, int], float] = {}
        for package_id, core_id in self.topology.cores():
            cpus = self.topology.core_cpus(package_id, core_id)
            result[(package_id, core_id)] = max(
                cpu_busy.get(cpu_id, 0.0) for cpu_id in cpus)
        return result


class PerformanceGovernor(Governor):
    """Always run at the maximum sustained frequency (turbo if present)."""

    def update(self, cpu_busy: Mapping[int, float]) -> None:
        target = (self.spec.turbo_frequencies_hz[-1]
                  if self.spec.turbo_enabled else self.spec.max_frequency_hz)
        self.domain.set_all_targets(target)


class PowersaveGovernor(Governor):
    """Always run at the minimum frequency."""

    def update(self, cpu_busy: Mapping[int, float]) -> None:
        self.domain.set_all_targets(self.spec.min_frequency_hz)


class UserspaceGovernor(Governor):
    """Pin all cores to an explicitly chosen frequency."""

    def __init__(self, spec: CpuSpec, topology: Topology,
                 domain: FrequencyDomain, frequency_hz: int) -> None:
        super().__init__(spec, topology, domain)
        self.set_frequency(frequency_hz)

    def set_frequency(self, frequency_hz: int) -> None:
        """Change the pinned frequency.

        A frequency outside the topology's DVFS table is a user
        configuration mistake, not a simulation-internal inconsistency,
        so it surfaces as :class:`ConfigurationError` (the same way a
        bad pipeline spec does) rather than the internal FrequencyError.
        """
        try:
            self.spec.validate_frequency(frequency_hz)
        except FrequencyError as exc:
            raise ConfigurationError(str(exc)) from None
        self._frequency_hz = frequency_hz

    def update(self, cpu_busy: Mapping[int, float]) -> None:
        self.domain.set_all_targets(self._frequency_hz)


class OndemandGovernor(Governor):
    """Linux ondemand: jump to max when busy, decay proportionally when not.

    A core above ``up_threshold`` utilisation is immediately raised to the
    maximum frequency; below it, the target scales with utilisation (with a
    floor at the minimum P-state).
    """

    def __init__(self, spec: CpuSpec, topology: Topology,
                 domain: FrequencyDomain, up_threshold: float = 0.80) -> None:
        super().__init__(spec, topology, domain)
        if not 0.0 < up_threshold <= 1.0:
            raise FrequencyError("up_threshold must be within (0, 1]")
        self.up_threshold = up_threshold

    def update(self, cpu_busy: Mapping[int, float]) -> None:
        ladder = self.spec.frequencies_hz
        for (package_id, core_id), util in self._core_utilisation(cpu_busy).items():
            if util >= self.up_threshold:
                target = self.spec.max_frequency_hz
            else:
                wanted = util * self.spec.max_frequency_hz / self.up_threshold
                target = ladder[0]
                for frequency in ladder:
                    if frequency >= wanted:
                        target = frequency
                        break
                else:
                    target = ladder[-1]
            self.domain.set_target(package_id, core_id, target)


class ConservativeGovernor(Governor):
    """Linux conservative: step the ladder gradually instead of jumping.

    One P-state up when a core exceeds ``up_threshold``, one down when it
    falls below ``down_threshold`` — smoother (and often more
    energy-proportional) than ondemand's jump-to-max on bursty loads.
    """

    def __init__(self, spec: CpuSpec, topology: Topology,
                 domain: FrequencyDomain, up_threshold: float = 0.80,
                 down_threshold: float = 0.30) -> None:
        super().__init__(spec, topology, domain)
        if not 0.0 < down_threshold < up_threshold <= 1.0:
            raise FrequencyError(
                "need 0 < down_threshold < up_threshold <= 1")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self._ladder = list(spec.frequencies_hz)
        self._index: Dict[Tuple[int, int], int] = {
            core: 0 for core in
            ((p, c) for p in range(spec.packages)
             for c in range(spec.cores_per_package))}

    def update(self, cpu_busy: Mapping[int, float]) -> None:
        for core, util in self._core_utilisation(cpu_busy).items():
            index = self._index[core]
            if util >= self.up_threshold and index < len(self._ladder) - 1:
                index += 1
            elif util <= self.down_threshold and index > 0:
                index -= 1
            self._index[core] = index
            self.domain.set_target(core[0], core[1], self._ladder[index])


GOVERNORS = {
    "performance": PerformanceGovernor,
    "powersave": PowersaveGovernor,
    "ondemand": OndemandGovernor,
    "conservative": ConservativeGovernor,
}

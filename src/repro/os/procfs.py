"""A ``/proc``-like statistics view over the simulated machine.

This is the interface the CPU-load baseline (Versick et al.) and the
PowerAPI ``ProcFsSensor`` read: cumulative per-process CPU time (as
``/proc/<pid>/stat`` utime) and per-CPU busy/idle time (as ``/proc/stat``).
It observes the machine's tick stream, so it sees exactly what the
simulated kernel sees — no access to the hidden power model.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Tuple

from repro.errors import ProcessError
from repro.simcpu.machine import Machine, TickRecord


class ProcFs:
    """Cumulative CPU accounting, per process and per logical CPU."""

    def __init__(self, machine: Machine) -> None:
        self._machine = machine
        self._pid_cpu_time_s: Dict[int, float] = defaultdict(float)
        self._cpu_busy_s: Dict[int, float] = defaultdict(float)
        self._total_time_s = 0.0
        machine.add_observer(self._on_tick)

    def _on_tick(self, record: TickRecord) -> None:
        self._total_time_s += record.dt_s
        for cpu_id, busy in record.cpu_busy.items():
            self._cpu_busy_s[cpu_id] += busy * record.dt_s
        # Per-pid CPU time is busy_fraction * dt; recover it from retired
        # cycles at the core's granted frequency.
        for (pid, cpu_id), delta in record.events.items():
            core = self._machine.topology.cpu(cpu_id)
            frequency = record.core_frequencies_hz[(core.package_id, core.core_id)]
            if frequency > 0:
                self._pid_cpu_time_s[pid] += delta.get("cycles", 0.0) / frequency

    # -- /proc/<pid>/stat ----------------------------------------------------

    def process_cpu_time_s(self, pid: int) -> float:
        """Cumulative CPU seconds consumed by *pid*."""
        if pid not in self._pid_cpu_time_s:
            raise ProcessError(f"pid {pid} has no recorded CPU time")
        return self._pid_cpu_time_s[pid]

    def known_pids(self) -> Tuple[int, ...]:
        """Pids with any recorded CPU time, ascending."""
        return tuple(sorted(self._pid_cpu_time_s))

    # -- /proc/stat ----------------------------------------------------------

    def cpu_busy_time_s(self, cpu_id: int) -> float:
        """Cumulative busy (non-idle) seconds of one logical CPU."""
        return self._cpu_busy_s[cpu_id]

    def uptime_s(self) -> float:
        """Seconds of simulated time observed."""
        return self._total_time_s

    def machine_load(self) -> float:
        """Machine-wide CPU load in [0, 1] since boot."""
        if self._total_time_s == 0.0:
            return 0.0
        cpus = len(self._machine.topology)
        busy = sum(self._cpu_busy_s.values())
        return busy / (cpus * self._total_time_s)

"""Simulated operating-system layer: processes, scheduling, cpufreq, procfs."""

from repro.os.actuation import (CeilingGovernor, FrequencyCapActuator,
                                ProcessThrottle)
from repro.os.cgroups import ROOT, CgroupTree
from repro.os.governor import (GOVERNORS, ConservativeGovernor, Governor,
                               OndemandGovernor, PerformanceGovernor,
                               PowersaveGovernor, UserspaceGovernor)
from repro.os.kernel import DEFAULT_QUANTUM_S, SimKernel
from repro.os.process import Demand, ProcessState, Program, SimProcess
from repro.os.procfs import ProcFs
from repro.os.scheduler import (EnergyAwareScheduler, PackScheduler,
                                PinnedScheduler, Scheduler, SpreadScheduler)
from repro.os.sysfs import SysFs
from repro.os.virt import VirtualMachine, split_vm_power

__all__ = [
    "CeilingGovernor", "CgroupTree", "ConservativeGovernor",
    "DEFAULT_QUANTUM_S", "Demand", "EnergyAwareScheduler",
    "FrequencyCapActuator", "GOVERNORS", "Governor", "OndemandGovernor",
    "PackScheduler", "PerformanceGovernor", "PinnedScheduler",
    "PowersaveGovernor", "ProcFs", "ProcessState", "ProcessThrottle",
    "Program", "ROOT", "Scheduler", "SimKernel", "SimProcess",
    "SpreadScheduler", "SysFs", "UserspaceGovernor", "VirtualMachine",
    "split_vm_power",
]

"""A sysfs-like introspection view of the simulated machine.

Real tooling discovers the machine through ``/sys``: cpufreq exposes the
current/available frequencies and governor, cpuidle the C-state
residencies, and the thermal zone the package temperature.  :class:`SysFs`
renders the same virtual files from the simulator's state, so examples
and diagnostics can "read the machine" the way a Linux tool would —
including watching the package heat up during a long run.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.simcpu.machine import Machine


class SysFs:
    """Read-only virtual-file view over a machine."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    # -- cpufreq ----------------------------------------------------------

    def scaling_available_frequencies(self, cpu_id: int) -> str:
        """Contents of ``cpufreq/scaling_available_frequencies`` (kHz)."""
        self.machine.topology.cpu(cpu_id)
        return " ".join(str(f // 1000)
                        for f in self.machine.spec.all_frequencies_hz)

    def scaling_cur_freq(self, cpu_id: int) -> str:
        """Contents of ``cpufreq/scaling_cur_freq`` (kHz)."""
        cpu = self.machine.topology.cpu(cpu_id)
        record = self.machine.last_record
        if record is not None:
            frequency = record.core_frequencies_hz[
                (cpu.package_id, cpu.core_id)]
        else:
            frequency = self.machine.frequency.target(cpu.package_id,
                                                      cpu.core_id)
        return str(frequency // 1000)

    def scaling_min_freq(self, cpu_id: int) -> str:
        """Contents of ``cpufreq/scaling_min_freq`` (kHz)."""
        self.machine.topology.cpu(cpu_id)
        return str(self.machine.spec.min_frequency_hz // 1000)

    def scaling_max_freq(self, cpu_id: int) -> str:
        """Contents of ``cpufreq/scaling_max_freq`` (kHz)."""
        self.machine.topology.cpu(cpu_id)
        return str(self.machine.spec.max_frequency_hz // 1000)

    # -- cpuidle ------------------------------------------------------------

    def cpuidle_state_names(self, cpu_id: int) -> List[str]:
        """Names of the cpuidle states, shallow to deep."""
        self.machine.topology.cpu(cpu_id)
        return [state.name for state in self.machine.cstates.states]

    def cpuidle_residency_us(self, cpu_id: int) -> Dict[str, int]:
        """Per-state residency in microseconds (``state*/time``)."""
        self.machine.topology.cpu(cpu_id)
        return {
            state.name: int(self.machine.cstates.residency(
                cpu_id, state.name) * 1e6)
            for state in self.machine.cstates.states
        }

    # -- thermal ----------------------------------------------------------

    def thermal_zone_temp(self) -> str:
        """Contents of ``thermal_zone0/temp`` (millidegrees C)."""
        return str(int(self.machine.thermal.temperature_c * 1000))

    # -- topology ------------------------------------------------------------

    def thread_siblings_list(self, cpu_id: int) -> str:
        """Contents of ``topology/thread_siblings_list``."""
        siblings = self.machine.topology.siblings(cpu_id)
        return ",".join(str(s) for s in siblings)

    def online(self) -> str:
        """Contents of ``/sys/devices/system/cpu/online``."""
        count = len(self.machine.topology)
        return f"0-{count - 1}" if count > 1 else "0"

    # -- directory-style access ------------------------------------------

    def read(self, path: str) -> str:
        """Read a virtual file by its sysfs-like path.

        Supported paths (cpuN = logical cpu id):

        * ``cpu/cpuN/cpufreq/scaling_cur_freq`` (and min/max/available)
        * ``cpu/cpuN/topology/thread_siblings_list``
        * ``cpu/online``
        * ``thermal/thermal_zone0/temp``
        """
        parts = path.strip("/").split("/")
        try:
            if parts == ["cpu", "online"]:
                return self.online()
            if parts[0] == "thermal":
                if parts[1:] == ["thermal_zone0", "temp"]:
                    return self.thermal_zone_temp()
            elif parts[0] == "cpu" and parts[1].startswith("cpu"):
                cpu_id = int(parts[1][3:])
                if parts[2] == "cpufreq":
                    handlers = {
                        "scaling_cur_freq": self.scaling_cur_freq,
                        "scaling_min_freq": self.scaling_min_freq,
                        "scaling_max_freq": self.scaling_max_freq,
                        "scaling_available_frequencies":
                            self.scaling_available_frequencies,
                    }
                    return handlers[parts[3]](cpu_id)
                if parts[2:] == ["topology", "thread_siblings_list"]:
                    return self.thread_siblings_list(cpu_id)
        except (IndexError, KeyError, ValueError):
            pass
        raise ConfigurationError(f"no such sysfs path {path!r}")

"""CPU schedulers: mapping runnable processes onto logical CPUs.

Each scheduler implements one placement policy over a single quantum:

* :class:`SpreadScheduler` — the Linux-like default: spread load across
  physical cores before doubling up on SMT siblings (best throughput),
* :class:`PackScheduler` — consolidate load onto as few physical cores as
  possible so the rest can sink into deep C-states (best energy at low
  load; the kind of energy-aware decision the paper motivates),
* :class:`PinnedScheduler` — honour explicit affinities only, used by the
  sampling pipeline to pin stress workloads.

Schedulers are stateless policies; fairness inside one CPU is proportional
to demand (weighted by nice level) and capped so a CPU is never
oversubscribed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SchedulerError
from repro.os.process import Demand, ProcessState, SimProcess
from repro.simcpu.machine import ThreadAssignment
from repro.simcpu.topology import Topology


def _nice_weight(nice: int) -> float:
    """Linux-style weight: every nice step is ~1.25x."""
    return 1.25 ** (-nice)


class Scheduler:
    """Base class: turns (process, demand) pairs into thread assignments."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        # cpu_preference() runs once per placed thread per quantum; resolve
        # the (immutable) sibling sets once instead of per call.
        self._cpu_ids: Tuple[int, ...] = topology.cpu_ids
        self._siblings: Dict[int, Tuple[int, ...]] = {
            cpu_id: topology.siblings(cpu_id) for cpu_id in self._cpu_ids}
        # Placement is a pure function of the demand set, which is
        # constant for thousands of consecutive quanta under a steady
        # workload; memoise the last quantum's decision.
        self._last_signature: Optional[tuple] = None
        self._last_assignments: List[ThreadAssignment] = []

    # -- policy hook --------------------------------------------------------

    def cpu_preference(self, busy: Dict[int, float]) -> List[int]:
        """CPU ids in the order this policy prefers to fill them."""
        raise NotImplementedError

    # -- common machinery ---------------------------------------------------

    def assign(self, demands: Sequence[Tuple[SimProcess, Demand]]
               ) -> List[ThreadAssignment]:
        """Produce the quantum's assignments for all runnable processes.

        The decision depends only on the runnable demand set (pids,
        nice levels, affinities, per-thread demands), so when that set
        matches the previous quantum's the cached placement is replayed
        instead of re-running the bin-packing.
        """
        signature = tuple(
            (process.pid, process.nice, process.state, process.affinity,
             demand.utilization, demand.threads, demand.mix, demand.memory)
            for process, demand in demands)
        if signature == self._last_signature:
            return list(self._last_assignments)
        busy: Dict[int, float] = {cpu_id: 0.0 for cpu_id in self.topology.cpu_ids}
        assignments: List[ThreadAssignment] = []

        # Heaviest demands first gives better bin-packing.
        work: List[Tuple[SimProcess, Demand]] = sorted(
            (item for item in demands
             if item[0].state is ProcessState.RUNNABLE),
            key=lambda item: -item[1].utilization * item[1].threads)

        for process, demand in work:
            for _thread in range(demand.threads):
                placed = self._place(process, demand, busy)
                if placed is not None:
                    assignments.append(placed)
        self._last_signature = signature
        self._last_assignments = assignments
        return list(assignments)

    def _place(self, process: SimProcess, demand: Demand,
               busy: Dict[int, float]) -> Optional[ThreadAssignment]:
        """Place one thread of *process*, preferring this policy's order."""
        candidates = [cpu_id for cpu_id in self.cpu_preference(busy)
                      if process.allowed_on(cpu_id)]
        if not candidates:
            raise SchedulerError(
                f"pid {process.pid} has an affinity excluding every CPU")
        # First CPU with enough headroom for the full demand, else the one
        # with most headroom (the thread runs slowed down).
        for cpu_id in candidates:
            if busy[cpu_id] + demand.utilization <= 1.0 + 1e-12:
                granted = demand.utilization
                break
        else:
            cpu_id = max(candidates, key=lambda c: 1.0 - busy[c])
            granted = max(0.0, 1.0 - busy[cpu_id])
            if granted <= 1e-12:
                return None  # machine saturated; thread starves this quantum
        weight = _nice_weight(process.nice)
        granted = min(1.0 - busy[cpu_id], granted * min(1.0, weight))
        if granted <= 0.0:
            return None
        busy[cpu_id] += granted
        return ThreadAssignment(
            pid=process.pid,
            cpu_id=cpu_id,
            busy_fraction=granted,
            mix=demand.mix,
            memory=demand.memory,
        )


class SpreadScheduler(Scheduler):
    """Spread across physical cores first, SMT siblings last."""

    def cpu_preference(self, busy: Dict[int, float]) -> List[int]:
        siblings = self._siblings
        def key(cpu_id: int) -> Tuple[float, float, int]:
            core_busy = sum(busy[s] for s in siblings[cpu_id])
            return (busy[cpu_id], core_busy, cpu_id)
        return sorted(self._cpu_ids, key=key)


class PackScheduler(Scheduler):
    """Fill one core (and its siblings) completely before waking the next."""

    def cpu_preference(self, busy: Dict[int, float]) -> List[int]:
        siblings = self._siblings
        def key(cpu_id: int) -> Tuple[float, float, int]:
            core_busy = sum(busy[s] for s in siblings[cpu_id])
            # Prefer cores already awake (negative busy sorts busiest first).
            return (-core_busy, busy[cpu_id], cpu_id)
        return sorted(self._cpu_ids, key=key)


class PinnedScheduler(Scheduler):
    """Place threads only on their affinity CPUs, lowest id first.

    Processes without affinity fall back to spread placement.
    """

    def cpu_preference(self, busy: Dict[int, float]) -> List[int]:
        return sorted(self._cpu_ids, key=lambda c: (busy[c], c))


class EnergyAwareScheduler(Scheduler):
    """Adaptive policy: consolidate at low load, spread at high load.

    Packing lets idle cores sink into deep C-states (saving power) but
    costs SMT contention throughput; spreading does the opposite.  This
    scheduler measures the quantum's total demand up front and packs
    whenever it fits within ``pack_threshold`` of the machine's capacity,
    otherwise spreads — approximating the energy/performance sweet spot
    without a power model in the loop.
    """

    def __init__(self, topology: Topology,
                 pack_threshold: float = 0.5) -> None:
        super().__init__(topology)
        if not 0.0 < pack_threshold <= 1.0:
            raise SchedulerError("pack_threshold must be within (0, 1]")
        self.pack_threshold = pack_threshold
        self._spread = SpreadScheduler(topology)
        self._pack = PackScheduler(topology)
        self._delegate: Scheduler = self._spread

    def assign(self, demands):
        capacity = float(len(self.topology))
        wanted = sum(demand.utilization * demand.threads
                     for process, demand in demands
                     if process.state.value == "runnable")
        self._delegate = (self._pack
                          if wanted <= capacity * self.pack_threshold
                          else self._spread)
        return self._delegate.assign(demands)

    def cpu_preference(self, busy: Dict[int, float]) -> List[int]:
        return self._delegate.cpu_preference(busy)

    @property
    def mode(self) -> str:
        """The policy used for the most recent quantum."""
        return "pack" if self._delegate is self._pack else "spread"

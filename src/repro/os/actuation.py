"""Actuation backends for the closed control loop (`repro.control`).

The power-cap actor decides *what* to do; this module is *how* it is
done inside the simulated OS, without perturbing anything when no cap is
armed:

* :class:`CeilingGovernor` wraps the kernel's existing cpufreq governor
  and clamps every per-core target above a movable ceiling after the
  inner policy has run — the inner governor keeps full authority below
  the ceiling, so ondemand/conservative behaviour under a cap stays
  realistic.
* :class:`FrequencyCapActuator` owns the ceiling: it walks the spec's
  full DVFS table (sustained P-states plus the turbo ladder) one rung at
  a time and arms/releases the wrapper on the kernel.  With the ceiling
  at the top of the table the clamp is a mathematical no-op, so an armed
  but never-stepped actuator cannot change a run.
* :class:`ProcessThrottle` is the scheduler hook for when frequency
  scaling bottoms out: it raises the nice level of the hungriest
  monitored process (the scheduler's nice weighting then shrinks the CPU
  share it is granted) and can unwind the throttles in LIFO order when
  headroom returns.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.os.governor import Governor

#: Hard ceiling of the Linux nice range.
_NICE_MAX = 19


class CeilingGovernor(Governor):
    """Delegate to an inner governor, then clamp targets to a ceiling.

    ``ceiling_hz=None`` disables the clamp entirely (pass-through).  The
    clamp happens after the inner ``update`` so the inner policy sees
    the same utilisation it always did and its internal state (e.g.
    conservative's per-core ladder index) evolves unchanged.
    """

    def __init__(self, inner: Governor) -> None:
        super().__init__(inner.spec, inner.topology, inner.domain)
        self.inner = inner
        self.ceiling_hz: Optional[int] = None

    def update(self, cpu_busy) -> None:
        self.inner.update(cpu_busy)
        ceiling = self.ceiling_hz
        if ceiling is None:
            return
        for package_id, core_id in self.topology.cores():
            if self.domain.target(package_id, core_id) > ceiling:
                self.domain.set_target(package_id, core_id, ceiling)


class FrequencyCapActuator:
    """Steps a DVFS ceiling down/up the spec's frequency table.

    Arming replaces ``kernel.governor`` with a :class:`CeilingGovernor`
    wrapping the original; :meth:`release` restores it.  The ladder is
    ``spec.all_frequencies_hz`` (sustained plus turbo), and levels index
    into it — level ``len(ladder) - 1`` means "no effective clamp".
    """

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self.ladder: Tuple[int, ...] = tuple(
            kernel.machine.spec.all_frequencies_hz)
        self._top = len(self.ladder) - 1
        self._level = self._top
        self._wrapper: Optional[CeilingGovernor] = None
        self._inner: Optional[Governor] = None

    # -- arming ---------------------------------------------------------

    @property
    def armed(self) -> bool:
        return self._wrapper is not None

    def arm(self) -> None:
        """Install the ceiling wrapper on the kernel (idempotent)."""
        if self._wrapper is not None:
            return
        if isinstance(self.kernel.governor, CeilingGovernor):
            raise ConfigurationError(
                "kernel governor is already cap-wrapped by another "
                "actuator; one frequency-cap actuator per kernel")
        self._inner = self.kernel.governor
        self._wrapper = CeilingGovernor(self._inner)
        self._wrapper.ceiling_hz = self.ladder[self._level]
        self.kernel.governor = self._wrapper

    def release(self) -> None:
        """Restore the original governor and forget the ceiling."""
        if self._wrapper is None:
            return
        self.kernel.governor = self._inner
        self._wrapper = None
        self._inner = None
        self._level = self._top

    # -- the ladder -----------------------------------------------------

    @property
    def level(self) -> int:
        """Current ladder index of the ceiling."""
        return self._level

    @property
    def frequency_hz(self) -> int:
        """Current ceiling frequency, hertz."""
        return self.ladder[self._level]

    @property
    def at_floor(self) -> bool:
        return self._level == 0

    @property
    def at_ceiling(self) -> bool:
        return self._level == self._top

    def set_level(self, level: int) -> None:
        """Jump the ceiling to an explicit ladder index."""
        if not 0 <= level <= self._top:
            raise ConfigurationError(
                f"ceiling level must be within [0, {self._top}], "
                f"got {level}")
        self._level = level
        if self._wrapper is not None:
            self._wrapper.ceiling_hz = self.ladder[self._level]

    def step(self, levels: int) -> int:
        """Move the ceiling by *levels* rungs (negative = down).

        Returns the delta actually applied after clamping to the table
        bounds; 0 means the ceiling was already pinned at an end.
        """
        target = max(0, min(self._top, self._level + levels))
        applied = target - self._level
        self.set_level(target)
        return applied


class ProcessThrottle:
    """Nice-based throttling of the hungriest monitored processes.

    Each :meth:`throttle_hungriest` call raises one process's nice level
    by ``step`` (bounded at +19); the scheduler's nice weighting then
    grants it a smaller CPU share next quantum.  Throttles stack and
    unwind LIFO via :meth:`unthrottle_last`, and :meth:`restore_all`
    returns every touched process to its original nice.
    """

    def __init__(self, kernel, step: int = 5) -> None:
        if step < 1:
            raise ConfigurationError("throttle step must be >= 1")
        self.kernel = kernel
        self.step = step
        #: LIFO of (pid, nice before this throttle was applied).
        self._stack: List[Tuple[int, int]] = []
        self._original: Dict[int, int] = {}

    @property
    def throttled_pids(self) -> Tuple[int, ...]:
        """Pids currently holding at least one throttle level."""
        return tuple(dict.fromkeys(pid for pid, _nice in self._stack))

    def depth(self) -> int:
        """Number of stacked throttle levels."""
        return len(self._stack)

    def can_throttle(self, by_pid: Mapping[int, float]) -> bool:
        """Whether any candidate process can still be slowed down."""
        return self._pick(by_pid) is not None

    def _pick(self, by_pid: Mapping[int, float]) -> Optional[int]:
        """The hungriest live pid whose nice can still rise."""
        best_pid, best_w = None, -1.0
        for pid, watts in by_pid.items():
            try:
                process = self.kernel.process(pid)
            except Exception:
                continue
            if not process.alive or process.nice >= _NICE_MAX:
                continue
            if watts > best_w:
                best_pid, best_w = pid, watts
        return best_pid

    def throttle_hungriest(self,
                           by_pid: Mapping[int, float]) -> Optional[int]:
        """Raise the hungriest process's nice by one step.

        Returns the throttled pid, or None when every candidate is
        already at the nice ceiling (or gone).
        """
        pid = self._pick(by_pid)
        if pid is None:
            return None
        process = self.kernel.process(pid)
        self._original.setdefault(pid, process.nice)
        self._stack.append((pid, process.nice))
        process.nice = min(_NICE_MAX, process.nice + self.step)
        return pid

    def unthrottle_last(self) -> Optional[int]:
        """Undo the most recent throttle; returns its pid (or None)."""
        while self._stack:
            pid, previous = self._stack.pop()
            try:
                process = self.kernel.process(pid)
            except Exception:
                continue
            process.nice = previous
            if not self._stack or all(p != pid
                                      for p, _ in self._stack):
                self._original.pop(pid, None)
            return pid
        return None

    def restore_all(self) -> int:
        """Undo every stacked throttle; returns how many were undone."""
        undone = 0
        while self._stack:
            if self.unthrottle_last() is not None:
                undone += 1
        for pid, nice in list(self._original.items()):
            try:
                self.kernel.process(pid).nice = nice
            except Exception:
                pass
        self._original.clear()
        return undone

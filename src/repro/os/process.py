"""Process model of the simulated operating system.

A :class:`SimProcess` wraps a *program*: any object implementing the
:class:`Program` protocol, i.e. a ``demand(local_time_s)`` method returning
the process's resource :class:`Demand` for the next scheduling quantum (or
``None`` when the program has finished).  Workloads
(:mod:`repro.workloads`) are programs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Protocol, Set, runtime_checkable

from repro.errors import ConfigurationError, ProcessError
from repro.simcpu.caches import MemoryProfile
from repro.simcpu.pipeline import InstructionMix


@dataclass(frozen=True)
class Demand:
    """Resource demand of a process for one scheduling quantum.

    ``utilization`` is the fraction of one logical CPU the process wants
    (1.0 = fully CPU-bound, 0.2 = mostly sleeping); ``threads`` lets a
    multi-threaded program demand several CPUs at once, each at
    ``utilization``.
    """

    utilization: float
    mix: InstructionMix = field(default_factory=InstructionMix)
    memory: MemoryProfile = field(default_factory=MemoryProfile)
    threads: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.utilization <= 1.0:
            raise ConfigurationError(
                f"utilization must be within [0, 1], got {self.utilization}")
        if self.threads < 1:
            raise ConfigurationError("threads must be >= 1")


@runtime_checkable
class Program(Protocol):
    """Anything a process can execute."""

    def demand(self, local_time_s: float) -> Optional[Demand]:
        """Demand for the quantum starting at *local_time_s*; None = exit."""


class ProcessState(enum.Enum):
    """Lifecycle states of a simulated process."""

    RUNNABLE = "runnable"
    SLEEPING = "sleeping"
    EXITED = "exited"


class SimProcess:
    """One schedulable entity with accounting."""

    def __init__(self, pid: int, name: str, program: Program,
                 affinity: Optional[Set[int]] = None, nice: int = 0) -> None:
        if pid < 0:
            raise ConfigurationError("pid must be >= 0")
        if not -20 <= nice <= 19:
            raise ConfigurationError("nice must be within [-20, 19]")
        self.pid = pid
        self.name = name
        self.program = program
        self.affinity = set(affinity) if affinity else None
        self.nice = nice
        self.state = ProcessState.RUNNABLE
        #: CPU seconds actually granted to the process.
        self.cpu_time_s = 0.0
        #: Wall seconds since the process was spawned.
        self.wall_time_s = 0.0
        self._pending: Optional[Demand] = None

    def __repr__(self) -> str:
        return (f"SimProcess(pid={self.pid}, name={self.name!r}, "
                f"state={self.state.value})")

    # -- lifecycle ----------------------------------------------------------

    def poll_demand(self) -> Optional[Demand]:
        """Demand for the next quantum, transitioning state as needed.

        A zero-utilization demand puts the process to sleep for the quantum;
        a ``None`` from the program exits it.
        """
        if self.state is ProcessState.EXITED:
            raise ProcessError(f"pid {self.pid} has exited")
        demand = self.program.demand(self.wall_time_s)
        if demand is None:
            self.state = ProcessState.EXITED
            self._pending = None
            return None
        self.state = (ProcessState.SLEEPING if demand.utilization == 0.0
                      else ProcessState.RUNNABLE)
        self._pending = demand
        return demand

    def account(self, granted_cpu_s: float, dt_s: float) -> None:
        """Record one quantum of wall time and granted CPU time."""
        if granted_cpu_s < 0 or dt_s < 0:
            raise ConfigurationError("time accounting must be >= 0")
        self.cpu_time_s += granted_cpu_s
        self.wall_time_s += dt_s

    @property
    def alive(self) -> bool:
        """Whether the process can still be scheduled."""
        return self.state is not ProcessState.EXITED

    def allowed_on(self, cpu_id: int) -> bool:
        """Whether affinity permits running on *cpu_id*."""
        return self.affinity is None or cpu_id in self.affinity

"""The simulated kernel: process table, scheduling loop and time base.

:class:`SimKernel` glues the OS layer to the machine.  Its :meth:`tick`
performs one quantum: poll every live process for its demand, let the
governor adjust P-states from the previous quantum's utilisation, let the
scheduler produce assignments, step the machine, and update process
accounting.  :meth:`run` loops that for a duration; :meth:`run_until_idle`
loops until every process exits.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError, ProcessError
from repro.os.governor import Governor, PerformanceGovernor
from repro.os.process import Demand, Program, ProcessState, SimProcess
from repro.os.procfs import ProcFs
from repro.os.scheduler import Scheduler, SpreadScheduler
from repro.simcpu.machine import Machine, TickRecord
from repro.simcpu.spec import CpuSpec

#: Default scheduling quantum, seconds (10 ms, a typical kernel tick).
DEFAULT_QUANTUM_S = 0.01


class SimKernel:
    """Owns the machine, the process table and the scheduling loop."""

    def __init__(self, spec: CpuSpec,
                 scheduler_factory: Callable[..., Scheduler] = SpreadScheduler,
                 governor_factory: Callable[..., Governor] = PerformanceGovernor,
                 quantum_s: float = DEFAULT_QUANTUM_S) -> None:
        if quantum_s <= 0:
            raise ConfigurationError("quantum must be positive")
        self.machine = Machine(spec)
        self.scheduler = scheduler_factory(self.machine.topology)
        self.governor = governor_factory(
            spec, self.machine.topology, self.machine.frequency)
        self.procfs = ProcFs(self.machine)
        self.quantum_s = quantum_s
        self._processes: Dict[int, SimProcess] = {}
        self._next_pid = itertools.count(1000)
        self._last_busy: Dict[int, float] = {
            cpu_id: 0.0 for cpu_id in self.machine.topology.cpu_ids}

    # -- process management ---------------------------------------------

    def spawn(self, program: Program, name: str = "task",
              affinity: Optional[Set[int]] = None, nice: int = 0) -> int:
        """Create a process executing *program*; returns its pid."""
        pid = next(self._next_pid)
        self._processes[pid] = SimProcess(
            pid=pid, name=name, program=program, affinity=affinity, nice=nice)
        return pid

    def process(self, pid: int) -> SimProcess:
        """Look up a process by pid."""
        try:
            return self._processes[pid]
        except KeyError:
            raise ProcessError(f"no such pid {pid}") from None

    def kill(self, pid: int) -> None:
        """Force a process to exit immediately."""
        self.process(pid).state = ProcessState.EXITED

    @property
    def live_pids(self) -> Tuple[int, ...]:
        """Pids of processes that have not exited, ascending."""
        return tuple(sorted(pid for pid, proc in self._processes.items()
                            if proc.alive))

    # -- time base --------------------------------------------------------

    @property
    def time_s(self) -> float:
        """Current simulated time."""
        return self.machine.time_s

    def tick(self) -> TickRecord:
        """Run one scheduling quantum."""
        demands: List[Tuple[SimProcess, Demand]] = []
        for process in self._processes.values():
            if not process.alive:
                continue
            demand = process.poll_demand()
            if demand is not None:
                demands.append((process, demand))

        self.governor.update(self._last_busy)
        assignments = self.scheduler.assign(demands)
        record = self.machine.step(assignments, self.quantum_s)
        # The record owns its busy map and nothing mutates it afterwards;
        # keep a reference instead of copying it every quantum.
        self._last_busy = record.cpu_busy

        granted: Dict[int, float] = {}
        for assignment in assignments:
            granted[assignment.pid] = (granted.get(assignment.pid, 0.0)
                                       + assignment.busy_fraction)
        for process, _demand in demands:
            process.account(
                granted.get(process.pid, 0.0) * self.quantum_s, self.quantum_s)
        return record

    def run(self, duration_s: float) -> List[TickRecord]:
        """Run for *duration_s* of simulated time."""
        if duration_s < 0:
            raise ConfigurationError("duration must be >= 0")
        steps = int(round(duration_s / self.quantum_s))
        return [self.tick() for _ in range(steps)]

    def run_until_idle(self, max_duration_s: float = 3600.0) -> List[TickRecord]:
        """Run until every process has exited (bounded by *max_duration_s*)."""
        records: List[TickRecord] = []
        deadline = self.time_s + max_duration_s
        while self.live_pids and self.time_s < deadline:
            records.append(self.tick())
        return records

"""The CPU power model: an idle constant plus one formula per frequency.

The paper's model (Section 4) is

    Power = idle + sum over frequencies f of Power_f

where each ``Power_f`` is a linear combination of HPC *rates* observed
while the processor runs at frequency ``f``; e.g. on the i3-2120 at the
maximum frequency:

    Power_3.30 = 2.22e-9 * instructions/s
               + 2.48e-8 * cache-references/s
               + 1.87e-7 * cache-misses/s

At any instant only one frequency is active per core, so prediction picks
the formula of the (dominant) current frequency; over a longer window the
per-frequency contributions add, exactly as the published equation sums
them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError, ModelError
from repro.units import GHZ, ghz


@dataclass(frozen=True)
class FrequencyFormula:
    """Linear power formula for one P-state.

    ``intercept_w`` is an optional active-state constant (e.g. the
    package-awake uncore offset richer models fit); the paper's own
    formulas keep it at zero and isolate all constant power in the
    model-level idle term.
    """

    frequency_hz: int
    #: Event name -> watts per (event per second).
    coefficients: Mapping[str, float]
    intercept_w: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError("formula frequency must be positive")
        if not self.coefficients:
            raise ConfigurationError("formula needs at least one coefficient")

    @property
    def events(self) -> Tuple[str, ...]:
        """The events this formula consumes."""
        return tuple(self.coefficients)

    def predict(self, rates: Mapping[str, float]) -> float:
        """Active power for counter *rates* (events/second), watts.

        Negative predictions are clamped to zero — a formula extrapolated
        to near-idle rates can dip slightly below zero.
        """
        power = self.intercept_w + sum(
            weight * rates.get(event, 0.0)
            for event, weight in self.coefficients.items())
        return max(0.0, power)


class PowerModel:
    """Idle constant + per-frequency formulas, the paper's CPU model."""

    def __init__(self, idle_w: float, formulas: Sequence[FrequencyFormula],
                 name: str = "powerapi") -> None:
        if idle_w < 0:
            raise ConfigurationError("idle power must be >= 0")
        if not formulas:
            raise ConfigurationError("at least one frequency formula required")
        frequencies = [formula.frequency_hz for formula in formulas]
        if len(set(frequencies)) != len(frequencies):
            raise ConfigurationError("duplicate frequency formulas")
        self.idle_w = idle_w
        self.name = name
        self._formulas: Dict[int, FrequencyFormula] = {
            formula.frequency_hz: formula
            for formula in sorted(formulas, key=lambda f: f.frequency_hz)}

    # -- lookup ----------------------------------------------------------

    @property
    def frequencies_hz(self) -> Tuple[int, ...]:
        """Frequencies with a formula, ascending."""
        return tuple(sorted(self._formulas))

    @property
    def events(self) -> Tuple[str, ...]:
        """Events used by the formulas (union, stable order)."""
        seen: List[str] = []
        for frequency in self.frequencies_hz:
            for event in self._formulas[frequency].events:
                if event not in seen:
                    seen.append(event)
        return tuple(seen)

    def formula(self, frequency_hz: int) -> FrequencyFormula:
        """The formula for exactly *frequency_hz*."""
        try:
            return self._formulas[frequency_hz]
        except KeyError:
            raise ModelError(
                f"no formula for {frequency_hz} Hz; "
                f"known: {list(self._formulas)}") from None

    def nearest_formula(self, frequency_hz: int) -> FrequencyFormula:
        """The formula whose frequency is closest to *frequency_hz*."""
        best = min(self._formulas,
                   key=lambda known: abs(known - frequency_hz))
        return self._formulas[best]

    # -- prediction ------------------------------------------------------

    def predict_active(self, frequency_hz: int,
                       rates: Mapping[str, float]) -> float:
        """Active (above-idle) power at one frequency, watts."""
        return self.nearest_formula(frequency_hz).predict(rates)

    def predict_total(self, frequency_hz: int,
                      rates: Mapping[str, float]) -> float:
        """Machine power estimate: idle + active, watts."""
        return self.idle_w + self.predict_active(frequency_hz, rates)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form, stable across versions."""
        return {
            "name": self.name,
            "idle_w": self.idle_w,
            "formulas": [
                {
                    "frequency_hz": formula.frequency_hz,
                    "coefficients": dict(formula.coefficients),
                    "intercept_w": formula.intercept_w,
                }
                for formula in (self._formulas[f] for f in self.frequencies_hz)
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PowerModel":
        """Inverse of :meth:`to_dict`."""
        try:
            formulas = [
                FrequencyFormula(
                    frequency_hz=int(entry["frequency_hz"]),
                    coefficients={str(k): float(v)
                                  for k, v in entry["coefficients"].items()},
                    intercept_w=float(entry.get("intercept_w", 0.0)),
                )
                for entry in data["formulas"]
            ]
            return cls(idle_w=float(data["idle_w"]), formulas=formulas,
                       name=str(data.get("name", "powerapi")))
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelError(f"malformed power-model dict: {exc}") from exc

    def to_json(self) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PowerModel":
        """Inverse of :meth:`to_json`."""
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise ModelError(f"invalid power-model JSON: {exc}") from exc

    # -- presentation ------------------------------------------------------

    def equation_text(self) -> str:
        """Render the model the way the paper prints it."""
        freqs = self.frequencies_hz
        lines = [
            f"Power = {self.idle_w:.2f} + sum(Power_f for f in "
            f"{freqs[0] / GHZ:.2f}..{freqs[-1] / GHZ:.2f} GHz)"
        ]
        for frequency in freqs:
            formula = self._formulas[frequency]
            terms = " + ".join(
                f"{weight:.3g} * {event}/s"
                for event, weight in formula.coefficients.items())
            lines.append(f"  Power_{frequency / GHZ:.2f} = {terms}")
        return "\n".join(lines)


def published_i3_2120_model() -> PowerModel:
    """The exact model published in the paper for the Intel i3-2120.

    Only the 3.30 GHz coefficients appear in the paper; the other
    frequencies scale them by the cube of the frequency ratio (an f.V^2
    surrogate), which reproduces the published shape for replay purposes.
    """
    top_coefficients = {
        "instructions": 2.22e-9,
        "cache-references": 2.48e-8,
        "cache-misses": 1.87e-7,
    }
    formulas = []
    top_hz = ghz(3.3)
    frequency = ghz(1.6)
    ladder = []
    while frequency < top_hz:
        ladder.append(frequency)
        frequency += ghz(0.2)
    ladder.append(top_hz)
    for frequency in ladder:
        scale = (frequency / top_hz) ** 3
        formulas.append(FrequencyFormula(
            frequency_hz=frequency,
            coefficients={event: weight * scale
                          for event, weight in top_coefficients.items()},
        ))
    return PowerModel(idle_w=31.48, formulas=formulas, name="i3-2120-published")

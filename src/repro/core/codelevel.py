"""Code-level energy: per-region profiling and energy unit tests.

The paper's abstract promises "fine-grained power estimations at process
and *code-level*", and its reference [7] (Noureddine et al.) introduces
unit testing of software energy consumption.  This module delivers both
on top of the PowerAPI pipeline:

* :class:`RegionProfiler` — attributes a process's estimated power to
  the named code region active at each monitoring period (workloads
  declare regions on their phases), producing an energy profile like a
  profiler's flat view but in joules,
* :func:`measure_energy` — runs one workload to completion under live
  monitoring and returns its estimated active energy,
* :class:`EnergyBudget` / :func:`assert_energy_within` — the
  energy-unit-test primitive: fail when a workload exceeds its joule
  budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.core.messages import PowerReport
from repro.core.model import PowerModel
from repro.core.monitor import PowerAPI
from repro.core.reporters import InMemoryReporter
from repro.core.sampling import learn_power_model
from repro.core.stage import PipelineStage
from repro.errors import ConfigurationError
from repro.os.kernel import SimKernel
from repro.simcpu.spec import CpuSpec
from repro.workloads.base import Workload


class RegionProfiler(PipelineStage):
    """Accumulates per-region energy for monitored processes.

    Subscribes to the pipeline's :class:`PowerReport` stream; for each
    report it asks the process's workload which region was active at that
    local time and integrates the estimated power there.
    """

    subscribes_to = (PowerReport,)

    def __init__(self, kernel: SimKernel,
                 workloads: Mapping[int, Workload]) -> None:
        super().__init__(component="region-profiler")
        if not workloads:
            raise ConfigurationError("RegionProfiler needs pid -> workload")
        self.kernel = kernel
        self.workloads = dict(workloads)
        self._energy_j: Dict[Tuple[int, str], float] = {}

    def handle(self, message) -> None:
        if not isinstance(message, PowerReport):
            return
        workload = self.workloads.get(message.pid)
        if workload is None:
            return
        local_time = self.kernel.process(message.pid).wall_time_s
        # The report covers the period that just ended; sample its middle.
        region = workload.region(max(0.0, local_time - message.period_s / 2))
        key = (message.pid, region or "<untagged>")
        self._energy_j[key] = (self._energy_j.get(key, 0.0)
                               + message.power_w * message.period_s)

    # -- queries ------------------------------------------------------------

    def regions(self, pid: int) -> Tuple[str, ...]:
        """Region names with attributed energy for *pid*, by energy desc."""
        entries = [(region, joules) for (p, region), joules
                   in self._energy_j.items() if p == pid]
        entries.sort(key=lambda item: -item[1])
        return tuple(region for region, _joules in entries)

    def energy_j(self, pid: int, region: str) -> float:
        """Estimated active energy of (pid, region), joules."""
        return self._energy_j.get((pid, region), 0.0)

    def profile(self, pid: int) -> Dict[str, float]:
        """Full region -> joules map for one pid."""
        return {region: joules for (p, region), joules
                in self._energy_j.items() if p == pid}


@dataclass(frozen=True)
class EnergyMeasurement:
    """Result of :func:`measure_energy`."""

    #: Estimated active energy of the workload, joules.
    active_energy_j: float
    #: Wall-clock (simulated) runtime, seconds.
    duration_s: float
    #: Estimated mean active power, watts.
    mean_active_power_w: float
    #: Per-region energy (empty when the workload declares no regions).
    by_region_j: Dict[str, float]


def measure_energy(workload: Workload, spec: CpuSpec, model: PowerModel,
                   period_s: float = 0.5, quantum_s: float = 0.01,
                   max_duration_s: float = 600.0) -> EnergyMeasurement:
    """Run *workload* to completion and return its estimated energy.

    The workload must terminate (``total_duration_s`` not None or a
    program that eventually returns None) within *max_duration_s*.
    """
    kernel = SimKernel(spec, quantum_s=quantum_s)
    pid = kernel.spawn(workload, name=workload.name)
    api = PowerAPI(kernel, model, period_s=period_s)
    handle = api.monitor(pid).every(period_s).to(InMemoryReporter())
    profiler = RegionProfiler(kernel, {pid: workload})
    api.system.spawn(profiler, name="region-profiler")

    api.run_until_idle(max_duration_s=max_duration_s)
    api.flush()
    if kernel.live_pids:
        raise ConfigurationError(
            f"workload {workload.name!r} did not finish within "
            f"{max_duration_s} s")

    energy = handle.pid_aggregator.energy_by_pid_j.get(pid, 0.0)
    duration = kernel.time_s
    api.shutdown()
    return EnergyMeasurement(
        active_energy_j=energy,
        duration_s=duration,
        mean_active_power_w=energy / duration if duration > 0 else 0.0,
        by_region_j=profiler.profile(pid),
    )


@dataclass(frozen=True)
class EnergyBudget:
    """A pass/fail energy budget for one workload (ref [7]'s unit test)."""

    max_active_energy_j: float
    #: Optional cap on mean active power, watts.
    max_mean_power_w: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_active_energy_j <= 0:
            raise ConfigurationError("energy budget must be positive")


class EnergyBudgetExceeded(AssertionError):
    """Raised when a workload blows its energy budget."""


def assert_energy_within(workload: Workload, budget: EnergyBudget,
                         spec: CpuSpec, model: Optional[PowerModel] = None,
                         **measure_kwargs) -> EnergyMeasurement:
    """Energy unit test: run *workload*, fail if it exceeds *budget*.

    Returns the measurement on success so tests can record it.  When no
    model is given, one is learned first (slow — prefer passing a model).
    """
    if model is None:
        model = learn_power_model(spec).model
    measurement = measure_energy(workload, spec, model, **measure_kwargs)
    if measurement.active_energy_j > budget.max_active_energy_j:
        raise EnergyBudgetExceeded(
            f"{workload.name}: {measurement.active_energy_j:.1f} J exceeds "
            f"the {budget.max_active_energy_j:.1f} J budget")
    if (budget.max_mean_power_w is not None
            and measurement.mean_active_power_w > budget.max_mean_power_w):
        raise EnergyBudgetExceeded(
            f"{workload.name}: mean {measurement.mean_active_power_w:.2f} W "
            f"exceeds the {budget.max_mean_power_w:.2f} W cap")
    return measurement

"""Adaptive power capping driven by PowerAPI estimates.

The paper's motivation section calls for "adaptive strategies that can
cope with the sporadic nature" of renewable energy feeds.  This module
closes that loop: a cpufreq governor that consumes the *estimated*
machine power (not the meter — the whole point of the toolkit is to act
without one) and walks the DVFS ladder to keep the machine under a
possibly time-varying power budget.

Wiring::

    governor_holder = []
    kernel = SimKernel(spec, governor_factory=lambda s, t, d:
        governor_holder.append(CappingGovernor(s, t, d, budget)) or
        governor_holder[-1])
    api = PowerAPI(kernel, model)
    api.monitor(*pids).every(0.5).to(
        CallbackReporter(governor_holder[-1].observe_report))

:func:`run_capped` packages exactly that for the common case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.core.messages import AggregatedPowerReport
from repro.core.model import PowerModel
from repro.core.monitor import PowerAPI
from repro.core.reporters import CallbackReporter, InMemoryReporter
from repro.errors import ConfigurationError
from repro.os.governor import Governor
from repro.os.kernel import SimKernel
from repro.simcpu.frequency import FrequencyDomain
from repro.simcpu.spec import CpuSpec
from repro.simcpu.topology import Topology
from repro.workloads.base import Workload

#: A budget is either a constant (watts) or a function of time (seconds).
BudgetLike = Union[float, Callable[[float], float]]


class CappingGovernor(Governor):
    """Walks the P-state ladder to keep estimated power under budget.

    A hysteresis controller built for a one-period estimate lag: it steps
    down immediately when the latest estimate exceeds the budget, but
    steps up only after ``up_patience`` consecutive estimates below
    ``budget - headroom_w``.  The default headroom is sized to a typical
    inter-P-state power gap so the controller does not limit-cycle
    between two ladder rungs.
    """

    def __init__(self, spec: CpuSpec, topology: Topology,
                 domain: FrequencyDomain, budget: BudgetLike,
                 headroom_w: float = 5.0, up_patience: int = 2) -> None:
        super().__init__(spec, topology, domain)
        if headroom_w < 0:
            raise ConfigurationError("headroom must be >= 0")
        if up_patience < 1:
            raise ConfigurationError("up_patience must be >= 1")
        self._budget = budget
        self.headroom_w = headroom_w
        self.up_patience = up_patience
        self._low_streak = 0
        self._ladder = list(spec.frequencies_hz)
        self._index = len(self._ladder) - 1  # start at max frequency
        self._latest_estimate_w: Optional[float] = None
        self._latest_time_s = 0.0
        #: (time, estimate, budget, granted frequency) history for analysis.
        self.decisions: List[tuple] = []

    # -- estimate feed --------------------------------------------------

    def observe_report(self, report: AggregatedPowerReport) -> None:
        """Feed one aggregated PowerAPI report into the controller."""
        self._latest_estimate_w = report.total_w
        self._latest_time_s = report.time_s

    def budget_w(self, time_s: float) -> float:
        """The budget in effect at *time_s*."""
        if callable(self._budget):
            return float(self._budget(time_s))
        return float(self._budget)

    @property
    def current_frequency_hz(self) -> int:
        """The P-state the controller currently requests."""
        return self._ladder[self._index]

    # -- Governor interface -----------------------------------------------

    def update(self, cpu_busy) -> None:
        if self._latest_estimate_w is not None:
            budget = self.budget_w(self._latest_time_s)
            if self._latest_estimate_w > budget and self._index > 0:
                self._index -= 1
                self._low_streak = 0
            elif self._latest_estimate_w < budget - self.headroom_w:
                self._low_streak += 1
                if (self._low_streak >= self.up_patience
                        and self._index < len(self._ladder) - 1):
                    self._index += 1
                    self._low_streak = 0
            else:
                self._low_streak = 0
            self.decisions.append((self._latest_time_s,
                                   self._latest_estimate_w, budget,
                                   self.current_frequency_hz))
            self._latest_estimate_w = None  # one decision per report
        self.domain.set_all_targets(self.current_frequency_hz)


@dataclass(frozen=True)
class CappedRunResult:
    """Outcome of :func:`run_capped`."""

    #: PowerAPI estimates per period (the controller's view), watts.
    estimated_w: List[float]
    #: Budget in effect per period, watts.
    budget_w: List[float]
    #: Instructions retired over the run (work achieved under the cap).
    instructions: float
    #: Wall energy actually consumed (ground truth), joules.
    true_energy_j: float
    #: Frequency chosen at each controller decision, hertz.
    frequency_trace_hz: List[int]

    def overshoot_fraction(self, tolerance_w: float = 1.0) -> float:
        """Fraction of periods whose estimate exceeded budget + tolerance."""
        if not self.estimated_w:
            return 0.0
        over = sum(1 for estimate, budget
                   in zip(self.estimated_w, self.budget_w)
                   if estimate > budget + tolerance_w)
        return over / len(self.estimated_w)


def run_capped(spec: CpuSpec, model: PowerModel,
               workloads: Sequence[Workload], budget: BudgetLike,
               duration_s: float = 30.0, period_s: float = 0.5,
               quantum_s: float = 0.02,
               headroom_w: float = 2.0) -> CappedRunResult:
    """Run *workloads* under a PowerAPI-driven power cap."""
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    holder: List[CappingGovernor] = []

    def governor_factory(s, topology, domain):
        governor = CappingGovernor(s, topology, domain, budget,
                                   headroom_w=headroom_w)
        holder.append(governor)
        return governor

    kernel = SimKernel(spec, governor_factory=governor_factory,
                       quantum_s=quantum_s)
    governor = holder[0]
    pids = [kernel.spawn(workload, name=workload.name)
            for workload in workloads]

    api = PowerAPI(kernel, model, period_s=period_s)
    reporter = InMemoryReporter()
    api.monitor(*pids).every(period_s).to(reporter)
    api.system.spawn(CallbackReporter(governor.observe_report),
                     name="cap-feedback")
    api.run(duration_s)
    api.flush()

    estimates = reporter.total_series()
    budgets = [governor.budget_w(report.time_s)
               for report in reporter.aggregated]
    result = CappedRunResult(
        estimated_w=estimates,
        budget_w=budgets,
        instructions=kernel.machine.counters.read("instructions"),
        true_energy_j=kernel.machine.energy_j,
        frequency_trace_hz=[decision[3] for decision in governor.decisions],
    )
    api.shutdown()
    return result


def solar_budget(peak_w: float, floor_w: float,
                 period_s: float = 120.0) -> Callable[[float], float]:
    """A sinusoidal budget imitating a sporadic renewable feed."""
    import math

    if peak_w <= floor_w:
        raise ConfigurationError("peak must exceed floor")

    def budget(time_s: float) -> float:
        swing = (peak_w - floor_w) / 2.0
        midpoint = floor_w + swing
        return midpoint + swing * math.sin(2 * math.pi * time_s / period_s)

    return budget

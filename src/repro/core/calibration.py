"""Idle-power calibration.

The constant term of the paper's model "isolates the idle power of the
machine" (31.48 W on their i3-2120).  It is measured, not regressed: run
the machine with nothing scheduled and average the meter — exactly what
this module does against the simulated machine.
"""

from __future__ import annotations

from typing import Optional

from repro.os.kernel import SimKernel
from repro.powermeter.powerspy import PowerSpy
from repro.simcpu.spec import CpuSpec


def calibrate_idle_power(spec: CpuSpec, duration_s: float = 30.0,
                         sample_rate_hz: float = 1.0,
                         seed: Optional[int] = 99,
                         quantum_s: float = 0.05) -> float:
    """Measured idle wall power of a machine built from *spec*, watts.

    Uses a fresh kernel with an empty process table and a PowerSpy at
    *sample_rate_hz*; returns the mean of all samples over *duration_s*.
    """
    kernel = SimKernel(spec, quantum_s=quantum_s)
    meter = PowerSpy(kernel.machine, sample_rate_hz=sample_rate_hz, seed=seed)
    with meter:
        kernel.run(duration_s)
        return meter.mean_power_w()

"""Container-level power aggregation over the PowerAPI pipeline.

:class:`CgroupAggregator` subscribes to the per-process
:class:`~repro.core.messages.PowerReport` stream and re-keys it by
cgroup, publishing one :class:`CgroupPowerReport` per timestamp — the
container view powerapi-ng and Kepler expose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.core.stage import PipelineStage
from repro.core.messages import PowerReport
from repro.errors import ConfigurationError
from repro.os.cgroups import CgroupTree


@dataclass(frozen=True)
class CgroupPowerReport:
    """Per-container power for one monitoring period."""

    time_s: float
    period_s: float
    #: cgroup name -> active watts.
    by_group: Mapping[str, float]
    idle_w: float
    formula: str

    @property
    def active_w(self) -> float:
        """Sum of per-container active power, watts."""
        return sum(self.by_group.values())

    @property
    def total_w(self) -> float:
        """Machine estimate: idle + per-container active power."""
        return self.idle_w + self.active_w

    def groups(self) -> Tuple[str, ...]:
        """Container names present in this report, sorted."""
        return tuple(sorted(self.by_group))


class CgroupAggregator(PipelineStage):
    """Re-keys per-process power reports by cgroup, per timestamp."""

    subscribes_to = (PowerReport,)

    def __init__(self, tree: CgroupTree, idle_w: float) -> None:
        super().__init__(component="cgroup-aggregator")
        if idle_w < 0:
            raise ConfigurationError("idle_w must be >= 0")
        self.tree = tree
        self.idle_w = idle_w
        self._pending_time = -1.0
        self._pending_period = 1.0
        self._pending_formula = ""
        self._pending: Dict[str, float] = {}
        #: Cumulative active energy per group over the whole run.
        self.energy_by_group_j: Dict[str, float] = {}

    def flush(self) -> None:
        if self._pending:
            self.publish(CgroupPowerReport(
                time_s=self._pending_time,
                period_s=self._pending_period,
                by_group=dict(self._pending),
                idle_w=self.idle_w,
                formula=self._pending_formula,
            ))
            self._pending.clear()

    def handle(self, message) -> None:
        if not isinstance(message, PowerReport):
            return
        if self._pending and message.time_s > self._pending_time + 1e-12:
            self.flush()
        self._pending_time = message.time_s
        self._pending_period = message.period_s
        self._pending_formula = message.formula
        group = self.tree.group_of(message.pid)
        self._pending[group] = (self._pending.get(group, 0.0)
                                + message.power_w)
        self.energy_by_group_j[group] = (
            self.energy_by_group_j.get(group, 0.0)
            + message.power_w * message.period_s)


class InMemoryCgroupReporter(PipelineStage):
    """Collects CgroupPowerReports for tests and analysis."""

    subscribes_to = (CgroupPowerReport,)

    def __init__(self) -> None:
        super().__init__(component="cgroup-reporter")
        self.reports: list = []

    def handle(self, message) -> None:
        if isinstance(message, CgroupPowerReport):
            self.reports.append(message)

    def group_series(self, group: str) -> list:
        """Active watts of one group per period."""
        return [report.by_group.get(group, 0.0) for report in self.reports]

"""Counter selection by correlation ranking.

Section 3 of the paper fixes ``instructions``, ``cache-references`` and
``cache-misses`` as "the most correlated with the power consumption"; the
conclusion then proposes, as future work, "the Spearman rank correlation
for finding automatically the most correlated" counters.  This module
implements both: Pearson and Spearman ranking over a sampling dataset,
with the paper's two selection criteria — portability across vendors and
collection overhead — applied as filters and tie-breakers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.core.sampling import SamplingDataset
from repro.errors import ConfigurationError
from repro.perf.events import event_def, portable_events


@dataclass(frozen=True)
class CounterRanking:
    """Correlation of every candidate event with measured power."""

    #: (event, |correlation|) pairs, strongest first.
    ranked: Tuple[Tuple[str, float], ...]
    method: str

    def top(self, k: int) -> Tuple[str, ...]:
        """The *k* strongest events."""
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        return tuple(event for event, _score in self.ranked[:k])

    def score(self, event: str) -> float:
        """|correlation| of one event (0.0 when absent)."""
        for name, value in self.ranked:
            if name == event:
                return value
        return 0.0


def _collect_columns(dataset: SamplingDataset, events: Sequence[str]
                     ) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
    power = np.array([point.power_w for point in dataset.points])
    columns = {
        event: np.array([point.rates.get(event, 0.0)
                         for point in dataset.points])
        for event in events
    }
    return columns, power


def rank_counters(dataset: SamplingDataset,
                  events: Optional[Sequence[str]] = None,
                  method: str = "spearman",
                  portable_only: bool = True) -> CounterRanking:
    """Rank candidate events by |correlation| with measured power.

    ``method`` is ``"spearman"`` (rank correlation, robust to the
    non-linearities of real power curves — the paper's proposed upgrade)
    or ``"pearson"`` (plain linear correlation).  With *portable_only*,
    events missing from any vendor's PMU are excluded up front, mirroring
    the paper's availability criterion.  Ties break toward the event with
    lower collection overhead (the paper's second criterion).
    """
    if len(dataset) < 3:
        raise ConfigurationError("need at least 3 samples to correlate")
    if events is None:
        events = dataset.events
    if portable_only:
        portable = set(portable_events())
        events = [event for event in events if event in portable]
    if not events:
        raise ConfigurationError("no candidate events after filtering")

    columns, power = _collect_columns(dataset, events)
    scores: List[Tuple[str, float]] = []
    for event, values in columns.items():
        if np.allclose(values, values[0]):
            correlation = 0.0  # constant column carries no information
        elif method == "spearman":
            correlation, _p = stats.spearmanr(values, power)
        elif method == "pearson":
            correlation, _p = stats.pearsonr(values, power)
        else:
            raise ConfigurationError(
                f"unknown correlation method {method!r}")
        if np.isnan(correlation):
            correlation = 0.0
        scores.append((event, abs(float(correlation))))

    scores.sort(key=lambda item: (-item[1], event_def(item[0]).overhead,
                                  item[0]))
    return CounterRanking(ranked=tuple(scores), method=method)


def select_counters(dataset: SamplingDataset, k: int = 3,
                    method: str = "spearman",
                    events: Optional[Sequence[str]] = None,
                    portable_only: bool = True,
                    max_redundancy: Optional[float] = 0.95
                    ) -> Tuple[str, ...]:
    """The top-*k* events for power modelling on this machine.

    With *max_redundancy* set (the default), selection is greedy with a
    diversity constraint: a candidate whose |Spearman correlation| with an
    already-selected event exceeds the threshold is skipped, so the model
    does not spend two of its few counters on near-duplicates (e.g.
    ``cache-references`` and ``LLC-loads``).  Pass ``None`` for the naive
    top-k.
    """
    ranking = rank_counters(dataset, events=events, method=method,
                            portable_only=portable_only)
    if max_redundancy is None:
        return ranking.top(k)
    if not 0.0 < max_redundancy <= 1.0:
        raise ConfigurationError("max_redundancy must be within (0, 1]")

    candidates = [event for event, _score in ranking.ranked]
    columns, _power = _collect_columns(dataset, candidates)
    selected: List[str] = []
    for event in candidates:
        if len(selected) >= k:
            break
        redundant = False
        for chosen in selected:
            correlation, _p = stats.spearmanr(columns[event], columns[chosen])
            if np.isnan(correlation):
                continue
            if abs(float(correlation)) > max_redundancy:
                redundant = True
                break
        if not redundant:
            selected.append(event)
    return tuple(selected)

"""Reporter actors: rendering power estimations for consumers.

A Reporter "converts the power estimations produced by the library into a
suitable format" (paper, Section 3).  All reporters subscribe to
:class:`AggregatedPowerReport` (machine-level, per period) and
:class:`PidEnergyReport` (per-run energy summaries).
"""

from __future__ import annotations

import csv
import io
import json
import os
import tempfile
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro.core.aggregators import PidEnergyReport
from repro.core.messages import AggregatedPowerReport, CapEvent
from repro.core.stage import PipelineStage
from repro.errors import ConfigurationError


class InMemoryReporter(PipelineStage):
    """Collects every report in lists — the test/benchmark reporter."""

    subscribes_to = (AggregatedPowerReport, PidEnergyReport, CapEvent)

    def __init__(self) -> None:
        super().__init__(component="memory-reporter")
        self.aggregated: List[AggregatedPowerReport] = []
        self.energy_reports: List[PidEnergyReport] = []
        #: Control-loop actuations, in order (empty without a cap).
        self.cap_events: List[CapEvent] = []

    def handle(self, message) -> None:
        if isinstance(message, AggregatedPowerReport):
            self.aggregated.append(message)
        elif isinstance(message, PidEnergyReport):
            self.energy_reports.append(message)
        elif isinstance(message, CapEvent):
            self.cap_events.append(message)

    # -- queries ------------------------------------------------------------

    def total_series(self) -> List[float]:
        """Machine power estimate per period, watts."""
        return [report.total_w for report in self.aggregated]

    def time_series(self) -> List[float]:
        """Timestamps of the aggregated reports, seconds."""
        return [report.time_s for report in self.aggregated]

    def pid_series(self, pid: int) -> List[float]:
        """Active power attributed to one pid per period, watts."""
        return [report.by_pid.get(pid, 0.0) for report in self.aggregated]

    def gap_series(self) -> List[bool]:
        """Per-period gap flags (True where no formula produced data)."""
        return [report.gap for report in self.aggregated]

    def gap_count(self) -> int:
        """Number of explicitly marked data-less periods."""
        return sum(1 for report in self.aggregated if report.gap)


class ConsoleReporter(PipelineStage):
    """Human-readable one-line-per-period output."""

    subscribes_to = (AggregatedPowerReport,)

    def __init__(self, stream: Optional[io.TextIOBase] = None) -> None:
        super().__init__(component="console-reporter")
        self.stream = stream
        self.lines_written = 0

    def handle(self, message) -> None:
        if not isinstance(message, AggregatedPowerReport):
            return
        parts = [f"t={message.time_s:8.1f}s",
                 f"total={message.total_w:6.2f}W",
                 f"idle={message.idle_w:5.2f}W"]
        for pid in message.pids():
            parts.append(f"pid{pid}={message.by_pid[pid]:5.2f}W")
        line = "  ".join(parts)
        if self.stream is not None:
            self.stream.write(line + "\n")
        else:
            print(line)
        self.lines_written += 1


class CsvReporter(PipelineStage):
    """Writes one CSV row per aggregated report.

    Columns: time_s, total_w, idle_w, one ``pid_<n>_w`` column per
    monitored pid (the set of pids is fixed at construction so the header
    is stable), then ``gap`` (1 where the period carried no formula data,
    0 otherwise).

    ``flush_every=N`` flushes the file once per N rows instead of after
    every row — per-row flushing dominates the reporter's cost in long
    runs.  The default of 1 keeps the historical always-current file.

    Restart-safe: opening on an existing non-empty file **appends**
    (no second header), so a session interrupted and resumed continues
    the same output file.  ``fsync=True`` additionally forces every
    flush to stable storage — opt-in durability for crash-safe runs.

    ``control=True`` opts in to two extra trailing columns, ``cap_w``
    (the active cap, empty while none) and ``cap_hz`` (the control
    loop's DVFS ceiling) — opt-in so cap-less runs keep their exact
    historical byte layout.
    """

    subscribes_to = (AggregatedPowerReport,)

    def __init__(self, path: Union[str, Path], pids,
                 flush_every: int = 1, fsync: bool = False,
                 control: bool = False) -> None:
        super().__init__(component="csv-reporter")
        if flush_every < 1:
            raise ConfigurationError("flush_every must be >= 1")
        self.path = Path(path)
        self.pids = tuple(sorted(pids))
        self.flush_every = flush_every
        self.fsync = fsync
        self.control = control
        #: True when on_start appended to an existing file.
        self.resumed = False
        self._rows_since_flush = 0
        self._file = None
        self._writer = None
        self._cap_w: Optional[float] = None
        self._cap_hz: Optional[int] = None

    def subscriptions(self):
        topics = list(super().subscriptions())
        if self.control:
            topics.append(CapEvent)
        return topics

    def on_start(self) -> None:
        self.resumed = self.path.exists() and self.path.stat().st_size > 0
        self._file = self.path.open("a" if self.resumed else "w",
                                    newline="")
        self._writer = csv.writer(self._file)
        if not self.resumed:
            header = ["time_s", "total_w", "idle_w"]
            header.extend(f"pid_{pid}_w" for pid in self.pids)
            header.append("gap")
            if self.control:
                header.extend(("cap_w", "cap_hz"))
            self._writer.writerow(header)

    def on_stop(self) -> None:
        if self._file is not None:
            self._file.flush()
            self._maybe_fsync()
            self._file.close()
            self._file = None

    def _maybe_fsync(self) -> None:
        if self.fsync and self._file is not None:
            os.fsync(self._file.fileno())

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()
            self._maybe_fsync()
            self._rows_since_flush = 0

    def handle(self, message) -> None:
        if isinstance(message, CapEvent):
            self._cap_w = message.cap_w
            self._cap_hz = message.frequency_hz
            return
        if not isinstance(message, AggregatedPowerReport):
            return
        row = [f"{message.time_s:.3f}", f"{message.total_w:.4f}",
               f"{message.idle_w:.4f}"]
        row.extend(f"{message.by_pid.get(pid, 0.0):.4f}" for pid in self.pids)
        row.append(str(int(message.gap)))
        if self.control:
            row.append("" if self._cap_w is None else f"{self._cap_w:.4f}")
            row.append("" if self._cap_hz is None else str(self._cap_hz))
        self._writer.writerow(row)
        self._rows_since_flush += 1
        if self._rows_since_flush >= self.flush_every:
            self._file.flush()
            self._maybe_fsync()
            self._rows_since_flush = 0


class CallbackReporter(PipelineStage):
    """Invokes a user callback for every aggregated report."""

    subscribes_to = (AggregatedPowerReport,)

    def __init__(self, callback: Callable[[AggregatedPowerReport], None]) -> None:
        super().__init__(component="callback-reporter")
        self.callback = callback

    def handle(self, message) -> None:
        if isinstance(message, AggregatedPowerReport):
            self.callback(message)


class JsonlReporter(PipelineStage):
    """Writes one JSON object per aggregated report (machine-readable log).

    ``flush_every=N`` flushes once per N records (default 1: the file is
    always current, matching historical behaviour).

    Restart-safe like :class:`CsvReporter`: an existing non-empty file
    is appended to, and ``fsync=True`` forces flushes to stable storage.

    ``control=True`` opts in to a ``control`` sub-object per record
    (active ``cap_w`` and ``cap_hz`` ceiling) and one
    ``{"cap_event": ...}`` record per actuation — opt-in so cap-less
    runs keep their exact historical byte layout.
    """

    subscribes_to = (AggregatedPowerReport,)

    def __init__(self, path: Union[str, Path], flush_every: int = 1,
                 fsync: bool = False, control: bool = False) -> None:
        super().__init__(component="jsonl-reporter")
        if flush_every < 1:
            raise ConfigurationError("flush_every must be >= 1")
        self.path = Path(path)
        self.flush_every = flush_every
        self.fsync = fsync
        self.control = control
        #: True when on_start appended to an existing file.
        self.resumed = False
        self._records_since_flush = 0
        self._file = None
        self.records_written = 0
        self._cap_w: Optional[float] = None
        self._cap_hz: Optional[int] = None

    def subscriptions(self):
        topics = list(super().subscriptions())
        if self.control:
            topics.append(CapEvent)
        return topics

    def on_start(self) -> None:
        self.resumed = self.path.exists() and self.path.stat().st_size > 0
        self._file = self.path.open("a" if self.resumed else "w")

    def on_stop(self) -> None:
        if self._file is not None:
            self._file.flush()
            self._maybe_fsync()
            self._file.close()
            self._file = None

    def _maybe_fsync(self) -> None:
        if self.fsync and self._file is not None:
            os.fsync(self._file.fileno())

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()
            self._maybe_fsync()
            self._records_since_flush = 0

    def handle(self, message) -> None:
        if isinstance(message, CapEvent):
            self._cap_w = message.cap_w
            self._cap_hz = message.frequency_hz
            self._write_record({"cap_event": message.to_wire()})
            return
        if not isinstance(message, AggregatedPowerReport):
            return
        record = {
            "time_s": message.time_s,
            "period_s": message.period_s,
            "total_w": message.total_w,
            "idle_w": message.idle_w,
            "formula": message.formula,
            "gap": message.gap,
            "by_pid": {str(pid): watts
                       for pid, watts in message.by_pid.items()},
        }
        if self.control:
            record["control"] = {"cap_w": self._cap_w,
                                 "cap_hz": self._cap_hz}
        self._write_record(record)

    def _write_record(self, record) -> None:
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self.records_written += 1
        self._records_since_flush += 1
        if self._records_since_flush >= self.flush_every:
            self._file.flush()
            self._maybe_fsync()
            self._records_since_flush = 0


class PrometheusReporter(PipelineStage):
    """Maintains a Prometheus text-format exposition of the latest state.

    Every aggregated report rewrites *path* with ``powerapi_machine_watts``
    and one ``powerapi_process_watts{pid="..."}`` sample per process —
    the node-exporter "textfile collector" integration pattern.

    Writes are atomic: the exposition goes to a temp file in the same
    directory followed by :func:`os.replace`, so a concurrent scraper
    always reads either the previous or the new complete exposition,
    never a partially written one.

    When a control loop is active, ``powerapi_cap_watts`` and
    ``powerapi_cap_hertz`` gauges appear after the first actuation
    event; cap-less runs expose exactly the historical sample set.
    """

    subscribes_to = (AggregatedPowerReport, CapEvent)

    def __init__(self, path: Union[str, Path]) -> None:
        super().__init__(component="prometheus-reporter")
        self.path = Path(path)
        self._cap_event: Optional[CapEvent] = None

    def handle(self, message) -> None:
        if isinstance(message, CapEvent):
            self._cap_event = message
            return
        if not isinstance(message, AggregatedPowerReport):
            return
        lines = [
            "# HELP powerapi_machine_watts Estimated machine power.",
            "# TYPE powerapi_machine_watts gauge",
            f"powerapi_machine_watts {message.total_w:.4f}",
            "# HELP powerapi_idle_watts Calibrated idle power.",
            "# TYPE powerapi_idle_watts gauge",
            f"powerapi_idle_watts {message.idle_w:.4f}",
            "# HELP powerapi_gap Whether the last period carried no data.",
            "# TYPE powerapi_gap gauge",
            f"powerapi_gap {int(message.gap)}",
            "# HELP powerapi_process_watts Estimated active power per process.",
            "# TYPE powerapi_process_watts gauge",
        ]
        for pid in message.pids():
            lines.append(f'powerapi_process_watts{{pid="{pid}"}} '
                         f"{message.by_pid[pid]:.4f}")
        if self._cap_event is not None:
            cap = self._cap_event.cap_w
            lines.extend([
                "# HELP powerapi_cap_watts Active power cap (0 = none).",
                "# TYPE powerapi_cap_watts gauge",
                f"powerapi_cap_watts {0.0 if cap is None else cap:.4f}",
                "# HELP powerapi_cap_hertz Control-loop DVFS ceiling.",
                "# TYPE powerapi_cap_hertz gauge",
                f"powerapi_cap_hertz {self._cap_event.frequency_hz}",
            ])
        self._atomic_write("\n".join(lines) + "\n")

    def _atomic_write(self, text: str) -> None:
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name + ".",
            suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp_name, self.path)
        except BaseException:
            os.unlink(tmp_name)
            raise

"""Formula actors: turning sensor reports into power estimations.

A Formula "gets the sensor messages from the event bus in order to
estimate the power consumption of a given process" (paper, Section 3).

* :class:`HpcFormula` — applies a learned
  :class:`~repro.core.model.PowerModel` to HPC rates; this is PowerAPI's
  own formula,
* :class:`CpuLoadFormula` — the CPU-load linear model of Versick et al.,
  kept here because it plugs into the same pipeline and the ablations
  compare the two metric choices.
"""

from __future__ import annotations

from repro.core.messages import HpcReport, PowerReport, ProcFsReport
from repro.core.model import PowerModel
from repro.core.stage import PipelineStage
from repro.errors import ConfigurationError


class HpcFormula(PipelineStage):
    """Per-process power from HPC rates via a frequency-aware model."""

    subscribes_to = (HpcReport,)

    def __init__(self, model: PowerModel) -> None:
        super().__init__(component="hpc-formula")
        self.model = model

    def handle(self, message) -> None:
        if not isinstance(message, HpcReport):
            return
        power_w = self.model.predict_active(
            message.frequency_hz, message.rates())
        self.publish(PowerReport(
            time_s=message.time_s,
            period_s=message.period_s,
            pid=message.pid,
            power_w=power_w,
            formula=self.model.name,
        ))


class CpuLoadFormula(PipelineStage):
    """Per-process power proportional to CPU-time share (Versick-style).

    ``active_range_w`` is the machine's measured span between idle and
    all-cores-busy; a process consuming a fraction of total CPU capacity
    is attributed that fraction of the span.
    """

    subscribes_to = (ProcFsReport,)

    def __init__(self, active_range_w: float, num_cpus: int,
                 name: str = "cpu-load") -> None:
        super().__init__(component=name)
        if active_range_w < 0:
            raise ConfigurationError("active_range_w must be >= 0")
        if num_cpus < 1:
            raise ConfigurationError("num_cpus must be >= 1")
        self.active_range_w = active_range_w
        self.num_cpus = num_cpus
        self.name = name

    def handle(self, message) -> None:
        if not isinstance(message, ProcFsReport):
            return
        share = message.cpu_time_delta_s / (message.period_s * self.num_cpus)
        self.publish(PowerReport(
            time_s=message.time_s,
            period_s=message.period_s,
            pid=message.pid,
            power_w=max(0.0, share) * self.active_range_w,
            formula=self.name,
        ))

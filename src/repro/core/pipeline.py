"""Declarative pipeline descriptions and their assembly.

A :class:`PipelineSpec` is a frozen, serializable description of one
Figure 2 monitoring pipeline: which pids, at what period, through which
sensor/formula/aggregator/reporter components (by registry name), with
which degradation ladder, fault plan and telemetry export.  The fluent
``PowerAPI.monitor(...).every(...).to(...)`` DSL builds one of these
under the hood; config files hold the same description as JSON or TOML:

    [[reporters]]
    type = "csv"
    path = "power.csv"

    pids = [1]
    period_s = 1.0
    [sensor]
    type = "hpc"

Both roads meet in :class:`PipelineBuilder`, which validates a spec
against a :class:`~repro.core.components.ComponentRegistry` and
instantiates the actor graph — so a pipeline assembled from a config
file is *the same pipeline*, actor for actor, as its fluent twin.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import (Any, Dict, List, Mapping, Optional, Sequence, Tuple)

from repro.actors.actor import Actor, ActorRef
from repro.configio import dumps_toml, loads_toml
from repro.core.components import (BuildContext, ComponentRegistry,
                                   default_registry)
from repro.core.sensors import (DegradationPolicy, PipelineMode,
                                ProcFsSensor)
from repro.core.formula import CpuLoadFormula
from repro.errors import ConfigurationError
from repro.faults.health import HealthLog, HealthMonitor
from repro.faults.plan import FaultPlan


def _freeze_param(value: Any) -> Any:
    """Normalize one param value so spec equality survives JSON."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_param(item) for item in value)
    return value


def _thaw_param(value: Any) -> Any:
    """The JSON-friendly form of a frozen param value."""
    if isinstance(value, tuple):
        return [_thaw_param(item) for item in value]
    return value


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage: a registered component name plus its config."""

    type: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.type or not isinstance(self.type, str):
            raise ConfigurationError(
                f"stage type must be a non-empty string, got {self.type!r}")
        frozen = {str(key): _freeze_param(value)
                  for key, value in dict(self.params).items()}
        object.__setattr__(self, "params", frozen)

    def to_dict(self) -> Dict[str, Any]:
        """Flat dict form: ``type`` plus the params inline."""
        if "type" in self.params:
            raise ConfigurationError(
                "stage params cannot use the reserved key 'type'")
        data: Dict[str, Any] = {"type": self.type}
        for key, value in self.params.items():
            data[key] = _thaw_param(value)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StageSpec":
        if "type" not in data:
            raise ConfigurationError(
                f"stage entry {dict(data)!r} is missing 'type'")
        params = {key: value for key, value in data.items()
                  if key != "type"}
        return cls(type=str(data["type"]), params=params)


@dataclass(frozen=True)
class DegradationSpec:
    """The HPC → cpu-load fallback thresholds (periods)."""

    degrade_after: int = 3
    recover_after: int = 2

    def __post_init__(self) -> None:
        # Reuse the runtime policy's validation at description time.
        DegradationPolicy(self.degrade_after, self.recover_after)

    def to_dict(self) -> Dict[str, Any]:
        return {"degrade_after": self.degrade_after,
                "recover_after": self.recover_after}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DegradationSpec":
        unknown = sorted(set(data) - {"degrade_after", "recover_after"})
        if unknown:
            raise ConfigurationError(
                f"unknown degradation key(s): {', '.join(unknown)}")
        return cls(degrade_after=int(data.get("degrade_after", 3)),
                   recover_after=int(data.get("recover_after", 2)))

    def to_policy(self) -> DegradationPolicy:
        return DegradationPolicy(self.degrade_after, self.recover_after)


def parse_uplink(spec: str) -> Tuple[str, int]:
    """Parse one ``"host:port"`` uplink entry into a dialable pair."""
    host, sep, port = str(spec).rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"bad uplink {spec!r}; expected HOST:PORT")
    try:
        return (host, int(port))
    except ValueError:
        raise ConfigurationError(f"bad uplink port in {spec!r}") from None


@dataclass(frozen=True)
class TelemetrySpec:
    """Export the pipeline's reports over the streaming service.

    The delivery-guarantee knobs mirror the crash-recovery layer:
    ``replay_window`` enables the server's RESUME replay ring,
    ``spool_dir`` points subscribers at a durable on-disk journal, and
    ``breaker_failures``/``breaker_reset_s`` configure the client-side
    circuit breaker guarding re-dial storms.
    """

    host: str = "127.0.0.1"
    port: int = 0
    overflow: Optional[str] = None
    queue_capacity: Optional[int] = None
    heartbeat_every: Optional[int] = None
    host_label: Optional[str] = None
    replay_window: Optional[int] = None
    spool_dir: Optional[str] = None
    breaker_failures: Optional[int] = None
    breaker_reset_s: Optional[float] = None
    #: BATCH envelope flush policy for v2 subscribers (server-side).
    batch_max_frames: Optional[int] = None
    batch_max_bytes: Optional[int] = None
    batch_max_latency_s: Optional[float] = None
    #: Connection cap; excess subscribers get an ERROR frame.
    max_subscribers: Optional[int] = None
    #: Upstream servers whose streams this server relays downstream,
    #: as ``"host:port"`` strings (the tree-junction topology).
    uplinks: Tuple[str, ...] = ()

    _OPTIONAL = ("overflow", "queue_capacity", "heartbeat_every",
                 "host_label", "replay_window", "spool_dir",
                 "breaker_failures", "breaker_reset_s",
                 "batch_max_frames", "batch_max_bytes",
                 "batch_max_latency_s", "max_subscribers")

    def __post_init__(self) -> None:
        object.__setattr__(self, "uplinks", tuple(self.uplinks))
        if self.replay_window is not None and self.replay_window < 0:
            raise ConfigurationError("replay_window must be >= 0")
        if self.breaker_failures is not None and self.breaker_failures < 1:
            raise ConfigurationError("breaker_failures must be >= 1")
        if self.breaker_reset_s is not None and self.breaker_reset_s <= 0:
            raise ConfigurationError("breaker_reset_s must be positive")
        if self.batch_max_frames is not None and self.batch_max_frames < 1:
            raise ConfigurationError("batch_max_frames must be >= 1")
        if self.batch_max_bytes is not None and self.batch_max_bytes < 1:
            raise ConfigurationError("batch_max_bytes must be >= 1")
        if self.batch_max_latency_s is not None \
                and self.batch_max_latency_s < 0:
            raise ConfigurationError("batch_max_latency_s must be >= 0")
        if self.max_subscribers is not None and self.max_subscribers < 0:
            raise ConfigurationError("max_subscribers must be >= 0")
        for uplink in self.uplinks:
            parse_uplink(uplink)  # fail at description time

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"host": self.host, "port": self.port}
        for key in self._OPTIONAL:
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        if self.uplinks:
            data["uplinks"] = list(self.uplinks)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TelemetrySpec":
        known = {"host", "port", "uplinks"} | set(cls._OPTIONAL)
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown telemetry key(s): {', '.join(unknown)}")
        kwargs = {key: data[key] for key in known if key in data}
        return cls(**kwargs)

    def server_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for ``PowerAPI.serve_telemetry``.

        Spool/breaker knobs are client-side and excluded — consumers
        read them off the spec directly (the CLI ``subscribe`` path).
        The ``batch_*`` knobs collapse into one ``BatchPolicy``;
        ``uplinks`` become dialable ``(host, port)`` pairs.
        """
        kwargs: Dict[str, Any] = {}
        for key in ("overflow", "queue_capacity", "heartbeat_every",
                    "host_label", "replay_window", "max_subscribers"):
            value = getattr(self, key)
            if value is not None:
                kwargs[key] = value
        if (self.batch_max_frames is not None
                or self.batch_max_bytes is not None
                or self.batch_max_latency_s is not None):
            from repro.telemetry.server import BatchPolicy
            defaults = BatchPolicy()
            kwargs["batch"] = BatchPolicy(
                max_frames=(defaults.max_frames
                            if self.batch_max_frames is None
                            else self.batch_max_frames),
                max_bytes=(defaults.max_bytes
                           if self.batch_max_bytes is None
                           else self.batch_max_bytes),
                max_latency_s=(defaults.max_latency_s
                               if self.batch_max_latency_s is None
                               else self.batch_max_latency_s))
        if self.uplinks:
            kwargs["uplinks"] = tuple(
                parse_uplink(uplink) for uplink in self.uplinks)
        return kwargs


@dataclass(frozen=True)
class ControlSpec:
    """The closed-loop power-cap section of a pipeline description.

    ``policy`` is a registry-validated :class:`StageSpec` of kind
    ``policy`` (``deadband`` or ``pi``); ``grace_periods`` is how many
    aggregated reports the cap actor skips after each actuation before
    re-measuring; ``throttle`` enables the scheduler hook (nice-based
    throttling of the hungriest process at the frequency floor).
    """

    cap_w: float
    policy: StageSpec = StageSpec("deadband")
    grace_periods: int = 1
    throttle: bool = True

    def __post_init__(self) -> None:
        if self.cap_w <= 0:
            raise ConfigurationError("cap must be positive watts")
        if self.grace_periods < 0:
            raise ConfigurationError("grace_periods must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        return {"cap_w": self.cap_w, "policy": self.policy.to_dict(),
                "grace_periods": self.grace_periods,
                "throttle": self.throttle}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ControlSpec":
        known = {"cap_w", "policy", "grace_periods", "throttle"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown control key(s): {', '.join(unknown)}")
        if "cap_w" not in data:
            raise ConfigurationError("control config is missing 'cap_w'")
        kwargs: Dict[str, Any] = {"cap_w": float(data["cap_w"])}
        if "policy" in data:
            kwargs["policy"] = StageSpec.from_dict(data["policy"])
        if "grace_periods" in data:
            kwargs["grace_periods"] = int(data["grace_periods"])
        if "throttle" in data:
            kwargs["throttle"] = bool(data["throttle"])
        return cls(**kwargs)


_DEFAULT_AGGREGATORS = (StageSpec("timestamp"), StageSpec("pid"))


@dataclass(frozen=True)
class PipelineSpec:
    """A complete, serializable description of one monitoring pipeline.

    ``period_s=None`` means "the owning PowerAPI's clock period".
    ``faults`` is a :meth:`repro.faults.plan.FaultPlan.parse` spec
    string (``"crash@5:formula-0;pid-exit@8"``), kept in its textual
    form so the description stays a plain value.
    """

    pids: Tuple[int, ...]
    period_s: Optional[float] = None
    sensor: StageSpec = StageSpec("hpc")
    formula: StageSpec = StageSpec("hpc")
    aggregators: Tuple[StageSpec, ...] = _DEFAULT_AGGREGATORS
    reporters: Tuple[StageSpec, ...] = ()
    degradation: Optional[DegradationSpec] = DegradationSpec()
    faults: Optional[str] = None
    telemetry: Optional[TelemetrySpec] = None
    control: Optional[ControlSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "pids",
                           tuple(int(pid) for pid in self.pids))
        object.__setattr__(self, "aggregators", tuple(self.aggregators))
        object.__setattr__(self, "reporters", tuple(self.reporters))
        if not self.pids:
            raise ConfigurationError("a pipeline needs at least one pid")
        if self.period_s is not None and self.period_s <= 0:
            raise ConfigurationError("period must be positive")

    # -- validation -----------------------------------------------------

    def validate(self, registry: Optional[ComponentRegistry] = None,
                 require_reporter: bool = True) -> None:
        """Check every referenced component and its params against
        *registry*; raises :class:`ConfigurationError` naming the
        available components on an unknown name."""
        registry = registry or default_registry()
        stages = [("sensor", self.sensor), ("formula", self.formula)]
        stages.extend(("aggregator", agg) for agg in self.aggregators)
        stages.extend(("reporter", rep) for rep in self.reporters)
        if self.control is not None:
            stages.append(("policy", self.control.policy))
        for kind, stage in stages:
            component = registry.get(kind, stage.type)
            component.validate_params(stage.params)
        if require_reporter and not self.reporters:
            raise ConfigurationError(
                "a pipeline needs at least one reporter "
                f"(available: {', '.join(registry.names('reporter'))})")
        if self.faults is not None:
            FaultPlan.parse(self.faults)  # fail early, at description time

    # -- dict form ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The JSON/TOML-ready nested-dict form (None fields omitted)."""
        data: Dict[str, Any] = {"pids": list(self.pids)}
        if self.period_s is not None:
            data["period_s"] = self.period_s
        if self.faults is not None:
            data["faults"] = self.faults
        data["sensor"] = self.sensor.to_dict()
        data["formula"] = self.formula.to_dict()
        data["aggregators"] = [agg.to_dict() for agg in self.aggregators]
        data["reporters"] = [rep.to_dict() for rep in self.reporters]
        if self.degradation is not None:
            data["degradation"] = self.degradation.to_dict()
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry.to_dict()
        if self.control is not None:
            data["control"] = self.control.to_dict()
        return data

    _KNOWN_KEYS = frozenset((
        "pids", "period_s", "sensor", "formula", "aggregators",
        "reporters", "degradation", "faults", "telemetry", "control"))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineSpec":
        unknown = sorted(set(data) - cls._KNOWN_KEYS)
        if unknown:
            raise ConfigurationError(
                f"unknown pipeline key(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(cls._KNOWN_KEYS))}")
        if "pids" not in data:
            raise ConfigurationError("pipeline config is missing 'pids'")
        kwargs: Dict[str, Any] = {"pids": tuple(data["pids"])}
        if "period_s" in data:
            kwargs["period_s"] = float(data["period_s"])
        if "sensor" in data:
            kwargs["sensor"] = StageSpec.from_dict(data["sensor"])
        if "formula" in data:
            kwargs["formula"] = StageSpec.from_dict(data["formula"])
        if "aggregators" in data:
            kwargs["aggregators"] = tuple(
                StageSpec.from_dict(entry) for entry in data["aggregators"])
        if "reporters" in data:
            kwargs["reporters"] = tuple(
                StageSpec.from_dict(entry) for entry in data["reporters"])
        kwargs["degradation"] = (
            DegradationSpec.from_dict(data["degradation"])
            if "degradation" in data else None)
        if "faults" in data:
            kwargs["faults"] = str(data["faults"])
        if "telemetry" in data:
            kwargs["telemetry"] = TelemetrySpec.from_dict(data["telemetry"])
        if "control" in data:
            kwargs["control"] = ControlSpec.from_dict(data["control"])
        return cls(**kwargs)

    # -- serialization --------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(f"bad JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ConfigurationError("pipeline JSON must be an object")
        return cls.from_dict(data)

    def to_toml(self) -> str:
        return dumps_toml(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "PipelineSpec":
        return cls.from_dict(loads_toml(text))

    @classmethod
    def from_file(cls, path: Any) -> "PipelineSpec":
        """Load a spec from a ``.json`` or ``.toml`` file."""
        import os
        text = open(os.fspath(path), "r", encoding="utf-8").read()
        name = os.fspath(path).lower()
        if name.endswith(".json"):
            return cls.from_json(text)
        if name.endswith(".toml"):
            return cls.from_toml(text)
        stripped = text.lstrip()
        if stripped.startswith("{"):
            return cls.from_json(text)
        return cls.from_toml(text)

    def with_reporter(self, type: str, **params: Any) -> "PipelineSpec":
        """A copy with one more reporter stage appended."""
        return replace(self, reporters=self.reporters
                       + (StageSpec(type, params),))


@dataclass
class BuiltPipeline:
    """What :meth:`PipelineBuilder.build` hands back to the facade."""

    index: int
    refs: List[ActorRef]
    reporters: List[Actor]
    pid_aggregator: Optional[Actor]
    health: HealthLog
    mode: Optional[PipelineMode]
    #: The PowerCapActor instance when the spec has a [control] section.
    control: Optional[Actor] = None


class PipelineBuilder:
    """Turns a validated :class:`PipelineSpec` into live actors.

    Reproduces the historical hand-wired graph exactly — same actor
    names (``sensor-{n}``, ``formula-{n}``, ``ts-aggregator-{n}``, ...)
    and same spawn order — so pipelines built from config files are
    indistinguishable from fluently-built ones, fault plans that
    address actors by name included.
    """

    def __init__(self, registry: Optional[ComponentRegistry] = None) -> None:
        self.registry = registry or default_registry()

    @staticmethod
    def _aggregator_name(stage_type: str, index: int) -> str:
        prefix = "ts" if stage_type == "timestamp" else stage_type
        return f"{prefix}-aggregator-{index}"

    def build(self, api: Any, spec: PipelineSpec,
              extra_reporters: Sequence[Actor] = ()) -> BuiltPipeline:
        """Instantiate and spawn the actor graph on *api*'s system.

        *extra_reporters* are pre-constructed reporter actors (from the
        fluent ``.to(...)`` path) spawned after the spec's declarative
        reporters.
        """
        spec.validate(self.registry,
                      require_reporter=not extra_reporters)

        n = api._pipeline_count
        api._pipeline_count += 1
        num_cpus = len(api.kernel.machine.topology)
        active_range = max(0.0,
                           api._full_load_estimate() - api.model.idle_w)

        mode: Optional[PipelineMode] = None
        policy: Optional[DegradationPolicy] = None
        if spec.sensor.type == "hpc" and spec.degradation is not None:
            policy = spec.degradation.to_policy()
            mode = PipelineMode()

        context = BuildContext(
            kernel=api.kernel, machine=api.kernel.machine, perf=api.perf,
            model=api.model, pids=spec.pids,
            period_s=(spec.period_s if spec.period_s is not None
                      else api.clock.period_s),
            num_cpus=num_cpus, active_range_w=active_range,
            mode=mode, policy=policy, index=n)

        sensor = self.registry.create("sensor", spec.sensor.type, context,
                                      spec.sensor.params)
        formula = self.registry.create("formula", spec.formula.type,
                                       context, spec.formula.params)

        refs: List[ActorRef] = []
        refs.append(api.system.spawn(sensor, name=f"sensor-{n}"))
        if mode is not None:
            # The degradation ladder's standby rung: a cpu-load path
            # that publishes only while the pipeline is degraded.
            refs.append(api.system.spawn(
                ProcFsSensor(api.kernel.procfs, spec.pids,
                             num_cpus=num_cpus, mode=mode),
                name=f"standby-sensor-{n}"))
            refs.append(api.system.spawn(
                CpuLoadFormula(active_range_w=active_range,
                               num_cpus=num_cpus,
                               name="cpu-load-fallback"),
                name=f"standby-formula-{n}"))
        refs.append(api.system.spawn(formula, name=f"formula-{n}"))

        pid_aggregator: Optional[Actor] = None
        for stage in spec.aggregators:
            aggregator = self.registry.create("aggregator", stage.type,
                                              context, stage.params)
            if stage.type == "pid":
                pid_aggregator = aggregator
            refs.append(api.system.spawn(
                aggregator, name=self._aggregator_name(stage.type, n)))

        health = HealthLog()
        refs.append(api.system.spawn(HealthMonitor(health),
                                     name=f"health-{n}"))

        control: Optional[Actor] = None
        if spec.control is not None:
            # Imported lazily (like serve_telemetry's bridge) so the
            # observation-only pipeline never pays for the control layer.
            from repro.control.actor import PowerCapActor
            policy_obj = self.registry.create(
                "policy", spec.control.policy.type, context,
                spec.control.policy.params)
            control = PowerCapActor(
                api.kernel, cap_w=spec.control.cap_w, policy=policy_obj,
                grace_periods=spec.control.grace_periods,
                throttle=spec.control.throttle)
            refs.append(api.system.spawn(control, name=f"power-cap-{n}"))

        reporters: List[Actor] = [
            self.registry.create("reporter", stage.type, context,
                                 stage.params)
            for stage in spec.reporters]
        reporters.extend(extra_reporters)
        for j, reporter in enumerate(reporters):
            name = f"reporter-{n}" if j == 0 else f"reporter-{n}-{j}"
            refs.append(api.system.spawn(reporter, name=name))

        return BuiltPipeline(index=n, refs=refs, reporters=reporters,
                             pid_aggregator=pid_aggregator, health=health,
                             mode=mode, control=control)

"""Offline estimation: replay recorded counter logs through a model.

The powerapi-ng deployment style separates acquisition from estimation:
sensors write counter reports to a log/queue, and the formula runs
elsewhere (possibly much later) against a stored power model.  This
module implements that workflow:

* :class:`CounterLogWriter` — records per-period counter deltas of a
  live run into the interchange CSV
  (:func:`repro.perf.parsing.parse_counter_log` reads it back),
* :func:`estimate_from_log` — replays a parsed log through a
  :class:`~repro.core.model.PowerModel`, producing the same power series
  the live pipeline would have produced,
* :func:`estimate_from_csv` — convenience: path in, power trace out.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.traces import PowerTrace
from repro.core.model import PowerModel
from repro.errors import ConfigurationError
from repro.perf.counting import PerfSession
from repro.perf.parsing import parse_counter_log
from repro.simcpu.machine import Machine


class CounterLogWriter:
    """Records machine-wide counter deltas per period into CSV.

    Attach to a machine, then call :meth:`sample` once per monitoring
    period (or use :meth:`observe_duration` to drive a kernel run); the
    resulting text is the counter-log interchange format.
    """

    def __init__(self, machine: Machine, events: Sequence[str],
                 frequency_hz: Optional[int] = None) -> None:
        if not events:
            raise ConfigurationError("at least one event required")
        self.machine = machine
        self.events = tuple(events)
        self.frequency_hz = frequency_hz
        self._perf = PerfSession(machine)
        self._counters = self._perf.open_group(self.events)
        self._previous = {counter.event: counter.read().scaled
                          for counter in self._counters}
        self._buffer = io.StringIO()
        self._buffer.write("time_s," + ",".join(self.events) + "\n")
        self.rows_written = 0

    def sample(self) -> Dict[str, float]:
        """Record the deltas since the previous sample; returns them."""
        current = {counter.event: counter.read().scaled
                   for counter in self._counters}
        deltas = {event: max(0.0, current[event] - self._previous[event])
                  for event in current}
        self._previous = current
        row = [f"{self.machine.time_s:.6f}"]
        row.extend(f"{deltas[event]:.6f}" for event in self.events)
        self._buffer.write(",".join(row) + "\n")
        self.rows_written += 1
        return deltas

    def text(self) -> str:
        """The CSV written so far."""
        return self._buffer.getvalue()

    def write_to(self, path: Union[str, Path]) -> None:
        """Persist the log."""
        Path(path).write_text(self.text())

    def close(self) -> None:
        """Release the perf counters."""
        self._perf.close()


def estimate_from_log(model: PowerModel,
                      rows: Sequence[Tuple[float, Dict[str, float]]],
                      frequency_hz: Optional[int] = None) -> PowerTrace:
    """Replay parsed counter-log rows through *model*.

    Periods are inferred from consecutive timestamps (the first row's
    period from the gap to the second; a single row is rejected).  The
    formula for *frequency_hz* is used — offline logs carry no frequency
    column, so the recording frequency must be supplied (defaults to the
    model's highest known frequency, matching a performance-governor
    recording).
    """
    if len(rows) < 2:
        raise ConfigurationError("need at least two log rows to infer "
                                 "the monitoring period")
    if frequency_hz is None:
        frequency_hz = model.frequencies_hz[-1]

    times: List[float] = []
    powers: List[float] = []
    previous_time: Optional[float] = None
    first_period = rows[1][0] - rows[0][0]
    if first_period <= 0:
        raise ConfigurationError("log timestamps must be increasing")
    for time_s, deltas in rows:
        period = (time_s - previous_time if previous_time is not None
                  else first_period)
        if period <= 0:
            raise ConfigurationError("log timestamps must be increasing")
        rates = {event: delta / period for event, delta in deltas.items()}
        times.append(time_s)
        powers.append(model.predict_total(frequency_hz, rates))
        previous_time = time_s
    return PowerTrace.from_series(model.name, times, powers)


def estimate_from_csv(model: PowerModel, path: Union[str, Path],
                      frequency_hz: Optional[int] = None) -> PowerTrace:
    """Parse a counter-log CSV file and replay it through *model*."""
    rows = parse_counter_log(Path(path).read_text())
    return estimate_from_log(model, rows, frequency_hz=frequency_hz)

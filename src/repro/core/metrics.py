"""Error metrics for comparing estimated against measured power.

The paper reports a *median* error of 15 % on SPECjbb2013 and cites mean
errors for the related work (4.63 % for Bertran et al., 7.5 % for HAPPY),
so both medians and means of the absolute percentage error are first-class
here, alongside the usual regression diagnostics.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def _validate(measured: Sequence[float], estimated: Sequence[float]
              ) -> Tuple[np.ndarray, np.ndarray]:
    y = np.asarray(measured, dtype=float)
    x = np.asarray(estimated, dtype=float)
    if y.shape != x.shape or y.ndim != 1:
        raise ConfigurationError("measured/estimated must be equal-length 1-D")
    if y.size == 0:
        raise ConfigurationError("at least one sample required")
    return y, x


def absolute_percentage_errors(measured: Sequence[float],
                               estimated: Sequence[float]) -> np.ndarray:
    """Per-sample |estimated - measured| / measured, as fractions.

    Samples with zero measured power are rejected (the error is undefined).
    """
    y, x = _validate(measured, estimated)
    if np.any(y == 0):
        raise ConfigurationError("measured power contains zeros")
    return np.abs(x - y) / np.abs(y)


def median_ape(measured: Sequence[float], estimated: Sequence[float]) -> float:
    """Median absolute percentage error (the paper's headline metric)."""
    return float(np.median(absolute_percentage_errors(measured, estimated)))


def mean_ape(measured: Sequence[float], estimated: Sequence[float]) -> float:
    """Mean absolute percentage error (used by the cited related work)."""
    return float(np.mean(absolute_percentage_errors(measured, estimated)))


def rmse(measured: Sequence[float], estimated: Sequence[float]) -> float:
    """Root-mean-square error in watts."""
    y, x = _validate(measured, estimated)
    return float(np.sqrt(np.mean((x - y) ** 2)))


def max_ape(measured: Sequence[float], estimated: Sequence[float]) -> float:
    """Worst-case absolute percentage error."""
    return float(np.max(absolute_percentage_errors(measured, estimated)))


def r_squared(measured: Sequence[float], estimated: Sequence[float]) -> float:
    """Coefficient of determination of the estimates against measurements."""
    y, x = _validate(measured, estimated)
    ss_res = float(np.sum((y - x) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def error_summary(measured: Sequence[float], estimated: Sequence[float]) -> dict:
    """All metrics in one dict (percentages as fractions)."""
    return {
        "median_ape": median_ape(measured, estimated),
        "mean_ape": mean_ape(measured, estimated),
        "max_ape": max_ape(measured, estimated),
        "rmse_w": rmse(measured, estimated),
        "r2": r_squared(measured, estimated),
        "samples": len(list(measured)),
    }

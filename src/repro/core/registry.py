"""Power-model registry: learn once per machine, reuse forever.

Profiling a machine takes minutes (Figure 1 runs the whole stress x
frequency grid), so a deployed tool keeps learned models on disk and
matches them to the hardware at startup.  The registry keys models by a
*machine signature* — vendor, model and the exact frequency ladder —
because a model learned for one DVFS ladder is meaningless on another.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import List, Optional, Union

from repro.core.model import PowerModel
from repro.errors import ConfigurationError, ModelError
from repro.simcpu.spec import CpuSpec


def machine_signature(spec: CpuSpec) -> str:
    """A stable identifier for 'the same machine, power-wise'."""
    payload = json.dumps({
        "vendor": spec.vendor,
        "model": spec.model,
        "frequencies_hz": list(spec.all_frequencies_hz),
        "threads": spec.num_threads,
    }, sort_keys=True)
    digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
    slug = f"{spec.vendor}-{spec.model}".lower().replace(" ", "-")
    return f"{slug}-{digest}"


class ModelRegistry:
    """A directory of model JSONs keyed by machine signature."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, signature: str) -> Path:
        # A signature is a single filename component: reject anything
        # that could traverse out of the registry root on any platform
        # (POSIX and Windows separators, parent references).
        separators = {"/", "\\", os.sep}
        if os.altsep:
            separators.add(os.altsep)
        if (not signature
                or any(sep in signature for sep in separators)
                or signature == "."
                or ".." in signature):
            raise ConfigurationError(f"invalid signature {signature!r}")
        return self.root / f"{signature}.json"

    # -- writes ------------------------------------------------------------

    def save(self, spec: CpuSpec, model: PowerModel) -> str:
        """Store *model* for machines matching *spec*; returns the key."""
        signature = machine_signature(spec)
        self._path(signature).write_text(model.to_json())
        return signature

    def delete(self, spec: CpuSpec) -> bool:
        """Drop the stored model for *spec*; True if one existed."""
        path = self._path(machine_signature(spec))
        if path.exists():
            path.unlink()
            return True
        return False

    # -- reads --------------------------------------------------------------

    def load(self, spec: CpuSpec) -> Optional[PowerModel]:
        """The stored model for *spec*, or None when never learned."""
        path = self._path(machine_signature(spec))
        if not path.exists():
            return None
        try:
            return PowerModel.from_json(path.read_text())
        except ModelError as error:
            raise ModelError(
                f"corrupt model for {machine_signature(spec)}: {error}"
            ) from error

    def entries(self) -> List[str]:
        """All stored signatures, sorted."""
        return sorted(path.stem for path in self.root.glob("*.json"))

    def load_or_learn(self, spec: CpuSpec, learner=None) -> PowerModel:
        """Return the stored model, learning and storing one if absent.

        *learner* is a callable ``spec -> PowerModel`` (defaults to the
        full Figure 1 pipeline).
        """
        model = self.load(spec)
        if model is not None:
            return model
        if learner is None:
            from repro.core.sampling import learn_power_model
            model = learn_power_model(spec).model
        else:
            model = learner(spec)
        self.save(spec, model)
        return model

"""The PowerAPI facade: assembling and driving a monitoring pipeline.

This is the toolkit's public entry point.  It wires the Figure 2
architecture — clock, Sensor(s), Formula, Aggregator(s), Reporter(s) — on
one actor system, and co-drives the simulated kernel and the actors:

    kernel = SimKernel(intel_i3_2120())
    pid = kernel.spawn(SpecJbbWorkload(), name="specjbb")
    api = PowerAPI(kernel, model)
    handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
    api.run(duration_s=120)
    print(handle.reporter.total_series())

The fluent builder mirrors PowerAPI's published DSL.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.actors.actor import Actor, ActorRef
from repro.actors.clock import VirtualClock
from repro.actors.system import ActorSystem
from repro.core.aggregators import (FlushAggregates, PidAggregator,
                                    TimestampAggregator)
from repro.core.formula import CpuLoadFormula, HpcFormula
from repro.core.messages import HealthEvent
from repro.core.model import PowerModel
from repro.core.reporters import InMemoryReporter
from repro.core.sensors import (DegradationPolicy, HpcSensor, PipelineMode,
                                PowerMeterSensor, ProcFsSensor)
from repro.errors import ConfigurationError
from repro.faults.health import HealthLog, HealthMonitor
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.os.kernel import SimKernel
from repro.perf.counting import PerfSession
from repro.powermeter.base import PowerMeter
from repro.simcpu.counters import GENERIC_TRIO


class MonitorHandle:
    """A running pipeline: its actors, reporter, health log and mode."""

    def __init__(self, pids: Sequence[int], reporter: Actor,
                 actor_refs: Sequence[ActorRef],
                 pid_aggregator: Optional[PidAggregator],
                 health: Optional[HealthLog] = None,
                 mode: Optional[PipelineMode] = None) -> None:
        self.pids = tuple(pids)
        self.reporter = reporter
        self._refs = list(actor_refs)
        self.pid_aggregator = pid_aggregator
        #: Record of degradations, recoveries and injected faults.
        self.health = health if health is not None else HealthLog()
        #: Current estimation mode ("hpc" or "cpu-load"), when the
        #: pipeline has a degradation ladder; None otherwise.
        self.mode = mode
        self._system: Optional[ActorSystem] = None

    def _attach(self, system: ActorSystem) -> None:
        self._system = system

    @property
    def degraded(self) -> bool:
        """Whether the pipeline currently runs on the fallback formula."""
        return self.mode is not None and self.mode.degraded

    def stop(self) -> None:
        """Tear the pipeline down (idempotent; queued messages dropped)."""
        if self._system is None:
            return
        for ref in self._refs:
            self._system.stop(ref)
        self._refs.clear()


class MonitorBuilder:
    """Fluent configuration of one monitoring pipeline."""

    def __init__(self, api: "PowerAPI", pids: Sequence[int]) -> None:
        if not pids:
            raise ConfigurationError("monitor() needs at least one pid")
        self._api = api
        self._pids = tuple(pids)
        self._period_s: Optional[float] = None
        self._formula = "hpc"
        self._events = GENERIC_TRIO
        self._policy: Optional[DegradationPolicy] = DegradationPolicy()

    def every(self, period_s: float) -> "MonitorBuilder":
        """Set the monitoring period (seconds)."""
        if period_s <= 0:
            raise ConfigurationError("period must be positive")
        self._period_s = period_s
        return self

    def with_formula(self, formula: str) -> "MonitorBuilder":
        """Choose the estimation formula: ``"hpc"`` or ``"cpu-load"``."""
        if formula not in ("hpc", "cpu-load"):
            raise ConfigurationError(
                f"unknown formula {formula!r}; use 'hpc' or 'cpu-load'")
        self._formula = formula
        return self

    def with_events(self, events: Sequence[str]) -> "MonitorBuilder":
        """Override the HPC events the sensor collects."""
        if not events:
            raise ConfigurationError("at least one event required")
        self._events = tuple(events)
        return self

    def with_degradation(self, degrade_after: int = 3,
                         recover_after: int = 2) -> "MonitorBuilder":
        """Tune the HPC → cpu-load fallback thresholds (hpc formula only)."""
        self._policy = DegradationPolicy(degrade_after, recover_after)
        return self

    def without_degradation(self) -> "MonitorBuilder":
        """Disable the cpu-load fallback: missing HPC periods stay gaps."""
        self._policy = None
        return self

    def to(self, reporter: Actor) -> MonitorHandle:
        """Attach *reporter* and start the pipeline."""
        return self._api._start_pipeline(
            pids=self._pids,
            period_s=self._period_s,
            formula=self._formula,
            events=self._events,
            reporter=reporter,
            policy=self._policy,
        )


class PowerAPI:
    """The middleware toolkit: owns the actor system and the clock."""

    def __init__(self, kernel: SimKernel, model: PowerModel,
                 period_s: float = 1.0) -> None:
        self.kernel = kernel
        self.model = model
        self.system = ActorSystem("powerapi")
        self.clock = VirtualClock(self.system.event_bus, period_s=period_s)
        self.perf = PerfSession(kernel.machine)
        self._meters: List[PowerMeter] = []
        self._handles: List[MonitorHandle] = []
        self._telemetry_servers: List = []
        self._injector: Optional[FaultInjector] = None
        self._pipeline_count = 0
        self._shut_down = False
        # Supervision outcomes (restarts, stops) land on the health log.
        self.system.on_lifecycle_event = self._on_actor_lifecycle

    def _on_actor_lifecycle(self, name: str, kind: str, detail: str) -> None:
        self.system.event_bus.publish(HealthEvent(
            time_s=self.system.clock_s, component=name, kind=kind,
            detail=detail))

    # -- pipeline assembly ---------------------------------------------

    def monitor(self, *pids: int) -> MonitorBuilder:
        """Begin configuring a pipeline for *pids*."""
        return MonitorBuilder(self, pids)

    def attach_meter(self, meter: PowerMeter,
                     name: Optional[str] = None) -> ActorRef:
        """Also publish a physical meter's samples on the bus."""
        meter.connect()
        self._meters.append(meter)
        component = name or f"meter-{len(self._meters) - 1}"
        return self.system.spawn(PowerMeterSensor(meter, component=component),
                                 name=name)

    @property
    def meters(self) -> Tuple[PowerMeter, ...]:
        """Meters attached via :meth:`attach_meter`."""
        return tuple(self._meters)

    def monitored_pids(self) -> Tuple[int, ...]:
        """Every pid under monitoring across running pipelines, ascending."""
        pids = set()
        for handle in self._handles:
            if handle._refs:
                pids.update(handle.pids)
        return tuple(sorted(pids))

    def _start_pipeline(self, pids: Sequence[int], period_s: Optional[float],
                        formula: str, events: Sequence[str],
                        reporter: Actor,
                        policy: Optional[DegradationPolicy] = None
                        ) -> MonitorHandle:
        if (period_s is not None
                and abs(period_s - self.clock.period_s) > 1e-12):
            # One clock per API instance: every pipeline shares its
            # period.  Retuning is only legal before the first pipeline
            # starts; afterwards it would silently change the sampling
            # rate of every already-running pipeline.
            running = [h for h in self._handles if h._refs]
            if running:
                raise ConfigurationError(
                    f"cannot set period {period_s}s: this PowerAPI's "
                    f"clock already drives {len(running)} pipeline(s) "
                    f"at {self.clock.period_s}s (one clock per API "
                    "instance; use a separate PowerAPI for a "
                    "different period)")
            self.clock.period_s = period_s

        n = self._pipeline_count
        self._pipeline_count += 1
        num_cpus = len(self.kernel.machine.topology)
        active_range = max(0.0,
                           self._full_load_estimate() - self.model.idle_w)

        refs: List[ActorRef] = []
        mode: Optional[PipelineMode] = None
        if formula == "hpc":
            mode = PipelineMode() if policy is not None else None
            sensor: Actor = HpcSensor(self.kernel.machine, self.perf,
                                      pids, events=events, mode=mode,
                                      policy=policy,
                                      component=f"hpc-sensor-{n}")
            formula_actor: Actor = HpcFormula(self.model)
        else:
            sensor = ProcFsSensor(self.kernel.procfs, pids,
                                  num_cpus=num_cpus)
            formula_actor = CpuLoadFormula(
                active_range_w=active_range, num_cpus=num_cpus)

        pid_aggregator = PidAggregator()
        health = HealthLog()
        refs.append(self.system.spawn(sensor, name=f"sensor-{n}"))
        if formula == "hpc" and mode is not None:
            # The degradation ladder's standby rung: a cpu-load path
            # that publishes only while the pipeline is degraded.
            refs.append(self.system.spawn(
                ProcFsSensor(self.kernel.procfs, pids, num_cpus=num_cpus,
                             mode=mode),
                name=f"standby-sensor-{n}"))
            refs.append(self.system.spawn(
                CpuLoadFormula(active_range_w=active_range,
                               num_cpus=num_cpus,
                               name="cpu-load-fallback"),
                name=f"standby-formula-{n}"))
        refs.append(self.system.spawn(formula_actor, name=f"formula-{n}"))
        refs.append(self.system.spawn(
            TimestampAggregator(idle_w=self.model.idle_w),
            name=f"ts-aggregator-{n}"))
        refs.append(self.system.spawn(pid_aggregator,
                                      name=f"pid-aggregator-{n}"))
        refs.append(self.system.spawn(HealthMonitor(health),
                                      name=f"health-{n}"))
        reporter_ref = self.system.spawn(reporter, name=f"reporter-{n}")
        refs.append(reporter_ref)

        handle = MonitorHandle(pids, reporter, refs, pid_aggregator,
                               health=health, mode=mode)
        handle._attach(self.system)
        self._handles.append(handle)
        return handle

    def _full_load_estimate(self) -> float:
        """Rough all-cores-busy power for the CPU-load formula's slope.

        Estimated from the model itself: idle plus the TDP envelope is the
        best architecture-independent guess a load-based model has.
        """
        return self.model.idle_w + self.kernel.machine.spec.power.tdp_w * 0.5

    # -- telemetry service ------------------------------------------------

    def serve_telemetry(self, host: str = "127.0.0.1", port: int = 0,
                        pids: Optional[Sequence[int]] = None,
                        name: Optional[str] = None, **server_kwargs):
        """Stream this API's live reports to TCP subscribers.

        Starts a :class:`~repro.telemetry.server.TelemetryServer` and
        spawns the bridge actor forwarding every
        :class:`~repro.core.messages.AggregatedPowerReport`,
        :class:`~repro.core.messages.HealthEvent` and
        :class:`~repro.core.messages.GapMarker` on the bus to it.  Pass
        ``pids=handle.pids`` to scope the stream to one pipeline.
        Extra keyword arguments (``overflow``, ``queue_capacity``,
        ``host_label``, ``heartbeat_every``) configure the server;
        :meth:`shutdown` stops it.
        """
        # Imported here so the socket layer stays an optional part of
        # the core monitoring path.
        from repro.telemetry.server import TelemetryBridge, TelemetryServer
        server = TelemetryServer(host=host, port=port, **server_kwargs)
        server.start()
        self._telemetry_servers.append(server)
        n = len(self._telemetry_servers) - 1
        self.system.spawn(TelemetryBridge(server, pids=pids),
                          name=name or f"telemetry-bridge-{n}")
        return server

    @property
    def telemetry_servers(self) -> Tuple:
        """Servers started via :meth:`serve_telemetry`."""
        return tuple(self._telemetry_servers)

    # -- fault injection --------------------------------------------------

    def install_faults(self, plan: FaultPlan) -> FaultInjector:
        """Arm a fault plan; it fires as :meth:`run` advances virtual time."""
        self._injector = FaultInjector(plan, self)
        return self._injector

    # -- driving ----------------------------------------------------------

    def _step(self) -> None:
        self.kernel.tick()
        # Faults and restart backoffs are resolved against the fresh
        # kernel time *before* the clock tick reaches the sensors, so a
        # fault at t is visible to the samples taken at t.
        self.system.advance_time(self.kernel.time_s)
        if self._injector is not None:
            self._injector.advance(self.kernel.time_s)
        self.clock.advance(self.kernel.quantum_s)
        self.system.dispatch()

    def run(self, duration_s: float) -> None:
        """Advance kernel, clock and actors together for *duration_s*."""
        if duration_s < 0:
            raise ConfigurationError("duration must be >= 0")
        steps = int(round(duration_s / self.kernel.quantum_s))
        for _step in range(steps):
            self._step()

    def run_until_idle(self, max_duration_s: float = 3600.0) -> None:
        """Run until every monitored process exits."""
        while self.kernel.live_pids and self.kernel.time_s < max_duration_s:
            self._step()

    def flush(self) -> None:
        """Force aggregators to emit partial/summary reports."""
        self.system.event_bus.publish(FlushAggregates())
        self.system.dispatch()

    def shutdown(self) -> None:
        """Stop all actors, close perf, disconnect meters (idempotent)."""
        if self._shut_down:
            return
        self._shut_down = True
        self.flush()
        self.system.shutdown()
        self.perf.close()
        for meter in self._meters:
            meter.disconnect()
        for server in self._telemetry_servers:
            server.stop()

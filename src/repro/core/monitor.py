"""The PowerAPI facade: assembling and driving a monitoring pipeline.

This is the toolkit's public entry point.  It wires the Figure 2
architecture — clock, Sensor(s), Formula, Aggregator(s), Reporter(s) — on
one actor system, and co-drives the simulated kernel and the actors:

    kernel = SimKernel(intel_i3_2120())
    pid = kernel.spawn(SpecJbbWorkload(), name="specjbb")
    api = PowerAPI(kernel, model)
    handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
    api.run(duration_s=120)
    print(handle.reporter.total_series())

The fluent builder mirrors PowerAPI's published DSL.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.actors.actor import Actor, ActorRef
from repro.actors.clock import VirtualClock
from repro.actors.system import ActorSystem
from repro.core.aggregators import (FlushAggregates, PidAggregator,
                                    TimestampAggregator)
from repro.core.formula import CpuLoadFormula, HpcFormula
from repro.core.model import PowerModel
from repro.core.reporters import InMemoryReporter
from repro.core.sensors import HpcSensor, PowerMeterSensor, ProcFsSensor
from repro.errors import ConfigurationError
from repro.os.kernel import SimKernel
from repro.perf.counting import PerfSession
from repro.powermeter.base import PowerMeter
from repro.simcpu.counters import GENERIC_TRIO


class MonitorHandle:
    """A running pipeline: its actors and its primary reporter."""

    def __init__(self, pids: Sequence[int], reporter: Actor,
                 actor_refs: Sequence[ActorRef],
                 pid_aggregator: Optional[PidAggregator]) -> None:
        self.pids = tuple(pids)
        self.reporter = reporter
        self._refs = list(actor_refs)
        self.pid_aggregator = pid_aggregator
        self._system: Optional[ActorSystem] = None

    def _attach(self, system: ActorSystem) -> None:
        self._system = system

    def stop(self) -> None:
        """Tear the pipeline down (remaining mailbox messages are dropped)."""
        if self._system is None:
            return
        for ref in self._refs:
            self._system.stop(ref)
        self._refs.clear()


class MonitorBuilder:
    """Fluent configuration of one monitoring pipeline."""

    def __init__(self, api: "PowerAPI", pids: Sequence[int]) -> None:
        if not pids:
            raise ConfigurationError("monitor() needs at least one pid")
        self._api = api
        self._pids = tuple(pids)
        self._period_s: Optional[float] = None
        self._formula = "hpc"
        self._events = GENERIC_TRIO

    def every(self, period_s: float) -> "MonitorBuilder":
        """Set the monitoring period (seconds)."""
        if period_s <= 0:
            raise ConfigurationError("period must be positive")
        self._period_s = period_s
        return self

    def with_formula(self, formula: str) -> "MonitorBuilder":
        """Choose the estimation formula: ``"hpc"`` or ``"cpu-load"``."""
        if formula not in ("hpc", "cpu-load"):
            raise ConfigurationError(
                f"unknown formula {formula!r}; use 'hpc' or 'cpu-load'")
        self._formula = formula
        return self

    def with_events(self, events: Sequence[str]) -> "MonitorBuilder":
        """Override the HPC events the sensor collects."""
        if not events:
            raise ConfigurationError("at least one event required")
        self._events = tuple(events)
        return self

    def to(self, reporter: Actor) -> MonitorHandle:
        """Attach *reporter* and start the pipeline."""
        return self._api._start_pipeline(
            pids=self._pids,
            period_s=self._period_s,
            formula=self._formula,
            events=self._events,
            reporter=reporter,
        )


class PowerAPI:
    """The middleware toolkit: owns the actor system and the clock."""

    def __init__(self, kernel: SimKernel, model: PowerModel,
                 period_s: float = 1.0) -> None:
        self.kernel = kernel
        self.model = model
        self.system = ActorSystem("powerapi")
        self.clock = VirtualClock(self.system.event_bus, period_s=period_s)
        self.perf = PerfSession(kernel.machine)
        self._meters: List[PowerMeter] = []

    # -- pipeline assembly ---------------------------------------------

    def monitor(self, *pids: int) -> MonitorBuilder:
        """Begin configuring a pipeline for *pids*."""
        return MonitorBuilder(self, pids)

    def attach_meter(self, meter: PowerMeter,
                     name: Optional[str] = None) -> ActorRef:
        """Also publish a physical meter's samples on the bus."""
        meter.connect()
        self._meters.append(meter)
        return self.system.spawn(PowerMeterSensor(meter), name=name)

    def _start_pipeline(self, pids: Sequence[int], period_s: Optional[float],
                        formula: str, events: Sequence[str],
                        reporter: Actor) -> MonitorHandle:
        if period_s is not None and abs(period_s - self.clock.period_s) > 1e-12:
            # One clock per API instance: pipelines share its period.
            self.clock.period_s = period_s

        refs: List[ActorRef] = []
        if formula == "hpc":
            sensor: Actor = HpcSensor(self.kernel.machine, self.perf,
                                      pids, events=events)
            formula_actor: Actor = HpcFormula(self.model)
        else:
            active_range = max(0.0, self._full_load_estimate() - self.model.idle_w)
            sensor = ProcFsSensor(self.kernel.procfs, pids,
                                  num_cpus=len(self.kernel.machine.topology))
            formula_actor = CpuLoadFormula(
                active_range_w=active_range,
                num_cpus=len(self.kernel.machine.topology))

        pid_aggregator = PidAggregator()
        refs.append(self.system.spawn(sensor))
        refs.append(self.system.spawn(formula_actor))
        refs.append(self.system.spawn(
            TimestampAggregator(idle_w=self.model.idle_w)))
        refs.append(self.system.spawn(pid_aggregator))
        reporter_ref = self.system.spawn(reporter)
        refs.append(reporter_ref)

        handle = MonitorHandle(pids, reporter, refs, pid_aggregator)
        handle._attach(self.system)
        return handle

    def _full_load_estimate(self) -> float:
        """Rough all-cores-busy power for the CPU-load formula's slope.

        Estimated from the model itself: idle plus the TDP envelope is the
        best architecture-independent guess a load-based model has.
        """
        return self.model.idle_w + self.kernel.machine.spec.power.tdp_w * 0.5

    # -- driving ----------------------------------------------------------

    def run(self, duration_s: float) -> None:
        """Advance kernel, clock and actors together for *duration_s*."""
        if duration_s < 0:
            raise ConfigurationError("duration must be >= 0")
        steps = int(round(duration_s / self.kernel.quantum_s))
        for _step in range(steps):
            self.kernel.tick()
            self.clock.advance(self.kernel.quantum_s)
            self.system.dispatch()

    def run_until_idle(self, max_duration_s: float = 3600.0) -> None:
        """Run until every monitored process exits."""
        while self.kernel.live_pids and self.kernel.time_s < max_duration_s:
            self.kernel.tick()
            self.clock.advance(self.kernel.quantum_s)
            self.system.dispatch()

    def flush(self) -> None:
        """Force aggregators to emit partial/summary reports."""
        self.system.event_bus.publish(FlushAggregates())
        self.system.dispatch()

    def shutdown(self) -> None:
        """Stop all actors and disconnect meters."""
        self.flush()
        self.system.shutdown()
        self.perf.close()
        for meter in self._meters:
            meter.disconnect()

"""The PowerAPI facade: assembling and driving a monitoring pipeline.

This is the toolkit's public entry point.  It wires the Figure 2
architecture — clock, Sensor(s), Formula, Aggregator(s), Reporter(s) — on
one actor system, and co-drives the simulated kernel and the actors:

    kernel = SimKernel(intel_i3_2120())
    pid = kernel.spawn(SpecJbbWorkload(), name="specjbb")
    api = PowerAPI(kernel, model)
    handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
    api.run(duration_s=120)
    print(handle.reporter.total_series())

The fluent builder mirrors PowerAPI's published DSL; under the hood it
assembles a declarative :class:`~repro.core.pipeline.PipelineSpec` and
hands it to :meth:`PowerAPI.start_pipeline` — the exact same road a
spec loaded from a JSON/TOML config file travels:

    spec = PipelineSpec.from_file("pipeline.toml")
    handle = api.start_pipeline(spec)
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.actors.actor import Actor, ActorRef
from repro.actors.clock import VirtualClock
from repro.actors.system import ActorSystem
from repro.core.aggregators import PidAggregator
from repro.core.messages import FlushAggregates, HealthEvent, SetCap
from repro.core.model import PowerModel
from repro.core.pipeline import (ControlSpec, DegradationSpec,
                                 PipelineBuilder, PipelineSpec, StageSpec,
                                 TelemetrySpec)
from repro.core.sensors import PipelineMode, PowerMeterSensor
from repro.errors import ConfigurationError
from repro.faults.health import HealthLog
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.os.kernel import SimKernel
from repro.perf.counting import PerfSession
from repro.powermeter.base import PowerMeter


class MonitorHandle:
    """A running pipeline: its actors, reporters, health log and mode."""

    def __init__(self, pids: Sequence[int], reporter: Actor,
                 actor_refs: Sequence[ActorRef],
                 pid_aggregator: Optional[PidAggregator],
                 health: Optional[HealthLog] = None,
                 mode: Optional[PipelineMode] = None,
                 reporters: Optional[Sequence[Actor]] = None,
                 spec: Optional[PipelineSpec] = None,
                 control: Optional[Actor] = None) -> None:
        self.pids = tuple(pids)
        self.reporter = reporter
        #: Every reporter attached to the pipeline, spawn order.
        self.reporters = (tuple(reporters) if reporters is not None
                          else (reporter,))
        self._refs = list(actor_refs)
        self.pid_aggregator = pid_aggregator
        #: Record of degradations, recoveries and injected faults.
        self.health = health if health is not None else HealthLog()
        #: Current estimation mode ("hpc" or "cpu-load"), when the
        #: pipeline has a degradation ladder; None otherwise.
        self.mode = mode
        #: The declarative description this pipeline was built from.
        self.spec = spec
        #: The pipeline's :class:`~repro.control.actor.PowerCapActor`
        #: when a ``[control]`` section / ``.cap(...)`` armed one.
        self.control = control
        self._system: Optional[ActorSystem] = None

    def _attach(self, system: ActorSystem) -> None:
        self._system = system

    @property
    def degraded(self) -> bool:
        """Whether the pipeline currently runs on the fallback formula."""
        return self.mode is not None and self.mode.degraded

    def set_cap(self, cap_w: Optional[float]) -> None:
        """Change (or with None remove) the power cap mid-run.

        Publishes a :class:`~repro.core.messages.SetCap` on the bus;
        the cap actor picks it up on the next dispatch.  Requires the
        pipeline to have been started with a control section.
        """
        if self.control is None:
            raise ConfigurationError(
                "this pipeline has no control loop; start it with "
                ".cap(...) or a [control] spec section")
        if self._system is None:
            raise ConfigurationError("pipeline is not attached to a system")
        self._system.event_bus.publish(SetCap(cap_w=cap_w))

    def stop(self) -> None:
        """Tear the pipeline down (idempotent; queued messages dropped)."""
        if self._system is None:
            return
        for ref in self._refs:
            self._system.stop(ref)
        self._refs.clear()


class MonitorBuilder:
    """Fluent configuration of one monitoring pipeline.

    A thin front-end over :class:`~repro.core.pipeline.PipelineSpec`:
    each call records one aspect of the description, :meth:`to` builds
    the spec and starts it.  :meth:`spec` exposes the description
    without starting anything (e.g. to save it as a config file).
    """

    def __init__(self, api: "PowerAPI", pids: Sequence[int]) -> None:
        if not pids:
            raise ConfigurationError("monitor() needs at least one pid")
        self._api = api
        self._pids = tuple(pids)
        self._period_s: Optional[float] = None
        self._formula = "hpc"
        self._events: Optional[Tuple[str, ...]] = None
        self._degradation: Optional[DegradationSpec] = DegradationSpec()
        self._reporter_specs: List[StageSpec] = []
        self._faults: Optional[str] = None
        self._telemetry = None
        self._control: Optional[ControlSpec] = None

    def every(self, period_s: float) -> "MonitorBuilder":
        """Set the monitoring period (seconds)."""
        if period_s <= 0:
            raise ConfigurationError("period must be positive")
        self._period_s = period_s
        return self

    def with_formula(self, formula: str) -> "MonitorBuilder":
        """Choose the estimation formula: ``"hpc"`` or ``"cpu-load"``."""
        if formula not in ("hpc", "cpu-load"):
            raise ConfigurationError(
                f"unknown formula {formula!r}; use 'hpc' or 'cpu-load'")
        self._formula = formula
        return self

    def with_events(self, events: Sequence[str]) -> "MonitorBuilder":
        """Override the HPC events the sensor collects."""
        if not events:
            raise ConfigurationError("at least one event required")
        self._events = tuple(events)
        return self

    def with_degradation(self, degrade_after: int = 3,
                         recover_after: int = 2) -> "MonitorBuilder":
        """Tune the HPC → cpu-load fallback thresholds (hpc formula only)."""
        self._degradation = DegradationSpec(degrade_after, recover_after)
        return self

    def without_degradation(self) -> "MonitorBuilder":
        """Disable the cpu-load fallback: missing HPC periods stay gaps."""
        self._degradation = None
        return self

    def with_faults(self, plan: str) -> "MonitorBuilder":
        """Arm a :meth:`FaultPlan.parse` spec string with the pipeline."""
        FaultPlan.parse(plan)  # fail at description time, not start time
        self._faults = plan
        return self

    def with_telemetry(self, host: str = "127.0.0.1", port: int = 0,
                       **fields: Any) -> "MonitorBuilder":
        """Publish this pipeline's stream over TCP when it starts.

        Extra keyword arguments are :class:`TelemetrySpec` fields —
        ``batch_max_frames``/``batch_max_bytes``/``batch_max_latency_s``
        for wire batching, ``max_subscribers`` for the connection cap,
        and ``uplinks=("host:port", ...)`` to also relay an upstream
        tree into the same stream.
        """
        self._telemetry = TelemetrySpec(host=host, port=port, **fields)
        return self

    def cap(self, watts: float, policy: str = "deadband",
            grace_periods: int = 1, throttle: bool = True,
            **params: Any) -> "MonitorBuilder":
        """Hold estimated package power at or below *watts*.

        *policy* names a registered control policy (``"deadband"`` or
        ``"pi"``); extra keyword arguments configure it (e.g.
        ``.cap(50.0, policy="pi", kp=0.5)``).
        """
        self._control = ControlSpec(
            cap_w=watts, policy=StageSpec(policy, params),
            grace_periods=grace_periods, throttle=throttle)
        return self

    def spec(self) -> PipelineSpec:
        """The declarative description accumulated so far."""
        if self._formula == "hpc":
            params = {} if self._events is None else {"events": self._events}
            sensor = StageSpec("hpc", params)
            formula = StageSpec("hpc")
            degradation = self._degradation
        else:
            sensor = StageSpec("procfs")
            formula = StageSpec("cpu-load")
            degradation = None
        return PipelineSpec(
            pids=self._pids,
            period_s=self._period_s,
            sensor=sensor,
            formula=formula,
            reporters=tuple(self._reporter_specs),
            degradation=degradation,
            faults=self._faults,
            telemetry=self._telemetry,
            control=self._control,
        )

    def to(self, reporter: Union[Actor, str],
           **params: Any) -> MonitorHandle:
        """Attach a reporter and start the pipeline.

        Accepts either a pre-built reporter actor, or a registered
        reporter name with its config (``.to("csv", path="out.csv")``).
        """
        extra: Tuple[Actor, ...] = ()
        if isinstance(reporter, str):
            self._reporter_specs.append(StageSpec(reporter, params))
        else:
            if params:
                raise ConfigurationError(
                    "reporter params only apply to by-name reporters")
            extra = (reporter,)
        return self._api.start_pipeline(self.spec(), reporters=extra)


class PowerAPI:
    """The middleware toolkit: owns the actor system and the clock."""

    def __init__(self, kernel: SimKernel, model: PowerModel,
                 period_s: float = 1.0) -> None:
        self.kernel = kernel
        self.model = model
        self.system = ActorSystem("powerapi")
        self.clock = VirtualClock(self.system.event_bus, period_s=period_s)
        self.perf = PerfSession(kernel.machine)
        self._meters: List[PowerMeter] = []
        self._handles: List[MonitorHandle] = []
        self._telemetry_servers: List = []
        self._telemetry_relays: List = []
        self._injector: Optional[FaultInjector] = None
        self._pipeline_count = 0
        self._shut_down = False
        # Supervision outcomes (restarts, stops) land on the health log.
        self.system.on_lifecycle_event = self._on_actor_lifecycle

    def _on_actor_lifecycle(self, name: str, kind: str, detail: str) -> None:
        self.system.event_bus.publish(HealthEvent(
            time_s=self.system.clock_s, component=name, kind=kind,
            detail=detail))

    # -- pipeline assembly ---------------------------------------------

    def monitor(self, *pids: int) -> MonitorBuilder:
        """Begin configuring a pipeline for *pids*."""
        return MonitorBuilder(self, pids)

    def attach_meter(self, meter: PowerMeter,
                     name: Optional[str] = None) -> ActorRef:
        """Also publish a physical meter's samples on the bus."""
        meter.connect()
        self._meters.append(meter)
        component = name or f"meter-{len(self._meters) - 1}"
        return self.system.spawn(PowerMeterSensor(meter, component=component),
                                 name=name)

    @property
    def meters(self) -> Tuple[PowerMeter, ...]:
        """Meters attached via :meth:`attach_meter`."""
        return tuple(self._meters)

    def monitored_pids(self) -> Tuple[int, ...]:
        """Every pid under monitoring across running pipelines, ascending."""
        pids = set()
        for handle in self._handles:
            if handle._refs:
                pids.update(handle.pids)
        return tuple(sorted(pids))

    def _check_period(self, period_s: Optional[float]) -> None:
        if (period_s is not None
                and abs(period_s - self.clock.period_s) > 1e-12):
            # One clock per API instance: every pipeline shares its
            # period.  Retuning is only legal before the first pipeline
            # starts; afterwards it would silently change the sampling
            # rate of every already-running pipeline.
            running = [h for h in self._handles if h._refs]
            if running:
                raise ConfigurationError(
                    f"cannot set period {period_s}s: this PowerAPI's "
                    f"clock already drives {len(running)} pipeline(s) "
                    f"at {self.clock.period_s}s (one clock per API "
                    "instance; use a separate PowerAPI for a "
                    "different period)")
            self.clock.period_s = period_s

    def start_pipeline(self, spec: PipelineSpec,
                       reporters: Sequence[Actor] = (),
                       registry=None) -> MonitorHandle:
        """Assemble and start the pipeline a :class:`PipelineSpec`
        describes.

        The single assembly road: the fluent DSL, ``--pipeline`` config
        files and programmatic callers all end up here.  *reporters*
        are pre-built reporter actors appended after the spec's
        declarative ones (at least one of the two must be present).
        The spec's fault plan is armed and its telemetry export
        started as part of pipeline start-up.
        """
        self._check_period(spec.period_s)
        built = PipelineBuilder(registry).build(
            self, spec, extra_reporters=reporters)
        handle = MonitorHandle(
            spec.pids, built.reporters[0], built.refs,
            built.pid_aggregator, health=built.health, mode=built.mode,
            reporters=built.reporters, spec=spec, control=built.control)
        handle._attach(self.system)
        self._handles.append(handle)
        if spec.faults is not None:
            self.install_faults(FaultPlan.parse(spec.faults))
        if spec.telemetry is not None:
            self.serve_telemetry(
                host=spec.telemetry.host, port=spec.telemetry.port,
                pids=spec.pids, spec=spec,
                **spec.telemetry.server_kwargs())
        return handle

    def _full_load_estimate(self) -> float:
        """Rough all-cores-busy power for the CPU-load formula's slope.

        Estimated from the model itself: idle plus the TDP envelope is the
        best architecture-independent guess a load-based model has.
        """
        return self.model.idle_w + self.kernel.machine.spec.power.tdp_w * 0.5

    # -- telemetry service ------------------------------------------------

    def serve_telemetry(self, host: str = "127.0.0.1", port: int = 0,
                        pids: Optional[Sequence[int]] = None,
                        name: Optional[str] = None,
                        spec: Optional[PipelineSpec] = None,
                        uplinks: Optional[Sequence[Tuple[str, int]]] = None,
                        **server_kwargs):
        """Stream this API's live reports to TCP subscribers.

        Starts a :class:`~repro.telemetry.server.TelemetryServer` and
        spawns the bridge actor forwarding every
        :class:`~repro.core.messages.AggregatedPowerReport`,
        :class:`~repro.core.messages.HealthEvent` and
        :class:`~repro.core.messages.GapMarker` on the bus to it.  Pass
        ``pids=handle.pids`` to scope the stream to one pipeline, and
        ``spec=`` to advertise the running pipeline's description to
        subscribers in the handshake.  ``uplinks`` is a sequence of
        upstream ``(host, port)`` pairs to relay into the same stream
        (a tree junction: local pipeline frames and upstream frames
        merge into one fan-out).  Extra keyword arguments
        (``overflow``, ``queue_capacity``, ``host_label``, ``batch``,
        ``max_subscribers``, ``heartbeat_every``) configure the
        server; :meth:`shutdown` stops it.
        """
        # Imported here so the socket layer stays an optional part of
        # the core monitoring path.
        from repro.telemetry.server import TelemetryBridge, TelemetryServer
        server = TelemetryServer(host=host, port=port, **server_kwargs)
        if spec is not None:
            server.advertise_spec(spec.to_dict())
        server.start()
        self._telemetry_servers.append(server)
        n = len(self._telemetry_servers) - 1
        self.system.spawn(TelemetryBridge(server, pids=pids),
                          name=name or f"telemetry-bridge-{n}")
        if uplinks:
            from repro.telemetry.relay import TelemetryRelay
            relay = TelemetryRelay(tuple(uplinks), server=server)
            relay.start()
            self._telemetry_relays.append(relay)
        return server

    @property
    def telemetry_servers(self) -> Tuple:
        """Servers started via :meth:`serve_telemetry`."""
        return tuple(self._telemetry_servers)

    @property
    def telemetry_relays(self) -> Tuple:
        """Relays grafted onto servers via ``uplinks=``."""
        return tuple(self._telemetry_relays)

    # -- fault injection --------------------------------------------------

    def install_faults(self, plan: FaultPlan) -> FaultInjector:
        """Arm a fault plan; it fires as :meth:`run` advances virtual time."""
        self._injector = FaultInjector(plan, self)
        return self._injector

    @property
    def injector(self) -> Optional[FaultInjector]:
        """The armed fault injector (``install_faults`` or a spec's
        ``faults`` key), or None; ``injector.applied`` is the ground
        truth of what actually fired."""
        return self._injector

    # -- driving ----------------------------------------------------------

    def _step(self) -> None:
        self.kernel.tick()
        # Faults and restart backoffs are resolved against the fresh
        # kernel time *before* the clock tick reaches the sensors, so a
        # fault at t is visible to the samples taken at t.
        self.system.advance_time(self.kernel.time_s)
        if self._injector is not None:
            self._injector.advance(self.kernel.time_s)
        self.clock.advance(self.kernel.quantum_s)
        self.system.dispatch()

    def run(self, duration_s: float) -> None:
        """Advance kernel, clock and actors together for *duration_s*."""
        if duration_s < 0:
            raise ConfigurationError("duration must be >= 0")
        steps = int(round(duration_s / self.kernel.quantum_s))
        for _step in range(steps):
            self._step()

    def run_until_idle(self, max_duration_s: float = 3600.0) -> None:
        """Run until every monitored process exits."""
        while self.kernel.live_pids and self.kernel.time_s < max_duration_s:
            self._step()

    def flush(self) -> None:
        """Force aggregators to emit partial/summary reports."""
        self.system.event_bus.publish(FlushAggregates())
        self.system.dispatch()

    def shutdown(self) -> None:
        """Stop all actors, close perf, disconnect meters (idempotent)."""
        if self._shut_down:
            return
        self._shut_down = True
        self.flush()
        self.system.shutdown()
        self.perf.close()
        for meter in self._meters:
            meter.disconnect()
        # Relays first: their uplink threads publish into the servers.
        for relay in self._telemetry_relays:
            relay.stop()
        for server in self._telemetry_servers:
            server.stop()

"""Sensor actors: the data-acquisition stage of the PowerAPI pipeline.

A Sensor "monitors the metrics of a given process and then publishes a
sensor message to the event bus" (paper, Section 3).  Sensors subscribe to
the monitoring clock (:class:`~repro.actors.clock.ClockTick`) and publish
one report per monitored process per period:

* :class:`HpcSensor` — hardware performance counters through the perf
  layer (the paper's primary metric source),
* :class:`ProcFsSensor` — CPU-time accounting from procfs (feeds the
  CPU-load baseline),
* :class:`PowerMeterSensor` — readings of a physical power meter (used
  during evaluation to compare estimates against ground truth).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.actors.actor import Actor
from repro.actors.clock import ClockTick
from repro.core.messages import HpcReport, PowerMeterReport, ProcFsReport
from repro.errors import ConfigurationError
from repro.os.procfs import ProcFs
from repro.perf.counting import PerfCounter, PerfSession
from repro.powermeter.base import PowerMeter
from repro.simcpu.counters import GENERIC_TRIO
from repro.simcpu.machine import Machine


class HpcSensor(Actor):
    """Publishes per-process HPC deltas on every clock tick."""

    def __init__(self, machine: Machine, perf: PerfSession,
                 pids: Sequence[int],
                 events: Sequence[str] = GENERIC_TRIO) -> None:
        super().__init__()
        if not pids:
            raise ConfigurationError("HpcSensor needs at least one pid")
        self.machine = machine
        self.perf = perf
        self.pids = tuple(pids)
        self.events = tuple(events)
        self._counters: Dict[int, Tuple[PerfCounter, ...]] = {}
        self._previous: Dict[int, Dict[str, float]] = {}

    def pre_start(self) -> None:
        self.context.system.event_bus.subscribe(ClockTick, self.self_ref)
        for pid in self.pids:
            counters = tuple(self.perf.open(event, pid=pid)
                             for event in self.events)
            self._counters[pid] = counters
            self._previous[pid] = {counter.event: counter.read().scaled
                                   for counter in counters}

    def post_stop(self) -> None:
        for counters in self._counters.values():
            for counter in counters:
                counter.close()
        self._counters.clear()

    def receive(self, message) -> None:
        if not isinstance(message, ClockTick):
            return
        frequency_hz = self.machine.dominant_frequency_hz()
        for pid in self.pids:
            current = {counter.event: counter.read().scaled
                       for counter in self._counters[pid]}
            deltas = {event: max(0.0, current[event] - self._previous[pid][event])
                      for event in current}
            self._previous[pid] = current
            self.publish(HpcReport(
                time_s=message.time_s,
                period_s=message.period_s,
                pid=pid,
                counters=deltas,
                frequency_hz=frequency_hz,
            ))


class MachineHpcSensor(Actor):
    """Publishes machine-wide HPC deltas (pid -1) on every clock tick.

    Supports the hyperthread-aware models: with *with_smt_overlap* the
    report's counters include the :data:`SMT_OVERLAP_EVENT` pseudo-event
    (cycles during which both hyperthreads of a core were busy), computed
    from per-logical-CPU cycle counters exactly like the learning
    harness does.
    """

    #: Pseudo-event name carrying the SMT-overlap cycle count.
    SMT_OVERLAP_EVENT = "smt-overlap-cycles"

    def __init__(self, machine: Machine, perf: PerfSession,
                 events: Sequence[str] = GENERIC_TRIO,
                 with_smt_overlap: bool = False) -> None:
        super().__init__()
        self.machine = machine
        self.perf = perf
        self.events = tuple(events)
        self.with_smt_overlap = with_smt_overlap
        self._counters: Tuple[PerfCounter, ...] = ()
        self._previous: Dict[str, float] = {}
        self._cycle_counters: Dict[int, PerfCounter] = {}
        self._previous_cycles: Dict[int, float] = {}
        self._sibling_groups = [
            machine.topology.core_cpus(package_id, core_id)
            for package_id, core_id in machine.topology.cores()]

    def pre_start(self) -> None:
        self.context.system.event_bus.subscribe(ClockTick, self.self_ref)
        self._counters = tuple(self.perf.open(event)
                               for event in self.events)
        self._previous = {counter.event: counter.read().scaled
                          for counter in self._counters}
        if self.with_smt_overlap:
            self._cycle_counters = {
                cpu_id: self.perf.open("cycles", cpu=cpu_id)
                for cpu_id in self.machine.topology.cpu_ids}
            self._previous_cycles = {
                cpu_id: counter.read().scaled
                for cpu_id, counter in self._cycle_counters.items()}

    def post_stop(self) -> None:
        for counter in self._counters:
            counter.close()
        for counter in self._cycle_counters.values():
            counter.close()
        self._counters = ()
        self._cycle_counters = {}

    def _overlap_delta(self) -> float:
        current = {cpu_id: counter.read().scaled
                   for cpu_id, counter in self._cycle_counters.items()}
        deltas = {cpu_id: current[cpu_id] - self._previous_cycles[cpu_id]
                  for cpu_id in current}
        self._previous_cycles = current
        overlap = 0.0
        for group in self._sibling_groups:
            counts = [max(0.0, deltas.get(cpu_id, 0.0))
                      for cpu_id in group]
            if len(counts) > 1:
                overlap += min(counts)
        return overlap

    def receive(self, message) -> None:
        if not isinstance(message, ClockTick):
            return
        current = {counter.event: counter.read().scaled
                   for counter in self._counters}
        deltas = {event: max(0.0, current[event] - self._previous[event])
                  for event in current}
        self._previous = current
        if self.with_smt_overlap:
            deltas[self.SMT_OVERLAP_EVENT] = self._overlap_delta()
        self.publish(HpcReport(
            time_s=message.time_s,
            period_s=message.period_s,
            pid=-1,
            counters=deltas,
            frequency_hz=self.machine.dominant_frequency_hz(),
        ))


class ProcFsSensor(Actor):
    """Publishes per-process CPU-time deltas on every clock tick."""

    def __init__(self, procfs: ProcFs, pids: Sequence[int],
                 num_cpus: int) -> None:
        super().__init__()
        if not pids:
            raise ConfigurationError("ProcFsSensor needs at least one pid")
        if num_cpus < 1:
            raise ConfigurationError("num_cpus must be >= 1")
        self.procfs = procfs
        self.pids = tuple(pids)
        self.num_cpus = num_cpus
        self._previous_cpu_s: Dict[int, float] = {}
        self._previous_busy_s: Optional[float] = None

    def pre_start(self) -> None:
        self.context.system.event_bus.subscribe(ClockTick, self.self_ref)

    def _pid_cpu_time(self, pid: int) -> float:
        try:
            return self.procfs.process_cpu_time_s(pid)
        except Exception:  # process has not run yet
            return 0.0

    def receive(self, message) -> None:
        if not isinstance(message, ClockTick):
            return
        total_busy = sum(self.procfs.cpu_busy_time_s(cpu)
                         for cpu in range(self.num_cpus))
        if self._previous_busy_s is None:
            busy_delta = total_busy
        else:
            busy_delta = total_busy - self._previous_busy_s
        self._previous_busy_s = total_busy
        machine_load = min(1.0, max(
            0.0, busy_delta / (self.num_cpus * message.period_s)))

        for pid in self.pids:
            now = self._pid_cpu_time(pid)
            delta = max(0.0, now - self._previous_cpu_s.get(pid, 0.0))
            self._previous_cpu_s[pid] = now
            self.publish(ProcFsReport(
                time_s=message.time_s,
                period_s=message.period_s,
                pid=pid,
                cpu_time_delta_s=delta,
                machine_load=machine_load,
            ))


class PowerMeterSensor(Actor):
    """Publishes the latest physical meter reading on every clock tick."""

    def __init__(self, meter: PowerMeter) -> None:
        super().__init__()
        self.meter = meter

    def pre_start(self) -> None:
        self.context.system.event_bus.subscribe(ClockTick, self.self_ref)

    def receive(self, message) -> None:
        if not isinstance(message, ClockTick):
            return
        sample = self.meter.last_sample()
        if sample is None:
            return
        self.publish(PowerMeterReport(
            time_s=message.time_s,
            period_s=message.period_s,
            pid=-1,
            power_w=sample.power_w,
        ))

"""Sensor actors: the data-acquisition stage of the PowerAPI pipeline.

A Sensor "monitors the metrics of a given process and then publishes a
sensor message to the event bus" (paper, Section 3).  Sensors subscribe to
the monitoring clock (:class:`~repro.actors.clock.ClockTick`) and publish
one report per monitored process per period:

* :class:`HpcSensor` — hardware performance counters through the perf
  layer (the paper's primary metric source),
* :class:`ProcFsSensor` — CPU-time accounting from procfs (feeds the
  CPU-load baseline),
* :class:`PowerMeterSensor` — readings of a physical power meter (used
  during evaluation to compare estimates against ground truth).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.actors.clock import ClockTick
from repro.core.messages import (GapMarker, HealthEvent, HpcReport,
                                 PowerMeterReport, ProcFsReport)
from repro.core.stage import PipelineStage
from repro.errors import (ConfigurationError, CounterInvalidError,
                          CounterStateError, MeterConnectionError,
                          SampleLossError)
from repro.faults.backoff import ExponentialBackoff
from repro.os.procfs import ProcFs
from repro.perf.counting import PerfCounter, PerfSession
from repro.powermeter.base import PowerMeter
from repro.simcpu.counters import GENERIC_TRIO
from repro.simcpu.machine import Machine


class PipelineMode:
    """Shared estimation-mode switch for one pipeline.

    The degradation ladder is HPC → cpu-load → gap markers: the primary
    :class:`HpcSensor` flips this to ``"cpu-load"`` when counters go
    silent and back to ``"hpc"`` on recovery; the standby
    :class:`ProcFsSensor` and its formula only publish while degraded.
    A plain shared object (not an actor) because both sensors must see
    the flip within the same tick.
    """

    HPC = "hpc"
    CPU_LOAD = "cpu-load"

    def __init__(self) -> None:
        self.mode = self.HPC

    @property
    def degraded(self) -> bool:
        return self.mode != self.HPC


class DegradationPolicy:
    """When to fall back to cpu-load and when to climb back to HPC."""

    def __init__(self, degrade_after: int = 3, recover_after: int = 2) -> None:
        if degrade_after < 1 or recover_after < 1:
            raise ConfigurationError(
                "degrade_after and recover_after must be >= 1")
        self.degrade_after = degrade_after
        self.recover_after = recover_after


class HpcSensor(PipelineStage):
    """Publishes per-process HPC deltas on every clock tick.

    Fault-aware: reads that fail (pid exited, sample loss) or return no
    PMU time (slot starvation) count as *misses*; the sensor publishes a
    :class:`GapMarker` for the period, tries to reopen dead counters,
    and — when a :class:`PipelineMode`/:class:`DegradationPolicy` pair
    is wired — degrades the pipeline to the cpu-load formula after N
    consecutive missing periods, recovering once HPC data returns.
    """

    def __init__(self, machine: Machine, perf: PerfSession,
                 pids: Sequence[int],
                 events: Sequence[str] = GENERIC_TRIO,
                 mode: Optional[PipelineMode] = None,
                 policy: Optional[DegradationPolicy] = None,
                 component: str = "hpc-sensor") -> None:
        super().__init__(component=component)
        if not pids:
            raise ConfigurationError("HpcSensor needs at least one pid")
        self.machine = machine
        self.perf = perf
        self.pids = tuple(pids)
        self.events = tuple(events)
        self.mode = mode
        self.policy = policy or DegradationPolicy()
        self._counters: Dict[int, Tuple[PerfCounter, ...]] = {}
        #: pid -> event -> (raw, time_enabled_s, time_running_s) baseline.
        self._previous: Dict[int, Dict[str, Tuple[float, float, float]]] = {}
        self._lost_pids: Set[int] = set()
        self._miss_streak = 0
        self._good_streak = 0

    # -- lifecycle --------------------------------------------------------

    subscribes_to = (ClockTick,)

    def on_start(self) -> None:
        for pid in self.pids:
            if pid in self._lost_pids:
                continue  # a restart must not resurrect dead targets
            if not self._open_pid(pid):
                self._mark_lost(pid, time_s=0.0)

    def on_stop(self) -> None:
        for counters in self._counters.values():
            for counter in counters:
                counter.close()
        self._counters.clear()
        self._previous.clear()

    def _open_pid(self, pid: int) -> bool:
        try:
            counters = tuple(self.perf.open(event, pid=pid)
                             for event in self.events)
        except (CounterInvalidError, CounterStateError):
            return False
        self._counters[pid] = counters
        self._previous[pid] = {
            counter.event: self._snapshot(counter) for counter in counters}
        return True

    @staticmethod
    def _snapshot(counter: PerfCounter) -> Tuple[float, float, float]:
        value = counter.read()
        return (value.raw, value.time_enabled_s, value.time_running_s)

    def _mark_lost(self, pid: int, time_s: float) -> None:
        self._lost_pids.add(pid)
        for counter in self._counters.pop(pid, ()):
            counter.close()
        self._previous.pop(pid, None)
        self.report_health(time_s, "pid-lost",
                           f"pid {pid}: counters invalid (ESRCH)")

    # -- sampling ---------------------------------------------------------

    def _sample_pid(self, pid: int, time_s: float, period_s: float
                    ) -> Optional[Dict[str, float]]:
        """One pid's deltas for the period, or None on a miss.

        Uses per-interval multiplex scaling: the counting rate while the
        event held a PMU slot (``delta_raw / delta_running``) is
        extrapolated to one monitoring period.  For a healthy
        un-multiplexed counter this reduces to the plain raw delta;
        under slot starvation the running time freezes, which surfaces
        as a miss instead of extrapolating phantom counts from a stale
        cumulative ratio; after a read-loss gap it yields a per-period
        rate rather than dumping the accumulated backlog into one period.
        """
        counters = self._counters.get(pid)
        if counters is None:
            return None
        try:
            snapshots = {counter.event: self._snapshot(counter)
                         for counter in counters}
        except SampleLossError:
            return None
        except (CounterInvalidError, CounterStateError):
            # Dead counters: try a clean reopen (fresh baselines); if
            # the pid itself is gone, drop it for good.
            for counter in counters:
                counter.close()
            self._counters.pop(pid, None)
            self._previous.pop(pid, None)
            if not self._open_pid(pid):
                self._mark_lost(pid, time_s)
            return None

        previous = self._previous[pid]
        deltas: Dict[str, float] = {}
        ran = False
        for event, (raw, enabled, running) in snapshots.items():
            prev_raw, _prev_enabled, prev_running = previous[event]
            d_raw = max(0.0, raw - prev_raw)
            d_running = running - prev_running
            if d_running > 1e-12:
                ran = True
                deltas[event] = d_raw * (period_s / d_running)
            else:
                deltas[event] = 0.0
        self._previous[pid] = snapshots
        if not ran:
            return None  # starved out: no PMU time at all this period
        return deltas

    def _update_health(self, period_missing: bool, time_s: float) -> None:
        if period_missing:
            self._miss_streak += 1
            self._good_streak = 0
        else:
            self._good_streak += 1
            self._miss_streak = 0
        if self.mode is None:
            return
        if (not self.mode.degraded
                and self._miss_streak >= self.policy.degrade_after):
            self.mode.mode = PipelineMode.CPU_LOAD
            self.report_health(time_s, "degraded",
                               f"no HPC data for {self._miss_streak} "
                               "periods; falling back to cpu-load")
        elif (self.mode.degraded
                and self._good_streak >= self.policy.recover_after):
            self.mode.mode = PipelineMode.HPC
            self.report_health(time_s, "recovered",
                               f"HPC data back for {self._good_streak} "
                               "periods; resuming hpc formula")

    def handle(self, message) -> None:
        if not isinstance(message, ClockTick):
            return
        frequency_hz = self.machine.dominant_frequency_hz()
        sampled: Dict[int, Dict[str, float]] = {}
        for pid in [pid for pid in self.pids if pid in self._counters]:
            deltas = self._sample_pid(pid, message.time_s, message.period_s)
            if deltas is not None:
                sampled[pid] = deltas

        tracked = any(pid in self._counters for pid in self.pids)
        if tracked:
            self._update_health(period_missing=not sampled,
                                time_s=message.time_s)
        if tracked and not sampled:
            self.publish(GapMarker(
                time_s=message.time_s, period_s=message.period_s,
                pid=-1, source="hpc"))
            return
        if self.mode is not None and self.mode.degraded:
            return  # the standby cpu-load path owns this period
        for pid, deltas in sampled.items():
            self.publish(HpcReport(
                time_s=message.time_s,
                period_s=message.period_s,
                pid=pid,
                counters=deltas,
                frequency_hz=frequency_hz,
            ))


class MachineHpcSensor(PipelineStage):
    """Publishes machine-wide HPC deltas (pid -1) on every clock tick.

    Supports the hyperthread-aware models: with *with_smt_overlap* the
    report's counters include the :data:`SMT_OVERLAP_EVENT` pseudo-event
    (cycles during which both hyperthreads of a core were busy), computed
    from per-logical-CPU cycle counters exactly like the learning
    harness does.
    """

    #: Pseudo-event name carrying the SMT-overlap cycle count.
    SMT_OVERLAP_EVENT = "smt-overlap-cycles"

    def __init__(self, machine: Machine, perf: PerfSession,
                 events: Sequence[str] = GENERIC_TRIO,
                 with_smt_overlap: bool = False) -> None:
        super().__init__(component="machine-hpc-sensor")
        self.machine = machine
        self.perf = perf
        self.events = tuple(events)
        self.with_smt_overlap = with_smt_overlap
        self._counters: Tuple[PerfCounter, ...] = ()
        self._previous: Dict[str, float] = {}
        self._cycle_counters: Dict[int, PerfCounter] = {}
        self._previous_cycles: Dict[int, float] = {}
        self._sibling_groups = [
            machine.topology.core_cpus(package_id, core_id)
            for package_id, core_id in machine.topology.cores()]

    subscribes_to = (ClockTick,)

    def on_start(self) -> None:
        self._counters = tuple(self.perf.open(event)
                               for event in self.events)
        self._previous = {counter.event: counter.read().scaled
                          for counter in self._counters}
        if self.with_smt_overlap:
            self._cycle_counters = {
                cpu_id: self.perf.open("cycles", cpu=cpu_id)
                for cpu_id in self.machine.topology.cpu_ids}
            self._previous_cycles = {
                cpu_id: counter.read().scaled
                for cpu_id, counter in self._cycle_counters.items()}

    def on_stop(self) -> None:
        for counter in self._counters:
            counter.close()
        for counter in self._cycle_counters.values():
            counter.close()
        self._counters = ()
        self._cycle_counters = {}

    def _overlap_delta(self) -> float:
        current = {cpu_id: counter.read().scaled
                   for cpu_id, counter in self._cycle_counters.items()}
        deltas = {cpu_id: current[cpu_id] - self._previous_cycles[cpu_id]
                  for cpu_id in current}
        self._previous_cycles = current
        overlap = 0.0
        for group in self._sibling_groups:
            counts = [max(0.0, deltas.get(cpu_id, 0.0))
                      for cpu_id in group]
            if len(counts) > 1:
                overlap += min(counts)
        return overlap

    def handle(self, message) -> None:
        if not isinstance(message, ClockTick):
            return
        current = {counter.event: counter.read().scaled
                   for counter in self._counters}
        deltas = {event: max(0.0, current[event] - self._previous[event])
                  for event in current}
        self._previous = current
        if self.with_smt_overlap:
            deltas[self.SMT_OVERLAP_EVENT] = self._overlap_delta()
        self.publish(HpcReport(
            time_s=message.time_s,
            period_s=message.period_s,
            pid=-1,
            counters=deltas,
            frequency_hz=self.machine.dominant_frequency_hz(),
        ))


class ProcFsSensor(PipelineStage):
    """Publishes per-process CPU-time deltas on every clock tick.

    With a :class:`PipelineMode` it acts as the degradation standby: it
    keeps its delta accounting warm every period but only *publishes*
    while the pipeline is degraded to ``active_mode`` (default
    ``"cpu-load"``), so handover from the HPC path has no warm-up hole.
    """

    def __init__(self, procfs: ProcFs, pids: Sequence[int],
                 num_cpus: int, mode: Optional[PipelineMode] = None,
                 active_mode: str = PipelineMode.CPU_LOAD) -> None:
        super().__init__(component="procfs-sensor")
        if not pids:
            raise ConfigurationError("ProcFsSensor needs at least one pid")
        if num_cpus < 1:
            raise ConfigurationError("num_cpus must be >= 1")
        self.procfs = procfs
        self.pids = tuple(pids)
        self.num_cpus = num_cpus
        self.mode = mode
        self.active_mode = active_mode
        self._previous_cpu_s: Dict[int, float] = {}
        self._previous_busy_s: Optional[float] = None

    subscribes_to = (ClockTick,)

    def _active(self) -> bool:
        return self.mode is None or self.mode.mode == self.active_mode

    def _pid_cpu_time(self, pid: int) -> float:
        try:
            return self.procfs.process_cpu_time_s(pid)
        except Exception:  # process has not run yet
            return 0.0

    def handle(self, message) -> None:
        if not isinstance(message, ClockTick):
            return
        total_busy = sum(self.procfs.cpu_busy_time_s(cpu)
                         for cpu in range(self.num_cpus))
        if self._previous_busy_s is None:
            busy_delta = total_busy
        else:
            busy_delta = total_busy - self._previous_busy_s
        self._previous_busy_s = total_busy
        machine_load = min(1.0, max(
            0.0, busy_delta / (self.num_cpus * message.period_s)))

        active = self._active()
        for pid in self.pids:
            now = self._pid_cpu_time(pid)
            delta = max(0.0, now - self._previous_cpu_s.get(pid, 0.0))
            self._previous_cpu_s[pid] = now
            if not active:
                continue  # standby: keep baselines warm, publish nothing
            self.publish(ProcFsReport(
                time_s=message.time_s,
                period_s=message.period_s,
                pid=pid,
                cpu_time_delta_s=delta,
                machine_load=machine_load,
            ))


class PowerMeterSensor(PipelineStage):
    """Publishes the latest physical meter reading on every clock tick.

    Dropout-aware: while the meter is disconnected it publishes a
    :class:`GapMarker` per period instead of silently stalling, and
    retries ``connect()`` with a capped exponential backoff in
    virtual-clock time.  Dropout and reconnect transitions are recorded
    as :class:`HealthEvent` messages.
    """

    def __init__(self, meter: PowerMeter, component: str = "meter",
                 retry_base_s: Optional[float] = None,
                 retry_max_s: float = 30.0) -> None:
        super().__init__(component=component)
        if retry_base_s is not None and retry_base_s <= 0:
            raise ConfigurationError("retry_base_s must be positive")
        if retry_max_s <= 0:
            raise ConfigurationError("retry_max_s must be positive")
        self.meter = meter
        self.retry_base_s = retry_base_s  # None: one monitoring period
        self.retry_max_s = retry_max_s
        self._down = False
        self._backoff: Optional[ExponentialBackoff] = None
        self._next_retry_s = 0.0

    subscribes_to = (ClockTick,)

    def _try_reconnect(self, message: ClockTick) -> None:
        if not self._down:
            self._down = True
            base_s = self.retry_base_s or message.period_s
            self._backoff = ExponentialBackoff(
                base_s=base_s, factor=2.0,
                max_s=max(self.retry_max_s, base_s))
            self._next_retry_s = message.time_s  # first retry: right now
            self.report_health(message.time_s, "meter-dropout",
                               "meter link lost")
        if message.time_s >= self._next_retry_s - 1e-12:
            try:
                self.meter.connect()
            except MeterConnectionError:
                self._next_retry_s = (message.time_s
                                      + self._backoff.next_delay_s())

    def handle(self, message) -> None:
        if not isinstance(message, ClockTick):
            return
        if not self.meter.connected:
            self._try_reconnect(message)
            if not self.meter.connected:
                self.publish(GapMarker(
                    time_s=message.time_s, period_s=message.period_s,
                    pid=-1, source=self.component))
                return
        if self._down:
            self._down = False
            self.report_health(message.time_s, "meter-reconnected",
                               "meter link restored")
        sample = self.meter.last_sample()
        if sample is None:
            return
        self.publish(PowerMeterReport(
            time_s=message.time_s,
            period_s=message.period_s,
            pid=-1,
            power_w=sample.power_w,
        ))

"""The component registry: pluggable pipeline stages by name.

PowerAPI is "a consistent set of modules that can be assembled" per
deployment (paper, Figure 2).  This module is the assembly catalogue:
sensors, formulas, aggregators and reporters register a *factory* under
a short name together with their declared config parameters, so a
:class:`~repro.core.pipeline.PipelineSpec` can be validated and
instantiated without the core ever naming concrete classes — and
third-party stages plug in without touching core code::

    from repro.core.components import Param, default_registry

    def make_udp_reporter(ctx, host, port=9999):
        return UdpReporter(host, int(port), pids=ctx.pids)

    default_registry().register(
        "reporter", "udp", make_udp_reporter,
        params=(Param("host", str, required=True),
                Param("port", int, default=9999)),
        description="datagram-per-report UDP exporter")

Factories receive a :class:`BuildContext` — everything the enclosing
:class:`~repro.core.monitor.PowerAPI` knows about the machine, model and
pipeline being assembled — plus the validated config parameters as
keyword arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

from repro.core.aggregators import PidAggregator, TimestampAggregator
from repro.core.formula import CpuLoadFormula, HpcFormula
from repro.core.reporters import (ConsoleReporter, CsvReporter,
                                  InMemoryReporter, JsonlReporter,
                                  PrometheusReporter)
from repro.core.sensors import HpcSensor, ProcFsSensor
from repro.errors import ConfigurationError
from repro.simcpu.counters import GENERIC_TRIO

#: The stage kinds a pipeline is assembled from, in pipeline order.
#: ``policy`` entries are control-loop policies for the ``[control]``
#: section rather than Figure-2 stages, but they validate and plug in
#: the same way.
KINDS: Tuple[str, ...] = ("sensor", "formula", "aggregator", "reporter",
                          "policy")


@dataclass
class BuildContext:
    """Everything a component factory may need from the host pipeline.

    Handed to every factory as its first positional argument.  ``mode``
    and ``policy`` are only set while building an ``hpc`` sensor with a
    degradation ladder; ``index`` is the pipeline's ordinal within its
    :class:`~repro.core.monitor.PowerAPI` (used for stable actor names).
    """

    kernel: Any = None
    machine: Any = None
    perf: Any = None
    model: Any = None
    pids: Tuple[int, ...] = ()
    period_s: float = 1.0
    num_cpus: int = 1
    active_range_w: float = 0.0
    mode: Any = None
    policy: Any = None
    index: int = 0

    @property
    def procfs(self):
        return None if self.kernel is None else self.kernel.procfs


@dataclass(frozen=True)
class Param:
    """One declared config parameter of a registered component."""

    name: str
    #: Expected scalar type (``str``/``int``/``float``/``bool``) or
    #: ``list`` for homogeneous string lists (e.g. HPC event names).
    type: type = str
    default: Any = None
    required: bool = False
    help: str = ""

    def coerce(self, value: Any) -> Any:
        """Validate/convert one config value to the declared type."""
        try:
            if self.type is list:
                if isinstance(value, (str, bytes)) or not isinstance(
                        value, (list, tuple)):
                    raise TypeError("expected a list")
                return tuple(str(item) for item in value)
            if self.type is bool:
                if not isinstance(value, bool):
                    raise TypeError("expected a bool")
                return value
            if self.type is float and isinstance(value, int) \
                    and not isinstance(value, bool):
                return float(value)
            if self.type in (int, float) and isinstance(value, bool):
                raise TypeError("expected a number")
            if not isinstance(value, self.type):
                raise TypeError(f"expected {self.type.__name__}")
            return value
        except TypeError as exc:
            raise ConfigurationError(
                f"parameter {self.name!r}: {exc} "
                f"(got {type(value).__name__} {value!r})") from None


@dataclass(frozen=True)
class Component:
    """A registered pipeline stage: factory plus declared parameters."""

    kind: str
    name: str
    factory: Callable[..., Any]
    params: Tuple[Param, ...] = ()
    description: str = ""

    def validate_params(self, config: Mapping[str, Any]) -> Dict[str, Any]:
        """Check *config* against the declaration; returns coerced kwargs."""
        declared = {param.name: param for param in self.params}
        unknown = sorted(set(config) - set(declared))
        if unknown:
            known = ", ".join(sorted(declared)) or "(none)"
            raise ConfigurationError(
                f"{self.kind} {self.name!r} got unknown parameter(s) "
                f"{', '.join(repr(name) for name in unknown)}; "
                f"declared: {known}")
        coerced: Dict[str, Any] = {}
        for param in self.params:
            if param.name in config:
                coerced[param.name] = param.coerce(config[param.name])
            elif param.required:
                raise ConfigurationError(
                    f"{self.kind} {self.name!r} requires parameter "
                    f"{param.name!r}")
        return coerced


class ComponentRegistry:
    """Named factories for each stage kind, with config validation."""

    def __init__(self) -> None:
        self._components: Dict[str, Dict[str, Component]] = {
            kind: {} for kind in KINDS}

    # -- registration -------------------------------------------------

    def register(self, kind: str, name: str, factory: Callable[..., Any],
                 params: Sequence[Param] = (), description: str = "",
                 replace: bool = False) -> Component:
        """Register *factory* as ``kind/name``; returns the entry."""
        table = self._table(kind)
        if not name or not isinstance(name, str):
            raise ConfigurationError(
                f"component name must be a non-empty string, got {name!r}")
        if name in table and not replace:
            raise ConfigurationError(
                f"{kind} {name!r} is already registered "
                "(pass replace=True to override)")
        component = Component(kind=kind, name=name, factory=factory,
                              params=tuple(params),
                              description=description)
        table[name] = component
        return component

    def _table(self, kind: str) -> Dict[str, Component]:
        try:
            return self._components[kind]
        except KeyError:
            raise ConfigurationError(
                f"unknown component kind {kind!r}; "
                f"use one of {', '.join(KINDS)}") from None

    # -- lookup -------------------------------------------------------

    def names(self, kind: str) -> Tuple[str, ...]:
        """Registered component names of one kind, sorted."""
        return tuple(sorted(self._table(kind)))

    def get(self, kind: str, name: str) -> Component:
        """The registered entry, or a ConfigurationError naming the
        available components of that kind."""
        table = self._table(kind)
        try:
            return table[name]
        except KeyError:
            available = ", ".join(sorted(table)) or "(none)"
            raise ConfigurationError(
                f"unknown {kind} {name!r}; available {kind}s: "
                f"{available}") from None

    def create(self, kind: str, name: str, context: BuildContext,
               config: Optional[Mapping[str, Any]] = None) -> Any:
        """Validate *config* and invoke the factory."""
        component = self.get(kind, name)
        kwargs = component.validate_params(config or {})
        return component.factory(context, **kwargs)

    def describe(self, kind: Optional[str] = None
                 ) -> List[Tuple[str, str, str, str]]:
        """(kind, name, params, description) rows for docs and the CLI."""
        rows = []
        for each_kind in (KINDS if kind is None else (kind,)):
            for name in self.names(each_kind):
                component = self.get(each_kind, name)
                params = ", ".join(
                    param.name + ("*" if param.required else "")
                    for param in component.params)
                rows.append((each_kind, name, params,
                             component.description))
        return rows


# -- built-in components ---------------------------------------------------

def _hpc_sensor(ctx: BuildContext, events: Sequence[str] = GENERIC_TRIO):
    return HpcSensor(ctx.machine, ctx.perf, ctx.pids, events=tuple(events),
                     mode=ctx.mode, policy=ctx.policy,
                     component=f"hpc-sensor-{ctx.index}")


def _procfs_sensor(ctx: BuildContext):
    return ProcFsSensor(ctx.procfs, ctx.pids, num_cpus=ctx.num_cpus)


def _hpc_formula(ctx: BuildContext):
    return HpcFormula(ctx.model)


def _cpu_load_formula(ctx: BuildContext,
                      active_range_w: Optional[float] = None):
    range_w = ctx.active_range_w if active_range_w is None else active_range_w
    return CpuLoadFormula(active_range_w=range_w, num_cpus=ctx.num_cpus)


def _timestamp_aggregator(ctx: BuildContext):
    return TimestampAggregator(idle_w=ctx.model.idle_w)


def _pid_aggregator(ctx: BuildContext):
    return PidAggregator()


def _memory_reporter(ctx: BuildContext):
    return InMemoryReporter()


def _console_reporter(ctx: BuildContext):
    return ConsoleReporter()


def _csv_reporter(ctx: BuildContext, path: str, flush_every: int = 1,
                  fsync: bool = False, control: bool = False):
    return CsvReporter(path, pids=ctx.pids, flush_every=flush_every,
                       fsync=fsync, control=control)


def _jsonl_reporter(ctx: BuildContext, path: str, flush_every: int = 1,
                    fsync: bool = False, control: bool = False):
    return JsonlReporter(path, flush_every=flush_every, fsync=fsync,
                         control=control)


def _prometheus_reporter(ctx: BuildContext, path: str):
    return PrometheusReporter(path)


def _deadband_policy(ctx: BuildContext, band_w: float = 2.0,
                     up_patience: int = 2):
    from repro.control.policy import DeadBandPolicy
    return DeadBandPolicy(band_w=band_w, up_patience=up_patience)


def _pi_policy(ctx: BuildContext, kp: float = 0.4, ki: float = 0.15,
               step_w: Optional[float] = None, band_w: float = 1.0,
               max_step: int = 2, windup_w: float = 30.0):
    from repro.control.policy import PIPolicy
    if step_w is None:
        # Watts per ladder rung, estimated from the machine's active
        # range spread across its DVFS table.
        rungs = max(1, len(ctx.machine.spec.all_frequencies_hz) - 1)
        step_w = max(0.5, ctx.active_range_w / rungs)
    return PIPolicy(step_w=step_w, kp=kp, ki=ki, band_w=band_w,
                    max_step=max_step, windup_w=windup_w)


def _register_builtins(registry: ComponentRegistry) -> ComponentRegistry:
    registry.register(
        "sensor", "hpc", _hpc_sensor,
        params=(Param("events", list,
                      help="HPC event names (default: the generic trio)"),),
        description="per-process hardware performance counters via perf")
    registry.register(
        "sensor", "procfs", _procfs_sensor,
        description="per-process CPU-time accounting from procfs")
    registry.register(
        "formula", "hpc", _hpc_formula,
        description="learned frequency-aware HPC power model")
    registry.register(
        "formula", "cpu-load", _cpu_load_formula,
        params=(Param("active_range_w", float,
                      help="idle-to-full-load span in watts "
                           "(default: estimated from the model)"),),
        description="Versick-style CPU-time-share linear model")
    registry.register(
        "aggregator", "timestamp", _timestamp_aggregator,
        description="one machine-level report per period, idle included")
    registry.register(
        "aggregator", "pid", _pid_aggregator,
        description="cumulative per-process energy over the run")
    registry.register(
        "reporter", "memory", _memory_reporter,
        description="in-memory report lists (tests, programmatic use)")
    registry.register(
        "reporter", "console", _console_reporter,
        description="one human-readable line per period on stdout")
    registry.register(
        "reporter", "csv", _csv_reporter,
        params=(Param("path", str, required=True),
                Param("flush_every", int, default=1),
                Param("fsync", bool, default=False),
                Param("control", bool, default=False)),
        description="one CSV row per period")
    registry.register(
        "reporter", "jsonl", _jsonl_reporter,
        params=(Param("path", str, required=True),
                Param("flush_every", int, default=1),
                Param("fsync", bool, default=False),
                Param("control", bool, default=False)),
        description="one JSON object per period")
    registry.register(
        "reporter", "prometheus", _prometheus_reporter,
        params=(Param("path", str, required=True),),
        description="atomic Prometheus textfile-collector exposition")
    registry.register(
        "policy", "deadband", _deadband_policy,
        params=(Param("band_w", float, default=2.0),
                Param("up_patience", int, default=2)),
        description="threshold stepping with asymmetric hysteresis")
    registry.register(
        "policy", "pi", _pi_policy,
        params=(Param("kp", float, default=0.4),
                Param("ki", float, default=0.15),
                Param("step_w", float,
                      help="watts per ladder rung (default: estimated "
                           "from the machine's active range)"),
                Param("band_w", float, default=1.0),
                Param("max_step", int, default=2),
                Param("windup_w", float, default=30.0)),
        description="PI controller quantised to ladder steps, anti-windup")
    return registry


_DEFAULT = _register_builtins(ComponentRegistry())


def default_registry() -> ComponentRegistry:
    """The process-wide registry with every built-in stage installed."""
    return _DEFAULT

"""PowerAPI core: the paper's contribution.

Model learning (Figure 1): :class:`SamplingCampaign`,
:func:`learn_power_model`, :func:`calibrate_idle_power`,
:mod:`~repro.core.regression`, :mod:`~repro.core.selection`.

Runtime estimation (Figure 2): :class:`PowerAPI` facade wiring Sensor →
Formula → Aggregator → Reporter actors over the event bus.
"""

from repro.core.aggregators import (FlushAggregates, PidAggregator,
                                    PidEnergyReport, TimestampAggregator)
from repro.core.calibration import calibrate_idle_power
from repro.core.capping import (CappedRunResult, CappingGovernor,
                                run_capped, solar_budget)
from repro.core.cgroup_monitor import (CgroupAggregator, CgroupPowerReport,
                                       InMemoryCgroupReporter)
from repro.core.codelevel import (EnergyBudget, EnergyBudgetExceeded,
                                  EnergyMeasurement, RegionProfiler,
                                  assert_energy_within, measure_energy)
from repro.core.components import (BuildContext, Component,
                                   ComponentRegistry, Param,
                                   default_registry)
from repro.core.formula import CpuLoadFormula, HpcFormula
from repro.core.messages import (AggregatedPowerReport, HpcReport,
                                 PowerMeterReport, PowerReport, ProcFsReport,
                                 SensorReport)
from repro.core.metrics import (absolute_percentage_errors, error_summary,
                                max_ape, mean_ape, median_ape, r_squared,
                                rmse)
from repro.core.model import (FrequencyFormula, PowerModel,
                              published_i3_2120_model)
from repro.core.monitor import MonitorBuilder, MonitorHandle, PowerAPI
from repro.core.pipeline import (BuiltPipeline, DegradationSpec,
                                 PipelineBuilder, PipelineSpec, StageSpec,
                                 TelemetrySpec)
from repro.core.stage import PipelineStage
from repro.core.offline import (CounterLogWriter, estimate_from_csv,
                                estimate_from_log)
from repro.core.registry import ModelRegistry, machine_signature
from repro.core.regression import (METHODS, RegressionResult, fit, fit_nnls,
                                   fit_ols, fit_ridge)
from repro.core.reporters import (CallbackReporter, ConsoleReporter,
                                  CsvReporter, InMemoryReporter,
                                  JsonlReporter, PrometheusReporter)
from repro.core.sampling import (LearningReport, SamplePoint,
                                 SamplingCampaign, SamplingDataset,
                                 learn_power_model)
from repro.core.parallel import (chunk_tasks, default_worker_count,
                                 pool_available, resolve_workers, run_tasks)
from repro.core.selection import CounterRanking, rank_counters, select_counters
from repro.core.validation import (CrossValidationReport, FoldResult,
                                   cross_validate)
from repro.core.sensors import (HpcSensor, MachineHpcSensor,
                                PowerMeterSensor, ProcFsSensor)

__all__ = [
    "AggregatedPowerReport", "BuildContext", "BuiltPipeline",
    "CallbackReporter", "CappedRunResult", "CappingGovernor",
    "CgroupAggregator", "CgroupPowerReport", "Component",
    "ComponentRegistry", "ConsoleReporter", "CounterLogWriter",
    "CounterRanking", "CpuLoadFormula", "CrossValidationReport",
    "CsvReporter", "DegradationSpec", "EnergyBudget", "EnergyBudgetExceeded",
    "EnergyMeasurement", "FlushAggregates", "FoldResult", "FrequencyFormula",
    "HpcFormula", "HpcReport", "HpcSensor", "InMemoryCgroupReporter",
    "InMemoryReporter", "JsonlReporter", "LearningReport", "METHODS",
    "MachineHpcSensor", "ModelRegistry", "MonitorBuilder", "MonitorHandle",
    "Param", "PidAggregator", "PidEnergyReport", "PipelineBuilder",
    "PipelineSpec", "PipelineStage", "PowerAPI", "PowerMeterReport",
    "PowerMeterSensor", "PowerModel", "PowerReport", "ProcFsReport",
    "ProcFsSensor", "PrometheusReporter", "RegionProfiler",
    "RegressionResult", "SamplePoint", "SamplingCampaign", "SamplingDataset",
    "SensorReport", "StageSpec", "TelemetrySpec", "TimestampAggregator",
    "absolute_percentage_errors", "assert_energy_within",
    "calibrate_idle_power", "chunk_tasks", "cross_validate",
    "default_registry", "default_worker_count", "error_summary",
    "estimate_from_csv", "estimate_from_log", "fit", "fit_nnls", "fit_ols",
    "fit_ridge", "learn_power_model", "machine_signature", "max_ape",
    "mean_ape", "measure_energy", "median_ape", "pool_available",
    "published_i3_2120_model", "r_squared", "rank_counters",
    "resolve_workers", "rmse", "run_capped", "run_tasks", "select_counters",
    "solar_budget",
]

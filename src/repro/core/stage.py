"""The shared pipeline-stage lifecycle protocol.

Every Figure 2 stage — Sensor, Formula, Aggregator, Reporter — used to
re-implement the same four rituals by hand: subscribe its topics in
``pre_start``, release resources in ``post_stop``, react to
:class:`~repro.core.messages.FlushAggregates`, and publish
:class:`~repro.core.messages.HealthEvent` transitions.
:class:`PipelineStage` centralises all four:

* **subscribe-on-start** — a stage declares its topics via the
  ``subscribes_to`` class attribute (or overrides :meth:`subscriptions`
  for dynamic topic sets); the base ``pre_start`` subscribes them all.
* **unsubscribe-on-stop** — :meth:`repro.actors.system.ActorSystem.stop`
  already unsubscribes a stopping actor from every topic; the base
  ``post_stop`` only has to run the stage's :meth:`on_stop` teardown.
* **flush** — a stage that overrides :meth:`flush` is automatically
  subscribed to :class:`FlushAggregates` and has its flush hook invoked
  for each one; aggregators publish pending summaries, file reporters
  sync their buffers.
* **health reporting** — :meth:`report_health` publishes a
  :class:`HealthEvent` stamped with the stage's ``component`` name.

Message handling moves from ``receive`` to :meth:`handle`: the base
``receive`` routes ``FlushAggregates`` to :meth:`flush` and everything
else to ``handle``.  Subclassing a concrete stage and overriding
``receive`` still works (tests do this to intercept traffic) because
``receive`` remains the actor entry point.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple, Type

from repro.actors.actor import Actor
from repro.core.messages import FlushAggregates, HealthEvent


class PipelineStage(Actor):
    """Base class for all pipeline stages with a unified lifecycle."""

    #: Topics auto-subscribed on start.  Subclasses override the class
    #: attribute (static sets) or :meth:`subscriptions` (dynamic sets).
    subscribes_to: Tuple[Type, ...] = ()

    def __init__(self, component: str = "") -> None:
        super().__init__()
        #: Name stamped on this stage's health events.
        self.component = component or type(self).__name__.lower()

    # -- lifecycle ------------------------------------------------------

    def subscriptions(self) -> Iterable[Type]:
        """The topics this stage listens to (deduplicated, in order)."""
        topics = list(self.subscribes_to)
        if type(self).flush is not PipelineStage.flush \
                and FlushAggregates not in topics:
            topics.append(FlushAggregates)
        return topics

    def pre_start(self) -> None:
        bus = self.context.system.event_bus
        for topic in self.subscriptions():
            bus.subscribe(topic, self.self_ref)
        self.on_start()

    def post_stop(self) -> None:
        # The actor system has already unsubscribed this stage from
        # every topic; only stage-owned resources remain.
        self.on_stop()

    def on_start(self) -> None:
        """Acquire stage resources (counters, files, connections)."""

    def on_stop(self) -> None:
        """Release everything :meth:`on_start` acquired."""

    # -- flushing -------------------------------------------------------

    def flush(self) -> None:
        """Emit/persist pending state.  Overriding this hook also
        subscribes the stage to :class:`FlushAggregates`."""

    # -- health ---------------------------------------------------------

    def report_health(self, time_s: float, kind: str,
                      detail: str = "") -> None:
        """Publish a :class:`HealthEvent` attributed to this stage."""
        self.publish(HealthEvent(time_s=time_s, component=self.component,
                                 kind=kind, detail=detail))

    # -- messaging ------------------------------------------------------

    def receive(self, message: Any) -> None:
        if isinstance(message, FlushAggregates):
            self.flush()
            return
        self.handle(message)

    def handle(self, message: Any) -> None:
        """Process one non-lifecycle message; subclasses implement."""

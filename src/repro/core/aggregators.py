"""Aggregator actors: combining per-process estimations.

An Aggregator "aggregates the power estimations according to a dimension,
like the PID or the timestamp" (paper, Section 3):

* :class:`TimestampAggregator` — groups :class:`PowerReport` messages by
  timestamp and publishes one machine-level
  :class:`AggregatedPowerReport` per period (idle + sum of processes),
* :class:`PidAggregator` — integrates per-process energy over the whole
  run; on a :class:`FlushAggregates` message it publishes a
  :class:`PidEnergyReport` with cumulative joules per pid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.core.messages import (AggregatedPowerReport, FlushAggregates,
                                 GapMarker, PowerReport)
from repro.core.stage import PipelineStage
from repro.errors import ConfigurationError

__all__ = ["FlushAggregates", "PidAggregator", "PidEnergyReport",
           "TimestampAggregator"]


@dataclass(frozen=True)
class PidEnergyReport:
    """Cumulative per-process energy over a monitoring run."""

    time_s: float
    duration_s: float
    #: pid -> joules of *active* energy attributed.
    energy_by_pid_j: Mapping[int, float]
    formula: str

    def total_j(self) -> float:
        """Sum of attributed energy over all pids, joules."""
        return sum(self.energy_by_pid_j.values())


class TimestampAggregator(PipelineStage):
    """One AggregatedPowerReport per timestamp, idle power included.

    Reports for timestamp T are held until the first report for a later
    timestamp arrives (all of T's reports are then known, because message
    delivery preserves publication order within the single-threaded
    system).

    Periods for which sensors published only :class:`GapMarker`
    messages (no formula produced an estimate) are emitted as explicit
    gap reports (``gap=True``, empty ``by_pid``) so the downstream
    series shows a marked hole instead of a silent one.
    """

    subscribes_to = (PowerReport, GapMarker)

    def __init__(self, idle_w: float) -> None:
        super().__init__(component="timestamp-aggregator")
        if idle_w < 0:
            raise ConfigurationError("idle_w must be >= 0")
        self.idle_w = idle_w
        self._pending_time: float = -1.0
        self._pending_period: float = 1.0
        self._pending_formula = ""
        self._pending: Dict[int, float] = {}
        self._pending_gaps: set = set()

    def flush(self) -> None:
        if self._pending:
            self.publish(AggregatedPowerReport(
                time_s=self._pending_time,
                period_s=self._pending_period,
                by_pid=dict(self._pending),
                idle_w=self.idle_w,
                formula=self._pending_formula,
            ))
        elif self._pending_gaps:
            self.publish(AggregatedPowerReport(
                time_s=self._pending_time,
                period_s=self._pending_period,
                by_pid={},
                idle_w=self.idle_w,
                formula="gap:" + "+".join(sorted(self._pending_gaps)),
                gap=True,
            ))
        self._pending.clear()
        self._pending_gaps.clear()

    def _advance_to(self, time_s: float, period_s: float) -> None:
        if ((self._pending or self._pending_gaps)
                and time_s > self._pending_time + 1e-12):
            self.flush()
        self._pending_time = time_s
        self._pending_period = period_s

    def handle(self, message) -> None:
        if isinstance(message, GapMarker):
            self._advance_to(message.time_s, message.period_s)
            self._pending_gaps.add(message.source or "sensor")
            return
        if not isinstance(message, PowerReport):
            return
        self._advance_to(message.time_s, message.period_s)
        self._pending_formula = message.formula
        self._pending[message.pid] = (
            self._pending.get(message.pid, 0.0) + message.power_w)


class PidAggregator(PipelineStage):
    """Integrates active energy per pid across the run."""

    subscribes_to = (PowerReport,)

    def __init__(self, formula: str = "") -> None:
        super().__init__(component="pid-aggregator")
        self._energy_j: Dict[int, float] = {}
        self._duration_s = 0.0
        self._last_time_s = 0.0
        self._formula = formula

    @property
    def energy_by_pid_j(self) -> Dict[int, float]:
        """Snapshot of accumulated energy per pid."""
        return dict(self._energy_j)

    def flush(self) -> None:
        self.publish(PidEnergyReport(
            time_s=self._last_time_s,
            duration_s=self._duration_s,
            energy_by_pid_j=dict(self._energy_j),
            formula=self._formula,
        ))

    def handle(self, message) -> None:
        if not isinstance(message, PowerReport):
            return
        self._energy_j[message.pid] = (
            self._energy_j.get(message.pid, 0.0)
            + message.power_w * message.period_s)
        if message.time_s > self._last_time_s:
            self._duration_s += message.period_s
            self._last_time_s = message.time_s
        if not self._formula:
            self._formula = message.formula

"""The power-model learning pipeline (Figure 1 of the paper).

The process, exactly as the paper describes it:

1. *Workloads* — CPU- and memory-intensive stressors cover the space of
   processor activities (step 1 in the figure),
2. they are *executed for each frequency* made available by the processor
   (including turbo bins when present), pinned there with the userspace
   governor,
3. during each run the *PowerSpy* meter records wall power while the
   *HPCs* are read through the perf layer (steps 2–3),
4. samples are fed to a *multivariate regression*, one model per
   frequency (step 4), with the idle constant coming from a separate
   calibration run.

The result is a :class:`~repro.core.model.PowerModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.calibration import calibrate_idle_power
from repro.core.model import FrequencyFormula, PowerModel
from repro.core.parallel import chunk_tasks, resolve_workers, run_tasks
from repro.core.regression import RegressionResult, fit
from repro.errors import ConfigurationError, InsufficientDataError
from repro.os.governor import UserspaceGovernor
from repro.os.kernel import SimKernel
from repro.perf.counting import PerfSession
from repro.powermeter.powerspy import PowerSpy
from repro.simcpu.counters import GENERIC_TRIO
from repro.simcpu.spec import CpuSpec
from repro.workloads.base import Workload
from repro.workloads.stress import stress_matrix


@dataclass(frozen=True)
class SamplePoint:
    """One (counter rates, power) observation at a pinned frequency."""

    frequency_hz: int
    workload: str
    #: Machine-wide counter rates, events/second.
    rates: Dict[str, float]
    #: Mean wall power over the window, watts.
    power_w: float


class SamplingDataset:
    """All sample points of one campaign."""

    def __init__(self, points: Sequence[SamplePoint],
                 events: Sequence[str]) -> None:
        self.points: List[SamplePoint] = list(points)
        self.events: Tuple[str, ...] = tuple(events)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def frequencies_hz(self) -> Tuple[int, ...]:
        """Distinct frequencies present, ascending."""
        return tuple(sorted({point.frequency_hz for point in self.points}))

    def at_frequency(self, frequency_hz: int) -> List[SamplePoint]:
        """Points sampled at one frequency."""
        return [point for point in self.points
                if point.frequency_hz == frequency_hz]

    def feature_matrix(self, frequency_hz: Optional[int] = None
                       ) -> Tuple[List[Dict[str, float]], List[float]]:
        """(feature dicts, power targets) for regression."""
        points = (self.points if frequency_hz is None
                  else self.at_frequency(frequency_hz))
        return ([point.rates for point in points],
                [point.power_w for point in points])


class SamplingCampaign:
    """Runs the Figure 1 grid: workloads x frequencies x windows."""

    def __init__(self, spec: CpuSpec,
                 events: Sequence[str] = GENERIC_TRIO,
                 workloads: Optional[Sequence[Workload]] = None,
                 frequencies_hz: Optional[Sequence[int]] = None,
                 thread_counts: Optional[Sequence[int]] = None,
                 window_s: float = 1.0,
                 windows_per_run: int = 4,
                 settle_s: float = 0.5,
                 quantum_s: float = 0.05,
                 meter_seed: int = 1234) -> None:
        if window_s <= 0 or settle_s < 0 or windows_per_run < 1:
            raise ConfigurationError("invalid campaign timing parameters")
        self.spec = spec
        self.events = tuple(events)
        self._explicit_workloads = list(workloads) if workloads else None
        self.frequencies_hz = tuple(frequencies_hz if frequencies_hz
                                    else spec.all_frequencies_hz)
        for frequency in self.frequencies_hz:
            spec.validate_frequency(frequency)
        if thread_counts is None:
            thread_counts = sorted({1, spec.num_cores, spec.num_threads})
        self.thread_counts = tuple(thread_counts)
        self.window_s = window_s
        self.windows_per_run = windows_per_run
        self.settle_s = settle_s
        self.quantum_s = quantum_s
        self.meter_seed = meter_seed

    @staticmethod
    def _workload_threads(workload: Workload) -> int:
        """Thread count a workload actually demands (grid metadata)."""
        try:
            demand = workload.demand(0.0)
        except Exception:
            return 1
        return demand.threads if demand is not None else 1

    def _workloads(self) -> List[Tuple[Workload, int]]:
        """(workload, thread count) pairs forming the grid."""
        if self._explicit_workloads is not None:
            return [(workload, self._workload_threads(workload))
                    for workload in self._explicit_workloads]
        grid: List[Tuple[Workload, int]] = []
        for threads in self.thread_counts:
            for workload in stress_matrix(threads=threads):
                grid.append((workload, threads))
        return grid

    def run_plan(self) -> List[Tuple[int, Workload, int]]:
        """The grid as (frequency_hz, workload, run_index) tuples.

        ``run_index`` is the 1-based position in grid order; it seeds the
        run's meter, so the plan fully determines every run's result.
        """
        plan: List[Tuple[int, Workload, int]] = []
        run_index = 0
        grid = self._workloads()
        for frequency_hz in self.frequencies_hz:
            for workload, _threads in grid:
                run_index += 1
                plan.append((frequency_hz, workload, run_index))
        return plan

    def run(self, workers: int = 1) -> SamplingDataset:
        """Execute the whole grid; returns every collected sample point.

        ``workers > 1`` fans the independent (frequency, workload) runs
        out across a process pool (``0``/``None`` = one per CPU).  Every
        run builds its own kernel and meter seeded from its grid index,
        and results are reassembled in grid order, so the dataset is
        identical for any worker count; when the pool is unavailable the
        campaign silently degrades to the serial loop.

        Runs are dispatched as one contiguous chunk per worker: the
        campaign (and each chunk's workloads) crosses the process
        boundary once per worker rather than once per run, which is what
        lets short runs actually scale instead of drowning in per-task
        pickling and IPC.
        """
        plan = self.run_plan()
        worker_count = min(resolve_workers(workers), max(1, len(plan)))
        payloads = [(self, chunk)
                    for chunk in chunk_tasks(plan, worker_count)]
        results = run_tasks(_execute_campaign_chunk, payloads,
                            workers=worker_count, chunksize=1)
        points: List[SamplePoint] = []
        for chunk_points in results:
            points.extend(chunk_points)
        return SamplingDataset(points, self.events)

    def _one_run(self, frequency_hz: int, workload: Workload,
                 run_index: int) -> List[SamplePoint]:
        """One workload pinned at one frequency; one point per window."""
        kernel = SimKernel(
            self.spec,
            governor_factory=lambda spec, topo, domain: UserspaceGovernor(
                spec, topo, domain, frequency_hz),
            quantum_s=self.quantum_s,
        )
        meter = PowerSpy(kernel.machine, sample_rate_hz=1.0 / self.window_s,
                         seed=self.meter_seed + run_index)
        perf = PerfSession(kernel.machine)
        counters = perf.open_group(self.events)
        kernel.spawn(workload, name=workload.name)

        points: List[SamplePoint] = []
        with meter:
            if self.settle_s > 0:
                kernel.run(self.settle_s)
            meter.clear()
            previous = {counter.event: counter.read().scaled
                        for counter in counters}
            for _window in range(self.windows_per_run):
                kernel.run(self.window_s)
                sample = meter.last_sample()
                if sample is None:
                    continue
                current = {counter.event: counter.read().scaled
                           for counter in counters}
                rates = {event: (current[event] - previous[event]) / self.window_s
                         for event in previous}
                previous = current
                points.append(SamplePoint(
                    frequency_hz=frequency_hz,
                    workload=workload.name,
                    rates=rates,
                    power_w=sample.power_w,
                ))
        perf.close()
        return points


def _execute_campaign_run(task: Tuple["SamplingCampaign", int, Workload, int]
                          ) -> List[SamplePoint]:
    """Worker entry point: one (frequency, workload) run of a campaign.

    Module-level so it pickles cleanly into pool workers; the campaign
    itself travels with the task (it is a small value object).
    """
    campaign, frequency_hz, workload, run_index = task
    return campaign._one_run(frequency_hz, workload, run_index)


def _execute_campaign_chunk(
        payload: Tuple["SamplingCampaign",
                       List[Tuple[int, Workload, int]]]) -> List[SamplePoint]:
    """Worker entry point: one worker's contiguous chunk of the run plan.

    Deserialising the campaign once and looping the chunk's runs inside
    the worker keeps the per-run dispatch path free of setup cost; each
    run still seeds from its own grid index, so chunk boundaries cannot
    change any result.
    """
    campaign, runs = payload
    points: List[SamplePoint] = []
    for frequency_hz, workload, run_index in runs:
        points.extend(campaign._one_run(frequency_hz, workload, run_index))
    return points


@dataclass(frozen=True)
class LearningReport:
    """Everything produced by :func:`learn_power_model`."""

    model: PowerModel
    dataset: SamplingDataset
    idle_w: float
    #: Per-frequency regression diagnostics.
    regressions: Dict[int, RegressionResult] = field(default_factory=dict)


def learn_power_model(spec: CpuSpec,
                      events: Sequence[str] = GENERIC_TRIO,
                      method: str = "nnls",
                      campaign: Optional[SamplingCampaign] = None,
                      idle_duration_s: float = 20.0,
                      name: str = "powerapi-learned",
                      workers: int = 1) -> LearningReport:
    """The full Figure 1 pipeline: sample, calibrate idle, regress.

    One regression per frequency over (counter rates -> power - idle);
    the default NNLS backend keeps coefficients physically non-negative,
    matching the published formula's shape.  ``workers`` parallelises
    the sampling campaign (see :meth:`SamplingCampaign.run`) without
    changing the dataset or the learned coefficients.
    """
    if campaign is None:
        campaign = SamplingCampaign(spec, events=events)
    dataset = campaign.run(workers=workers)
    idle_w = calibrate_idle_power(spec, duration_s=idle_duration_s)

    formulas: List[FrequencyFormula] = []
    regressions: Dict[int, RegressionResult] = {}
    for frequency_hz in dataset.frequencies_hz:
        features, targets = dataset.feature_matrix(frequency_hz)
        if len(features) < len(events) + 1:
            raise InsufficientDataError(
                f"only {len(features)} samples at {frequency_hz} Hz")
        active = [max(0.0, power - idle_w) for power in targets]
        result = fit(features, active, list(events), method=method,
                     fit_intercept=False)
        regressions[frequency_hz] = result
        formulas.append(FrequencyFormula(
            frequency_hz=frequency_hz,
            coefficients=dict(result.coefficients),
        ))
    model = PowerModel(idle_w=idle_w, formulas=formulas, name=name)
    return LearningReport(model=model, dataset=dataset, idle_w=idle_w,
                          regressions=regressions)

"""Cross-validation of learned power models.

The training R² the regression reports flatters the model: with a
handful of stress workloads, a formula can fit the grid and still
generalise poorly.  Leave-one-workload-out cross-validation answers the
right question — *how well does the model predict workloads it never
sampled?* — using only the campaign's own dataset, no extra simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.metrics import mean_ape, median_ape
from repro.core.regression import fit
from repro.core.sampling import SamplingDataset
from repro.errors import ConfigurationError, InsufficientDataError


@dataclass(frozen=True)
class FoldResult:
    """One held-out workload's out-of-sample errors."""

    workload: str
    samples: int
    median_ape: float
    mean_ape: float


@dataclass(frozen=True)
class CrossValidationReport:
    """All folds plus the pooled out-of-sample error."""

    folds: Tuple[FoldResult, ...]
    pooled_median_ape: float
    pooled_mean_ape: float
    method: str
    events: Tuple[str, ...]

    def worst_fold(self) -> FoldResult:
        """The workload the model generalises to worst."""
        return max(self.folds, key=lambda fold: fold.median_ape)


def cross_validate(dataset: SamplingDataset, idle_w: float,
                   frequency_hz: int,
                   events: Sequence[str] = None,
                   method: str = "nnls") -> CrossValidationReport:
    """Leave-one-workload-out validation at one frequency.

    For each workload in the dataset: fit on every *other* workload's
    samples, predict the held-out one, score against its measured power.
    Folding by workload (not by sample) is what makes the estimate
    honest — random sample folds would leak near-identical neighbours
    into training.
    """
    if idle_w < 0:
        raise ConfigurationError("idle_w must be >= 0")
    points = dataset.at_frequency(frequency_hz)
    if not points:
        raise ConfigurationError(f"no samples at {frequency_hz} Hz")
    if events is None:
        events = dataset.events
    workloads = sorted({point.workload for point in points})
    if len(workloads) < 2:
        raise InsufficientDataError(
            "need at least two distinct workloads to cross-validate")

    folds: List[FoldResult] = []
    all_measured: List[float] = []
    all_estimated: List[float] = []
    for held_out in workloads:
        train = [p for p in points if p.workload != held_out]
        test = [p for p in points if p.workload == held_out]
        if len(train) < len(events) + 1:
            raise InsufficientDataError(
                f"fold {held_out!r}: only {len(train)} training samples")
        targets = [max(0.0, p.power_w - idle_w) for p in train]
        result = fit([p.rates for p in train], targets, list(events),
                     method=method, fit_intercept=False)
        measured = [p.power_w for p in test]
        estimated = [idle_w + max(0.0, result.predict(p.rates))
                     for p in test]
        folds.append(FoldResult(
            workload=held_out,
            samples=len(test),
            median_ape=median_ape(measured, estimated),
            mean_ape=mean_ape(measured, estimated),
        ))
        all_measured.extend(measured)
        all_estimated.extend(estimated)

    return CrossValidationReport(
        folds=tuple(folds),
        pooled_median_ape=median_ape(all_measured, all_estimated),
        pooled_mean_ape=mean_ape(all_measured, all_estimated),
        method=method,
        events=tuple(events),
    )

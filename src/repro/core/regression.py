"""Multivariate regression backends for power-model learning.

The paper correlates counter values with power measurements "using a
multivariate regression" (Section 3, Figure 1 step 4).  Three standard
backends are provided:

* ordinary least squares (the default in the literature it cites),
* ridge (L2) regression, for when sampling produces collinear counters,
* non-negative least squares, which guarantees physically meaningful
  (power-additive) coefficients — the published i3-2120 formula has only
  positive terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np
from scipy import optimize

from repro.errors import ConfigurationError, InsufficientDataError


@dataclass(frozen=True)
class RegressionResult:
    """A fitted linear model ``power = intercept + coefficients . x``."""

    #: Feature name -> watts per (event/second).
    coefficients: Dict[str, float]
    intercept: float
    #: Coefficient of determination on the training data.
    r2: float
    #: Number of training samples.
    samples: int
    method: str

    def predict(self, features: Dict[str, float]) -> float:
        """Evaluate the model on one feature vector (missing features = 0)."""
        return self.intercept + sum(
            weight * features.get(name, 0.0)
            for name, weight in self.coefficients.items())


def _design_matrix(samples: Sequence[Dict[str, float]],
                   features: Sequence[str]) -> np.ndarray:
    matrix = np.zeros((len(samples), len(features)))
    for row, sample in enumerate(samples):
        for column, name in enumerate(features):
            matrix[row, column] = sample.get(name, 0.0)
    return matrix


def _training_r2(targets: np.ndarray, predictions: np.ndarray) -> float:
    ss_res = float(np.sum((targets - predictions) ** 2))
    ss_tot = float(np.sum((targets - targets.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res < 1e-12 else 0.0
    return 1.0 - ss_res / ss_tot


def _check_inputs(samples: Sequence[Dict[str, float]],
                  targets: Sequence[float],
                  features: Sequence[str]) -> np.ndarray:
    if len(samples) != len(targets):
        raise ConfigurationError("samples and targets length mismatch")
    if not features:
        raise ConfigurationError("at least one feature required")
    if len(samples) < len(features) + 1:
        raise InsufficientDataError(
            f"{len(samples)} samples cannot fit {len(features)} features")
    return np.asarray(targets, dtype=float)


def fit_ols(samples: Sequence[Dict[str, float]], targets: Sequence[float],
            features: Sequence[str], fit_intercept: bool = True
            ) -> RegressionResult:
    """Ordinary least squares."""
    y = _check_inputs(samples, targets, features)
    x = _design_matrix(samples, features)
    if fit_intercept:
        x = np.hstack([np.ones((x.shape[0], 1)), x])
    solution, *_ = np.linalg.lstsq(x, y, rcond=None)
    if fit_intercept:
        intercept, weights = float(solution[0]), solution[1:]
    else:
        intercept, weights = 0.0, solution
    predictions = x @ solution
    return RegressionResult(
        coefficients=dict(zip(features, map(float, weights))),
        intercept=intercept,
        r2=_training_r2(y, predictions),
        samples=len(samples),
        method="ols",
    )


def fit_ridge(samples: Sequence[Dict[str, float]], targets: Sequence[float],
              features: Sequence[str], alpha: float = 1.0,
              fit_intercept: bool = True) -> RegressionResult:
    """Ridge regression (intercept is never penalised)."""
    if alpha < 0:
        raise ConfigurationError("alpha must be >= 0")
    y = _check_inputs(samples, targets, features)
    x = _design_matrix(samples, features)
    if fit_intercept:
        x = np.hstack([np.ones((x.shape[0], 1)), x])
    penalty = alpha * np.eye(x.shape[1])
    if fit_intercept:
        penalty[0, 0] = 0.0
    solution = np.linalg.solve(x.T @ x + penalty, x.T @ y)
    if fit_intercept:
        intercept, weights = float(solution[0]), solution[1:]
    else:
        intercept, weights = 0.0, solution
    predictions = x @ solution
    return RegressionResult(
        coefficients=dict(zip(features, map(float, weights))),
        intercept=intercept,
        r2=_training_r2(y, predictions),
        samples=len(samples),
        method="ridge",
    )


def fit_nnls(samples: Sequence[Dict[str, float]], targets: Sequence[float],
             features: Sequence[str], fit_intercept: bool = True
             ) -> RegressionResult:
    """Non-negative least squares: all coefficients (and intercept) >= 0."""
    y = _check_inputs(samples, targets, features)
    x = _design_matrix(samples, features)
    if fit_intercept:
        x = np.hstack([np.ones((x.shape[0], 1)), x])
    solution, _residual = optimize.nnls(x, y)
    if fit_intercept:
        intercept, weights = float(solution[0]), solution[1:]
    else:
        intercept, weights = 0.0, solution
    predictions = x @ solution
    return RegressionResult(
        coefficients=dict(zip(features, map(float, weights))),
        intercept=intercept,
        r2=_training_r2(y, predictions),
        samples=len(samples),
        method="nnls",
    )


#: Backend registry, keyed by method name.
METHODS = {
    "ols": fit_ols,
    "ridge": fit_ridge,
    "nnls": fit_nnls,
}


def fit(samples: Sequence[Dict[str, float]], targets: Sequence[float],
        features: Sequence[str], method: str = "nnls",
        **kwargs) -> RegressionResult:
    """Fit with a named backend."""
    try:
        backend = METHODS[method]
    except KeyError:
        raise ConfigurationError(
            f"unknown regression method {method!r}; "
            f"available: {sorted(METHODS)}") from None
    return backend(samples, targets, features, **kwargs)

"""Messages exchanged on the PowerAPI event bus (Figure 2).

The pipeline is: Sensors publish :class:`SensorReport` subclasses →
Formulas publish :class:`PowerReport` → Aggregators publish
:class:`AggregatedPowerReport` → Reporters render.  Messages are frozen
dataclasses: actors never share mutable state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SensorReport:
    """Base class of everything a Sensor publishes."""

    #: End of the monitoring period this report covers, seconds.
    time_s: float
    #: Length of the covered period, seconds.
    period_s: float
    #: Monitored process, or -1 for machine-wide reports.
    pid: int

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ConfigurationError("report period must be positive")


@dataclass(frozen=True)
class HpcReport(SensorReport):
    """Hardware-counter deltas for one process over one period."""

    #: Event name -> counts during the period (not cumulative).
    counters: Mapping[str, float] = field(default_factory=dict)
    #: Dominant core frequency during the period, hertz.
    frequency_hz: int = 0

    def rates(self) -> Dict[str, float]:
        """Counter deltas converted to events per second."""
        return {event: count / self.period_s
                for event, count in self.counters.items()}


@dataclass(frozen=True)
class ProcFsReport(SensorReport):
    """CPU-time accounting for one process over one period."""

    #: CPU seconds consumed by the pid during the period.
    cpu_time_delta_s: float = 0.0
    #: Machine-wide load in [0, 1] during the period.
    machine_load: float = 0.0


@dataclass(frozen=True)
class PowerMeterReport(SensorReport):
    """A physical power-meter reading (machine-wide; pid is -1)."""

    power_w: float = 0.0


@dataclass(frozen=True)
class GapMarker(SensorReport):
    """A period for which a sensor had no valid data.

    Sensors publish a marker instead of silently skipping the period, so
    downstream series show explicit holes and health tooling can count
    them.  ``source`` names the failing acquisition path ("hpc",
    "meter", ...).
    """

    source: str = ""

    def to_wire(self) -> Dict[str, object]:
        """JSON-safe dict for the telemetry wire protocol."""
        return {"time_s": self.time_s, "period_s": self.period_s,
                "pid": self.pid, "source": self.source}

    @classmethod
    def from_wire(cls, payload: Mapping[str, object]) -> "GapMarker":
        """Rebuild a marker from :meth:`to_wire` output."""
        return cls(time_s=float(payload["time_s"]),
                   period_s=float(payload["period_s"]),
                   pid=int(payload.get("pid", -1)),
                   source=str(payload.get("source", "")))


@dataclass(frozen=True)
class FlushAggregates:
    """Ask every flushable stage to publish/persist its pending state.

    Historically defined in :mod:`repro.core.aggregators`; it lives with
    the other bus messages so the shared stage lifecycle
    (:mod:`repro.core.stage`) can route it without import cycles.
    """


@dataclass(frozen=True)
class HealthEvent:
    """A pipeline health transition (degradation, recovery, fault, ...).

    Published on the event bus by sensors, the supervision layer and the
    fault injector; collected per pipeline on
    :class:`~repro.faults.health.HealthLog` (``MonitorHandle.health``).
    """

    time_s: float
    #: Component that observed the transition ("hpc-sensor", "meter", ...).
    component: str
    #: Machine-readable transition kind ("degraded", "recovered",
    #: "meter-dropout", "actor-restarted", ...).
    kind: str
    detail: str = ""

    def to_wire(self) -> Dict[str, object]:
        """JSON-safe dict for the telemetry wire protocol."""
        return {"time_s": self.time_s, "component": self.component,
                "kind": self.kind, "detail": self.detail}

    @classmethod
    def from_wire(cls, payload: Mapping[str, object]) -> "HealthEvent":
        """Rebuild an event from :meth:`to_wire` output."""
        return cls(time_s=float(payload["time_s"]),
                   component=str(payload["component"]),
                   kind=str(payload["kind"]),
                   detail=str(payload.get("detail", "")))


@dataclass(frozen=True)
class PowerReport:
    """A Formula's power estimation for one process and period."""

    time_s: float
    period_s: float
    pid: int
    #: Estimated *active* power attributable to the pid, watts.
    power_w: float
    #: Name of the formula that produced the estimate.
    formula: str

    def __post_init__(self) -> None:
        if self.power_w < 0:
            raise ConfigurationError("estimated power cannot be negative")


@dataclass(frozen=True)
class AggregatedPowerReport:
    """Aggregator output: per-pid and total power for one timestamp."""

    time_s: float
    period_s: float
    #: pid -> active watts.
    by_pid: Mapping[int, float]
    #: Idle power added to the total, watts.
    idle_w: float
    formula: str
    #: True when no formula produced data for this period (sensors only
    #: published :class:`GapMarker` messages); ``by_pid`` is then empty.
    gap: bool = False

    @property
    def active_w(self) -> float:
        """Sum of per-process active power."""
        return sum(self.by_pid.values())

    @property
    def total_w(self) -> float:
        """Machine estimate: idle + per-process active power."""
        return self.idle_w + self.active_w

    def pids(self) -> Tuple[int, ...]:
        """Monitored pids present in this report, ascending."""
        return tuple(sorted(self.by_pid))

    def to_wire(self) -> Dict[str, object]:
        """JSON-safe dict for the telemetry wire protocol.

        ``by_pid`` keys become strings (JSON objects cannot have integer
        keys); :meth:`from_wire` restores them.
        """
        return {
            "time_s": self.time_s,
            "period_s": self.period_s,
            "by_pid": {str(pid): watts for pid, watts in self.by_pid.items()},
            "idle_w": self.idle_w,
            "formula": self.formula,
            "gap": self.gap,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, object]
                  ) -> "AggregatedPowerReport":
        """Rebuild a report from :meth:`to_wire` output."""
        return cls(
            time_s=float(payload["time_s"]),
            period_s=float(payload["period_s"]),
            by_pid={int(pid): float(watts)
                    for pid, watts in dict(payload["by_pid"]).items()},
            idle_w=float(payload["idle_w"]),
            formula=str(payload["formula"]),
            gap=bool(payload.get("gap", False)),
        )

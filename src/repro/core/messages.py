"""Messages exchanged on the PowerAPI event bus (Figure 2).

The pipeline is: Sensors publish :class:`SensorReport` subclasses →
Formulas publish :class:`PowerReport` → Aggregators publish
:class:`AggregatedPowerReport` → Reporters render.  Messages are frozen
dataclasses: actors never share mutable state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SensorReport:
    """Base class of everything a Sensor publishes."""

    #: End of the monitoring period this report covers, seconds.
    time_s: float
    #: Length of the covered period, seconds.
    period_s: float
    #: Monitored process, or -1 for machine-wide reports.
    pid: int

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ConfigurationError("report period must be positive")


@dataclass(frozen=True)
class HpcReport(SensorReport):
    """Hardware-counter deltas for one process over one period."""

    #: Event name -> counts during the period (not cumulative).
    counters: Mapping[str, float] = field(default_factory=dict)
    #: Dominant core frequency during the period, hertz.
    frequency_hz: int = 0

    def rates(self) -> Dict[str, float]:
        """Counter deltas converted to events per second."""
        return {event: count / self.period_s
                for event, count in self.counters.items()}


@dataclass(frozen=True)
class ProcFsReport(SensorReport):
    """CPU-time accounting for one process over one period."""

    #: CPU seconds consumed by the pid during the period.
    cpu_time_delta_s: float = 0.0
    #: Machine-wide load in [0, 1] during the period.
    machine_load: float = 0.0


@dataclass(frozen=True)
class PowerMeterReport(SensorReport):
    """A physical power-meter reading (machine-wide; pid is -1)."""

    power_w: float = 0.0


@dataclass(frozen=True)
class GapMarker(SensorReport):
    """A period for which a sensor had no valid data.

    Sensors publish a marker instead of silently skipping the period, so
    downstream series show explicit holes and health tooling can count
    them.  ``source`` names the failing acquisition path ("hpc",
    "meter", ...).
    """

    source: str = ""

    def to_wire(self) -> Dict[str, object]:
        """JSON-safe dict for the telemetry wire protocol."""
        return {"time_s": self.time_s, "period_s": self.period_s,
                "pid": self.pid, "source": self.source}

    @classmethod
    def from_wire(cls, payload: Mapping[str, object]) -> "GapMarker":
        """Rebuild a marker from :meth:`to_wire` output."""
        return cls(time_s=float(payload["time_s"]),
                   period_s=float(payload["period_s"]),
                   pid=int(payload.get("pid", -1)),
                   source=str(payload.get("source", "")))


@dataclass(frozen=True)
class FlushAggregates:
    """Ask every flushable stage to publish/persist its pending state.

    Historically defined in :mod:`repro.core.aggregators`; it lives with
    the other bus messages so the shared stage lifecycle
    (:mod:`repro.core.stage`) can route it without import cycles.
    """


@dataclass(frozen=True)
class HealthEvent:
    """A pipeline health transition (degradation, recovery, fault, ...).

    Published on the event bus by sensors, the supervision layer and the
    fault injector; collected per pipeline on
    :class:`~repro.faults.health.HealthLog` (``MonitorHandle.health``).
    """

    time_s: float
    #: Component that observed the transition ("hpc-sensor", "meter", ...).
    component: str
    #: Machine-readable transition kind ("degraded", "recovered",
    #: "meter-dropout", "actor-restarted", ...).
    kind: str
    detail: str = ""

    def to_wire(self) -> Dict[str, object]:
        """JSON-safe dict for the telemetry wire protocol."""
        return {"time_s": self.time_s, "component": self.component,
                "kind": self.kind, "detail": self.detail}

    @classmethod
    def from_wire(cls, payload: Mapping[str, object]) -> "HealthEvent":
        """Rebuild an event from :meth:`to_wire` output."""
        return cls(time_s=float(payload["time_s"]),
                   component=str(payload["component"]),
                   kind=str(payload["kind"]),
                   detail=str(payload.get("detail", "")))


@dataclass(frozen=True)
class SetCap:
    """Runtime request to change (or remove) a pipeline's power cap.

    Published on the event bus (``MonitorHandle.set_cap``); the
    :class:`~repro.control.actor.PowerCapActor` picks it up on the next
    dispatch.  ``cap_w=None`` removes the cap: actuation unwinds (nice
    restored, frequency ceiling released) over the following periods.
    """

    cap_w: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cap_w is not None and self.cap_w <= 0:
            raise ConfigurationError("cap must be positive watts (or None)")


@dataclass(frozen=True)
class CapEvent:
    """One control-loop actuation (or explicit non-action) under a cap.

    Published on the event bus by the power-cap actor whenever it acts:
    frequency steps, process throttles, cap changes, and the explicit
    ``unattainable`` verdict when the cap lies below the reachable
    floor.  Reporters surface the latest control state; a
    :class:`HealthEvent` mirror (kind ``cap-<action>``) carries the same
    transition onto the health log and over telemetry.
    """

    time_s: float
    #: "step-down", "step-up", "throttle", "unthrottle", "cap-set",
    #: "cap-removed" or "unattainable".
    action: str
    #: Cap in effect, watts (None after removal).
    cap_w: Optional[float]
    #: The estimate that triggered the decision, watts.
    estimate_w: float
    #: DVFS ceiling after the action, hertz.
    frequency_hz: int
    #: Ladder index of the ceiling (0 = lowest P-state).
    level: int
    #: Process acted on (throttle/unthrottle), else -1.
    pid: int = -1
    detail: str = ""

    def to_wire(self) -> Dict[str, object]:
        """JSON-safe dict (mirrors the shape of the other bus messages)."""
        return {"time_s": self.time_s, "action": self.action,
                "cap_w": self.cap_w, "estimate_w": self.estimate_w,
                "frequency_hz": self.frequency_hz, "level": self.level,
                "pid": self.pid, "detail": self.detail}

    @classmethod
    def from_wire(cls, payload: Mapping[str, object]) -> "CapEvent":
        cap = payload.get("cap_w")
        return cls(time_s=float(payload["time_s"]),
                   action=str(payload["action"]),
                   cap_w=None if cap is None else float(cap),
                   estimate_w=float(payload["estimate_w"]),
                   frequency_hz=int(payload["frequency_hz"]),
                   level=int(payload["level"]),
                   pid=int(payload.get("pid", -1)),
                   detail=str(payload.get("detail", "")))


@dataclass(frozen=True)
class PowerReport:
    """A Formula's power estimation for one process and period."""

    time_s: float
    period_s: float
    pid: int
    #: Estimated *active* power attributable to the pid, watts.
    power_w: float
    #: Name of the formula that produced the estimate.
    formula: str

    def __post_init__(self) -> None:
        if self.power_w < 0:
            raise ConfigurationError("estimated power cannot be negative")


@dataclass(frozen=True)
class AggregatedPowerReport:
    """Aggregator output: per-pid and total power for one timestamp."""

    time_s: float
    period_s: float
    #: pid -> active watts.
    by_pid: Mapping[int, float]
    #: Idle power added to the total, watts.
    idle_w: float
    formula: str
    #: True when no formula produced data for this period (sensors only
    #: published :class:`GapMarker` messages); ``by_pid`` is then empty.
    gap: bool = False

    @property
    def active_w(self) -> float:
        """Sum of per-process active power."""
        return sum(self.by_pid.values())

    @property
    def total_w(self) -> float:
        """Machine estimate: idle + per-process active power."""
        return self.idle_w + self.active_w

    def pids(self) -> Tuple[int, ...]:
        """Monitored pids present in this report, ascending."""
        return tuple(sorted(self.by_pid))

    def to_wire(self) -> Dict[str, object]:
        """JSON-safe dict for the telemetry wire protocol.

        ``by_pid`` keys become strings (JSON objects cannot have integer
        keys); :meth:`from_wire` restores them.
        """
        return {
            "time_s": self.time_s,
            "period_s": self.period_s,
            "by_pid": {str(pid): watts for pid, watts in self.by_pid.items()},
            "idle_w": self.idle_w,
            "formula": self.formula,
            "gap": self.gap,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, object]
                  ) -> "AggregatedPowerReport":
        """Rebuild a report from :meth:`to_wire` output."""
        return cls(
            time_s=float(payload["time_s"]),
            period_s=float(payload["period_s"]),
            by_pid={int(pid): float(watts)
                    for pid, watts in dict(payload["by_pid"]).items()},
            idle_w=float(payload["idle_w"]),
            formula=str(payload["formula"]),
            gap=bool(payload.get("gap", False)),
        )

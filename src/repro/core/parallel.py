"""Process-pool execution of independent simulation runs.

The Figure 1 sampling grid is embarrassingly parallel: every
(frequency, workload) run builds its own kernel, machine and meter from
scratch, seeded deterministically from the run's grid index.  This
module provides the small executor the campaign (and any future grid
sweep) fans out over: an order-preserving :func:`run_tasks` backed by a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Determinism contract: results are returned in task-submission order and
each task must depend only on its own inputs, so the assembled output is
byte-identical for any worker count.  When only one worker is requested,
the task list is trivial, or the pool cannot be used (missing
``multiprocessing`` support, sandboxed platform, unpicklable inputs),
execution gracefully degrades to the plain serial loop.
"""

from __future__ import annotations

import os
import pickle
from typing import Callable, Iterable, List, Optional, TypeVar

from repro.errors import ConfigurationError

try:  # pragma: no cover - exercised only where multiprocessing is absent
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool
    _POOL_AVAILABLE = True
except ImportError:  # pragma: no cover
    ProcessPoolExecutor = None  # type: ignore[assignment]
    BrokenProcessPool = None  # type: ignore[assignment]
    _POOL_AVAILABLE = False

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

#: Pool-infrastructure failures that trigger the serial fallback.  Task
#: code raising a genuine simulation error is *not* in this set — those
#: propagate unchanged, exactly as they would serially.
_FALLBACK_ERRORS = tuple(
    error for error in (BrokenProcessPool, pickle.PicklingError, OSError,
                        ImportError)
    if error is not None)


def default_worker_count() -> int:
    """A sensible worker count for this host (its CPU count)."""
    return os.cpu_count() or 1


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` knob: ``None``/``0`` mean "use every CPU"."""
    if workers is None or workers == 0:
        return default_worker_count()
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    return workers


def pool_available() -> bool:
    """Whether a process pool can be created on this platform."""
    return _POOL_AVAILABLE


def chunk_tasks(tasks: Iterable[TaskT], chunks: int) -> List[List[TaskT]]:
    """Split *tasks* into at most *chunks* contiguous, near-equal chunks.

    Concatenating the chunks reproduces the input order, so a caller can
    dispatch one chunk per worker and reassemble results
    deterministically.  Empty chunks are never produced.
    """
    task_list = list(tasks)
    if chunks < 1:
        raise ConfigurationError(f"chunks must be >= 1, got {chunks}")
    count = min(chunks, len(task_list))
    if count <= 1:
        return [task_list] if task_list else []
    size, extra = divmod(len(task_list), count)
    out: List[List[TaskT]] = []
    start = 0
    for index in range(count):
        end = start + size + (1 if index < extra else 0)
        out.append(task_list[start:end])
        start = end
    return out


def run_tasks(fn: Callable[[TaskT], ResultT],
              tasks: Iterable[TaskT],
              workers: Optional[int] = 1,
              chunksize: Optional[int] = None) -> List[ResultT]:
    """Apply *fn* to every task, preserving task order in the result list.

    ``workers`` follows :func:`resolve_workers` (``None``/``0`` = all
    CPUs, ``1`` = serial).  *fn* must be a module-level callable and both
    tasks and results must be picklable when ``workers > 1``; if the pool
    cannot be created or breaks for infrastructure reasons the whole list
    is (re)computed serially, so callers never observe a partial result.
    """
    task_list = list(tasks)
    worker_count = min(resolve_workers(workers), len(task_list))
    if worker_count <= 1 or not _POOL_AVAILABLE:
        return [fn(task) for task in task_list]
    try:
        # Pre-flight: unpicklable callables/tasks (lambdas, closures, live
        # handles) cannot cross the process boundary; pickling failures
        # surface as assorted exception types, so probe before the pool.
        pickle.dumps(fn)
        pickle.dumps(task_list[0])
    except Exception:
        return [fn(task) for task in task_list]
    if chunksize is None:
        # Around four chunks per worker balances load against IPC cost.
        chunksize = max(1, len(task_list) // (worker_count * 4))
    try:
        with ProcessPoolExecutor(max_workers=worker_count) as pool:
            return list(pool.map(fn, task_list, chunksize=chunksize))
    except _FALLBACK_ERRORS:
        return [fn(task) for task in task_list]

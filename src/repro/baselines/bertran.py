"""The decomposable per-component model (Bertran et al., ICS'10).

Bertran et al. decompose CPU power into per-component contributions
(front-end, integer/FP units, each cache level, memory), each driven by
its own activity counter, and train with targeted microbenchmarks run to
steady state.  On a "simple architecture without any features for
improving performances" (Core 2 Duo: no SMT, no TurboBoost) they report a
4.63 % average error — the accuracy bar the paper compares itself against.

This reproduction keeps the two methodological differences that explain
that accuracy:

* a *wide* event set covering every modelled component (not just the
  portable trio),
* *steady-state* training runs (long settle), so slow effects such as
  thermal leakage are inside the training distribution.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.sampling import (LearningReport, SamplingCampaign,
                                 learn_power_model)
from repro.simcpu import counters as ev
from repro.simcpu.spec import CpuSpec

#: Per-component activity events of the decomposable model.
BERTRAN_EVENTS = (
    ev.INSTRUCTIONS,            # retirement (front-end + issue)
    ev.CYCLES,                  # clock tree / base activity
    ev.BRANCHES,                # branch unit
    ev.L1_DCACHE_LOADS,         # L1 component
    ev.L1_DCACHE_LOAD_MISSES,   # L2 component
    ev.CACHE_REFERENCES,        # LLC component
    ev.CACHE_MISSES,            # memory component
    ev.STALLED_CYCLES_BACKEND,  # stall power (clock gating remainder)
)

#: Settle long enough to reach thermal steady state before sampling
#: (about twice the package thermal time constant).
STEADY_STATE_SETTLE_S = 90.0


def bertran_campaign(spec: CpuSpec,
                     frequencies_hz: Optional[Sequence[int]] = None,
                     windows_per_run: int = 4,
                     window_s: float = 1.0,
                     quantum_s: float = 0.05) -> SamplingCampaign:
    """A steady-state sampling campaign with the per-component event set."""
    return SamplingCampaign(
        spec,
        events=BERTRAN_EVENTS,
        frequencies_hz=frequencies_hz,
        window_s=window_s,
        windows_per_run=windows_per_run,
        settle_s=STEADY_STATE_SETTLE_S,
        quantum_s=quantum_s,
    )


def learn_bertran_model(spec: CpuSpec,
                        campaign: Optional[SamplingCampaign] = None,
                        idle_duration_s: float = 20.0) -> LearningReport:
    """Fit the decomposable model (NNLS keeps components additive)."""
    if campaign is None:
        campaign = bertran_campaign(spec)
    return learn_power_model(
        spec,
        events=BERTRAN_EVENTS,
        method="nnls",
        campaign=campaign,
        idle_duration_s=idle_duration_s,
        name="bertran-decomposable",
    )

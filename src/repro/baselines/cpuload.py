"""The CPU-load baseline (Versick et al.).

Versick et al. "use the CPU load to represent the processor activity";
the paper argues HPCs are better because load "mostly indicates whether
the processor executes a job" while counters see *what* it executes.

In counter terms the CPU load is exactly the busy-cycle rate divided by
the available cycle capacity, so the baseline is a
:class:`~repro.core.model.PowerModel` learned on the single ``cycles``
event — it plugs into the same learning and runtime pipeline, making the
metric comparison (ablation A3) apples-to-apples.
"""

from __future__ import annotations

from typing import Optional

from repro.core.sampling import (LearningReport, SamplingCampaign,
                                 learn_power_model)
from repro.simcpu.counters import CYCLES
from repro.simcpu.spec import CpuSpec

#: The only event a load-based model consumes.
CPU_LOAD_EVENTS = (CYCLES,)


def learn_cpu_load_model(spec: CpuSpec,
                         campaign: Optional[SamplingCampaign] = None,
                         idle_duration_s: float = 20.0) -> LearningReport:
    """Fit the Versick-style load model with the standard pipeline.

    A default campaign is built with the load event substituted; an
    explicit campaign must collect ``cycles``.
    """
    if campaign is None:
        campaign = SamplingCampaign(spec, events=CPU_LOAD_EVENTS)
    return learn_power_model(
        spec,
        events=CPU_LOAD_EVENTS,
        campaign=campaign,
        idle_duration_s=idle_duration_s,
        name="cpu-load-versick",
    )

"""The hyperthread-aware model (HAPPY — Zhai et al., USENIX ATC'14).

Zhai et al. observe that two hyperthreads sharing a physical core draw
far less than two threads on separate cores, and add hyperthread
awareness to the power model, reporting a 7.5 % average error where
SMT-oblivious models do worse.  The paper notes their model "cannot be
reproduced" (private Google benchmarks) — here the mechanism is rebuilt
from its published idea:

* per-logical-CPU cycle counters yield, per core, the cycles during which
  *both* siblings were busy (the :data:`SMT_OVERLAP` feature),
* the regression learns a *negative* weight for overlap cycles (OLS, not
  NNLS — the correction term must be allowed below zero), quantifying the
  power saved by co-location that aggregate counters cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.evaluation import SMT_OVERLAP, EvalWindow, run_windows
from repro.core.calibration import calibrate_idle_power
from repro.core.model import FrequencyFormula, PowerModel
from repro.core.regression import RegressionResult, fit
from repro.errors import ConfigurationError, InsufficientDataError
from repro.simcpu.counters import CYCLES, GENERIC_TRIO
from repro.simcpu.spec import CpuSpec
from repro.workloads.base import Workload
from repro.workloads.stress import CpuStress, MemoryStress

#: Events the hyperthread-aware model regresses on (plus SMT overlap).
HAPPY_BASE_EVENTS = GENERIC_TRIO + (CYCLES,)


@dataclass(frozen=True)
class HappyLearningReport:
    """Result of :func:`learn_happy_model`."""

    model: PowerModel
    windows: List[EvalWindow]
    idle_w: float
    regressions: Dict[int, RegressionResult]


def _training_placements(num_threads: int
                         ) -> List[Tuple[List[Workload], bool]]:
    """(workload set, pin-to-cores flag) pairs spanning the co-location space.

    All workloads are single-threaded so the pinning flag fully controls
    placement: pinned sets fill each core's hyperthreads pairwise (SMT
    overlap), unpinned sets spread across physical cores (no overlap).
    The grid covers one core up to the whole package in both modes, so
    the regression can separate the overlap term from plain utilisation
    without extrapolating.
    """
    def cpus(count: int, utilization: float = 1.0) -> List[Workload]:
        return [CpuStress(utilization=utilization) for _ in range(count)]

    def mems(count: int) -> List[Workload]:
        return [MemoryStress(utilization=1.0,
                             working_set_bytes=32 * 1024 ** 2)
                for _ in range(count)]

    half = max(2, num_threads // 2)
    placements: List[Tuple[List[Workload], bool]] = [
        (cpus(1), True),                      # one thread, one core
        (cpus(2), True),                      # one core, both hyperthreads
        (cpus(2), False),                     # two cores, spread
        (cpus(half), False),                  # all cores, spread
        (cpus(num_threads), True),            # whole package, co-located
        (cpus(num_threads, 0.5), True),       # co-located at half load
        (mems(1), True),
        (mems(half), False),
        (mems(num_threads), True),            # memory-bound, co-located
        (cpus(1) + mems(1), True),            # asymmetric sharing one core
    ]
    return placements


def learn_happy_model(spec: CpuSpec,
                      frequencies_hz: Optional[Sequence[int]] = None,
                      duration_per_run_s: float = 8.0,
                      settle_s: float = 90.0,
                      window_s: float = 1.0,
                      quantum_s: float = 0.05,
                      idle_duration_s: float = 20.0) -> HappyLearningReport:
    """Fit the hyperthread-aware model over the co-location grid.

    Uses steady-state settling like the other strong baseline so the
    comparison isolates the SMT term, not the sampling methodology.
    """
    if not spec.smt_enabled:
        raise ConfigurationError(
            "the hyperthread-aware model needs an SMT-capable spec")
    if frequencies_hz is None:
        frequencies_hz = spec.frequencies_hz
    features = list(HAPPY_BASE_EVENTS) + [SMT_OVERLAP]

    all_windows: List[EvalWindow] = []
    run_index = 0
    for frequency_hz in frequencies_hz:
        for placement, pinned in _training_placements(spec.num_threads):
            run_index += 1
            all_windows.extend(run_windows(
                spec, placement,
                frequency_hz=frequency_hz,
                events=HAPPY_BASE_EVENTS,
                duration_s=duration_per_run_s,
                window_s=window_s,
                settle_s=settle_s,
                quantum_s=quantum_s,
                meter_seed=7000 + run_index,
                with_smt_overlap=True,
                pin_each_to_core=pinned,
            ))

    idle_w = calibrate_idle_power(spec, duration_s=idle_duration_s)
    formulas: List[FrequencyFormula] = []
    regressions: Dict[int, RegressionResult] = {}
    for frequency_hz in sorted({w.frequency_hz for w in all_windows}):
        at_frequency = [w for w in all_windows
                        if w.frequency_hz == frequency_hz]
        if len(at_frequency) < len(features) + 1:
            raise InsufficientDataError(
                f"only {len(at_frequency)} windows at {frequency_hz} Hz")
        samples = [w.features for w in at_frequency]
        targets = [max(0.0, w.power_w - idle_w) for w in at_frequency]
        # OLS with a free intercept: the SMT-overlap correction must be
        # able to go negative, and the intercept absorbs the package-awake
        # (uncore) offset every active placement pays.
        result = fit(samples, targets, features, method="ols",
                     fit_intercept=True)
        regressions[frequency_hz] = result
        formulas.append(FrequencyFormula(
            frequency_hz=frequency_hz,
            coefficients=dict(result.coefficients),
            intercept_w=result.intercept,
        ))
    model = PowerModel(idle_w=idle_w, formulas=formulas,
                       name="happy-hyperthread-aware")
    return HappyLearningReport(model=model, windows=all_windows,
                               idle_w=idle_w, regressions=regressions)

"""Shared windowed evaluation harness for model comparisons.

Runs workloads on a fresh simulated machine while collecting, per window:

* machine-wide rates of a configurable event set,
* per-logical-CPU cycle rates (for hyperthread-aware features),
* the measured wall power (PowerSpy).

Both the learning campaigns of the baseline models and the comparison
benchmarks consume these :class:`EvalWindow` records, so every model is
scored against identical observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import error_summary
from repro.core.model import PowerModel
from repro.errors import ConfigurationError
from repro.os.governor import UserspaceGovernor
from repro.os.kernel import SimKernel
from repro.perf.counting import PerfSession
from repro.powermeter.powerspy import PowerSpy
from repro.simcpu.counters import CYCLES, GENERIC_TRIO
from repro.simcpu.spec import CpuSpec
from repro.workloads.base import Workload

#: Feature name under which the SMT-overlap rate is exposed.
SMT_OVERLAP = "smt-overlap-cycles"


@dataclass(frozen=True)
class EvalWindow:
    """One observation window of an evaluation run."""

    time_s: float
    frequency_hz: int
    #: Machine-wide event rates plus any derived features, events/second.
    features: Dict[str, float]
    power_w: float
    workload: str


def smt_overlap_rate(per_cpu_cycles: Dict[int, float],
                     siblings: Sequence[Tuple[int, ...]],
                     window_s: float) -> float:
    """Cycles/second during which both hyperthreads of a core were busy.

    For each physical core the overlap is the *minimum* of its threads'
    cycle counts — the portion of time the second thread ran concurrently
    and therefore drew less than a full core's power.
    """
    overlap = 0.0
    for core in siblings:
        counts = [per_cpu_cycles.get(cpu_id, 0.0) for cpu_id in core]
        if len(counts) > 1:
            overlap += min(counts)
    return overlap / window_s


def run_windows(spec: CpuSpec, workloads: Sequence[Workload],
                frequency_hz: Optional[int] = None,
                events: Sequence[str] = GENERIC_TRIO,
                duration_s: float = 60.0,
                window_s: float = 1.0,
                settle_s: float = 0.0,
                quantum_s: float = 0.05,
                meter_seed: int = 4321,
                with_smt_overlap: bool = False,
                pin_each_to_core: bool = False,
                governor_factory=None) -> List[EvalWindow]:
    """Run *workloads* together and collect one EvalWindow per window.

    With *frequency_hz* set, cores are pinned there (userspace governor);
    otherwise the performance governor applies.  *pin_each_to_core*
    affinity-pins consecutive workloads onto the same physical core until
    its hyperthreads are full, then moves to the next core — the
    co-location setup of the SMT experiments (workloads 0 and 1 share
    core 0 on a 2-way SMT part).
    """
    if duration_s <= 0 or window_s <= 0:
        raise ConfigurationError("durations must be positive")
    if frequency_hz is not None:
        governor = lambda s, t, d: UserspaceGovernor(s, t, d, frequency_hz)
        kernel = SimKernel(spec, governor_factory=governor,
                           quantum_s=quantum_s)
    elif governor_factory is not None:
        kernel = SimKernel(spec, governor_factory=governor_factory,
                           quantum_s=quantum_s)
    else:
        kernel = SimKernel(spec, quantum_s=quantum_s)

    cores = kernel.machine.topology.cores()
    smt_ways = spec.threads_per_core
    for index, workload in enumerate(workloads):
        affinity = None
        if pin_each_to_core:
            package_id, core_id = cores[(index // smt_ways) % len(cores)]
            affinity = set(kernel.machine.topology.core_cpus(
                package_id, core_id))
        kernel.spawn(workload, name=workload.name, affinity=affinity)

    meter = PowerSpy(kernel.machine, sample_rate_hz=1.0 / window_s,
                     seed=meter_seed)
    perf = PerfSession(kernel.machine)
    counters = perf.open_group(events)
    cpu_cycle_counters = {
        cpu_id: perf.open(CYCLES, cpu=cpu_id)
        for cpu_id in kernel.machine.topology.cpu_ids
    } if with_smt_overlap else {}
    sibling_groups = [kernel.machine.topology.core_cpus(p, c)
                      for p, c in cores]

    windows: List[EvalWindow] = []
    with meter:
        if settle_s > 0:
            kernel.run(settle_s)
        meter.clear()
        previous = {counter.event: counter.read().scaled
                    for counter in counters}
        previous_cycles = {cpu_id: counter.read().scaled
                           for cpu_id, counter in cpu_cycle_counters.items()}
        steps = int(round(duration_s / window_s))
        for _window in range(steps):
            kernel.run(window_s)
            sample = meter.last_sample()
            if sample is None:
                continue
            current = {counter.event: counter.read().scaled
                       for counter in counters}
            features = {event: (current[event] - previous[event]) / window_s
                        for event in previous}
            previous = current
            if with_smt_overlap:
                current_cycles = {
                    cpu_id: counter.read().scaled
                    for cpu_id, counter in cpu_cycle_counters.items()}
                deltas = {cpu_id: current_cycles[cpu_id] - previous_cycles[cpu_id]
                          for cpu_id in current_cycles}
                previous_cycles = current_cycles
                features[SMT_OVERLAP] = smt_overlap_rate(
                    deltas, sibling_groups, window_s)
            windows.append(EvalWindow(
                time_s=kernel.time_s,
                frequency_hz=kernel.machine.dominant_frequency_hz(),
                features=features,
                power_w=sample.power_w,
                workload="+".join(w.name for w in workloads),
            ))
    perf.close()
    return windows


def score_model(model: PowerModel, windows: Sequence[EvalWindow]) -> dict:
    """Error summary of *model* against the measured power of *windows*."""
    if not windows:
        raise ConfigurationError("no evaluation windows")
    measured = [window.power_w for window in windows]
    estimated = [model.predict_total(window.frequency_hz, window.features)
                 for window in windows]
    return error_summary(measured, estimated)

"""RAPL-based estimation: accurate but architecture-dependent.

RAPL gives near-ground-truth package energy on supported Intel parts —
the paper's point is not that it is inaccurate but that it is *not
portable* (vendor- and generation-specific) and measures only the CPU
package.  :class:`RaplEstimator` turns RAPL readings into wall-power
estimates by adding a calibrated rest-of-system constant; trying to build
one on a non-Intel spec raises, demonstrating the portability failure the
counter-based approach avoids.
"""

from __future__ import annotations

from repro.errors import PowerMeterError
from repro.powermeter.rapl import (RaplDomain, RaplEnergyReader,
                                   RaplInterface)
from repro.simcpu.machine import Machine
from repro.simcpu.spec import CpuSpec


class RaplEstimator:
    """Wall power = RAPL(package + DRAM) + rest-of-system constant."""

    def __init__(self, machine: Machine, rest_of_system_w: float) -> None:
        if rest_of_system_w < 0:
            raise PowerMeterError("rest-of-system power must be >= 0")
        self.rapl = RaplInterface(machine)  # raises on non-Intel
        self.machine = machine
        self.rest_of_system_w = rest_of_system_w
        self._package = RaplEnergyReader(self.rapl, RaplDomain.PACKAGE)
        self._dram = RaplEnergyReader(self.rapl, RaplDomain.DRAM)
        self._last_time_s = machine.time_s
        self._last_energy_j = 0.0

    def estimate_w(self) -> float:
        """Average wall power since the previous call, watts."""
        energy = (self._package.total_energy_j()
                  + self._dram.total_energy_j())
        now = self.machine.time_s
        dt = now - self._last_time_s
        if dt <= 0:
            return self.rest_of_system_w
        power = (energy - self._last_energy_j) / dt + self.rest_of_system_w
        self._last_time_s = now
        self._last_energy_j = energy
        return power


def calibrate_rest_of_system(spec: CpuSpec, duration_s: float = 20.0) -> float:
    """Idle wall power minus idle package power, watts.

    Measured the way an operator would: meter the idle machine, read idle
    RAPL, subtract.
    """
    from repro.os.kernel import SimKernel
    from repro.powermeter.powerspy import PowerSpy

    kernel = SimKernel(spec, quantum_s=0.05)
    rapl = RaplInterface(kernel.machine)
    package = RaplEnergyReader(rapl, RaplDomain.PACKAGE)
    dram = RaplEnergyReader(rapl, RaplDomain.DRAM)
    meter = PowerSpy(kernel.machine, sample_rate_hz=1.0, seed=55)
    with meter:
        kernel.run(duration_s)
        wall_w = meter.mean_power_w()
    rapl_w = (package.total_energy_j() + dram.total_energy_j()) / duration_s
    return max(0.0, wall_w - rapl_w)

"""Baseline power models the paper compares against."""

from repro.baselines.bertran import (BERTRAN_EVENTS, bertran_campaign,
                                     learn_bertran_model)
from repro.baselines.cpuload import CPU_LOAD_EVENTS, learn_cpu_load_model
from repro.baselines.evaluation import (SMT_OVERLAP, EvalWindow, run_windows,
                                        score_model, smt_overlap_rate)
from repro.baselines.happy import (HAPPY_BASE_EVENTS, HappyLearningReport,
                                   learn_happy_model)
from repro.baselines.raplmodel import RaplEstimator, calibrate_rest_of_system

__all__ = [
    "BERTRAN_EVENTS", "CPU_LOAD_EVENTS", "EvalWindow", "HAPPY_BASE_EVENTS",
    "HappyLearningReport", "RaplEstimator", "SMT_OVERLAP",
    "bertran_campaign", "calibrate_rest_of_system", "learn_bertran_model",
    "learn_cpu_load_model", "learn_happy_model", "run_windows",
    "score_model", "smt_overlap_rate",
]

"""DVFS model: per-core P-states, voltage scaling and the turbo ladder.

Each physical core has its own clock domain (as on Sandy Bridge parts, the
package actually shares a domain, but per-core state lets us model the
"highest request wins" arbitration explicitly).  Voltage scales roughly
linearly with frequency across the DVFS range, which makes dynamic power
scale close to f·V² — the superlinear shape real silicon exhibits and the
reason per-frequency power models (one regression per P-state) beat a single
global linear model.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import FrequencyError
from repro.simcpu.spec import CpuSpec


class FrequencyDomain:
    """Per-core frequency state plus package-level turbo arbitration."""

    #: Voltage at the lowest P-state, volts.
    V_MIN = 0.80
    #: Voltage at the highest sustained P-state, volts.
    V_MAX = 1.20
    #: Extra voltage per turbo bin above the sustained maximum.
    V_TURBO_STEP = 0.03

    def __init__(self, spec: CpuSpec) -> None:
        self.spec = spec
        self._target_hz: Dict[Tuple[int, int], int] = {}
        for package_id in range(spec.packages):
            for core_id in range(spec.cores_per_package):
                self._target_hz[(package_id, core_id)] = spec.min_frequency_hz
        # The spec (and thus the f -> V and f -> f.V^2 maps) is immutable,
        # and dynamic_scale() is evaluated per core per tick by the hidden
        # power model: memoise both per validated frequency.
        self._voltage_cache: Dict[int, float] = {}
        self._scale_cache: Dict[int, float] = {}
        self._generation = 0

    @property
    def generation(self) -> int:
        """Counter bumped whenever any target actually changes.

        The batched stepping engine keys its compiled tick programs on
        this, so governors that re-request the same P-state every quantum
        (the common steady case) keep the compiled program valid.
        """
        return self._generation

    # -- requests ----------------------------------------------------------

    def set_target(self, package_id: int, core_id: int, frequency_hz: int) -> None:
        """Request a P-state for one core (what a cpufreq governor does)."""
        self.spec.validate_frequency(frequency_hz)
        key = (package_id, core_id)
        if key not in self._target_hz:
            raise FrequencyError(f"no such core pkg{package_id}/core{core_id}")
        if self._target_hz[key] != frequency_hz:
            self._target_hz[key] = frequency_hz
            self._generation += 1

    def set_all_targets(self, frequency_hz: int) -> None:
        """Request the same P-state on every core."""
        self.spec.validate_frequency(frequency_hz)
        changed = False
        for key, current in self._target_hz.items():
            if current != frequency_hz:
                self._target_hz[key] = frequency_hz
                changed = True
        if changed:
            self._generation += 1

    def target(self, package_id: int, core_id: int) -> int:
        """The requested (pre-arbitration) frequency of a core."""
        try:
            return self._target_hz[(package_id, core_id)]
        except KeyError:
            raise FrequencyError(
                f"no such core pkg{package_id}/core{core_id}") from None

    # -- effective frequency -----------------------------------------------

    def effective(self, package_id: int, core_id: int,
                  active_cores_in_package: int) -> int:
        """The frequency a core actually runs at this instant.

        Sustained P-states are granted as requested.  A turbo request is
        granted a bin that shrinks with the number of simultaneously active
        cores in the package (the classic per-active-core turbo derating):
        with all cores busy only the lowest turbo bin is available.
        """
        requested = self.target(package_id, core_id)
        if requested <= self.spec.max_frequency_hz:
            return requested
        ladder = self.spec.turbo_frequencies_hz
        # Index the ladder from the top: 1 active core gets the requested
        # bin, each extra active core drops one bin, floored at ladder[0].
        requested_index = ladder.index(requested)
        derate = max(0, active_cores_in_package - 1)
        granted_index = max(0, requested_index - derate)
        return ladder[granted_index]

    def voltage(self, frequency_hz: int) -> float:
        """Core voltage at *frequency_hz* (linear across the DVFS range)."""
        cached = self._voltage_cache.get(frequency_hz)
        if cached is not None:
            return cached
        self.spec.validate_frequency(frequency_hz)
        f_min = self.spec.min_frequency_hz
        f_max = self.spec.max_frequency_hz
        if frequency_hz <= f_max:
            if f_max == f_min:
                volts = self.V_MAX
            else:
                ratio = (frequency_hz - f_min) / (f_max - f_min)
                volts = self.V_MIN + ratio * (self.V_MAX - self.V_MIN)
        else:
            bin_index = self.spec.turbo_frequencies_hz.index(frequency_hz)
            volts = self.V_MAX + (bin_index + 1) * self.V_TURBO_STEP
        self._voltage_cache[frequency_hz] = volts
        return volts

    def dynamic_scale(self, frequency_hz: int) -> float:
        """Relative dynamic power factor f·V² normalised to the max P-state.

        This is the superlinearity the hidden ground-truth power model
        applies per frequency.
        """
        cached = self._scale_cache.get(frequency_hz)
        if cached is not None:
            return cached
        f_max = self.spec.max_frequency_hz
        v_max = self.voltage(f_max)
        v = self.voltage(frequency_hz)
        scale = (frequency_hz / f_max) * (v / v_max) ** 2
        self._scale_cache[frequency_hz] = scale
        return scale

"""Analytic cache-hierarchy model.

The simulator does not replay individual addresses; instead each workload
describes its memory behaviour with a :class:`MemoryProfile` (memory
operations per instruction, working-set size, temporal locality) and this
module converts that into per-level hit rates, the event counts behind the
``cache-references`` / ``cache-misses`` HPCs, and an average memory stall
penalty that feeds the IPC model.

Hit rates follow a capacity model: a working set that fits in a level hits
with probability close to the workload's locality; beyond that, the hit rate
decays with the ratio of effective capacity to working-set size.  The shared
last-level cache divides its capacity among co-resident working sets, which
is how cache contention between processes emerges.

Following Linux/Intel convention, ``cache-references`` counts accesses that
reach the last-level cache and ``cache-misses`` the ones that miss it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.simcpu.spec import CpuSpec

#: Cycles to reach DRAM on a last-level miss.
DRAM_LATENCY_CYCLES = 200

#: Fraction of cache-hit latency the out-of-order window fails to hide
#: (L1 hits are fully pipelined and cost nothing extra).
HIT_LATENCY_EXPOSED = 0.5

#: Fraction of DRAM latency exposed after memory-level parallelism.
DRAM_LATENCY_EXPOSED = 0.7


@dataclass(frozen=True)
class MemoryProfile:
    """How a workload exercises the memory hierarchy.

    ``mem_ops_per_instruction`` — loads+stores per retired instruction
    (typically 0.2–0.4).  ``working_set_bytes`` — bytes touched with reuse.
    ``locality`` — probability in (0, 1] that an access to a level whose
    capacity covers the working set actually hits (captures streaming vs
    pointer-chasing behaviour).
    """

    mem_ops_per_instruction: float = 0.25
    working_set_bytes: int = 16 * 1024
    locality: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 <= self.mem_ops_per_instruction <= 1.0:
            raise ConfigurationError(
                "mem_ops_per_instruction must be within [0, 1]")
        if self.working_set_bytes < 0:
            raise ConfigurationError("working_set_bytes must be >= 0")
        if not 0.0 < self.locality <= 1.0:
            raise ConfigurationError("locality must be within (0, 1]")


@dataclass(frozen=True)
class CacheBehaviour:
    """Derived per-instruction cache behaviour of one process.

    All rates are events per retired instruction.
    """

    l1_references: float
    l1_misses: float
    llc_references: float
    llc_misses: float
    #: Average memory stall cycles per instruction.
    stall_cycles: float

    def __post_init__(self) -> None:
        if self.llc_misses > self.llc_references + 1e-12:
            raise ConfigurationError("LLC misses cannot exceed LLC references")


class CacheModel:
    """Computes :class:`CacheBehaviour` for processes sharing a hierarchy."""

    #: Cap on memoised (profile, co-residents) combinations; a sampling
    #: campaign sees a handful, open-ended monitoring should not leak.
    _CACHE_LIMIT = 4096

    def __init__(self, spec: CpuSpec) -> None:
        self.spec = spec
        self._levels = spec.caches
        self._behaviour_cache: dict = {}

    @staticmethod
    def _hit_rate(working_set: int, capacity: float, locality: float) -> float:
        """Hit probability of one level under the capacity model."""
        if working_set <= 0:
            return locality
        if capacity <= 0:
            return 0.0
        if working_set <= capacity:
            return locality
        return locality * (capacity / working_set)

    def behaviour(self, profile: MemoryProfile,
                  coresident_sets: Sequence[int] = ()) -> CacheBehaviour:
        """Cache behaviour of one process.

        *coresident_sets* lists the working-set sizes (bytes) of the other
        processes simultaneously scheduled on the same package; they shrink
        this process's share of every shared level.

        Results are memoised per (profile, co-resident sets): the inputs
        are immutable and the same combination recurs every tick for the
        lifetime of a workload.
        """
        key = (profile, tuple(coresident_sets))
        cached = self._behaviour_cache.get(key)
        if cached is not None:
            return cached
        result = self._behaviour_uncached(profile, key[1])
        if len(self._behaviour_cache) >= self._CACHE_LIMIT:
            self._behaviour_cache.clear()
        self._behaviour_cache[key] = result
        return result

    def _behaviour_uncached(self, profile: MemoryProfile,
                            coresident_sets: Sequence[int]) -> CacheBehaviour:
        mem_ops = profile.mem_ops_per_instruction
        if mem_ops == 0.0:
            return CacheBehaviour(0.0, 0.0, 0.0, 0.0, 0.0)

        total_ws = profile.working_set_bytes + sum(coresident_sets)
        remaining = mem_ops  # accesses per instruction still in flight
        stall = 0.0
        l1_refs = mem_ops
        l1_miss = mem_ops
        llc_refs = 0.0
        llc_miss = 0.0
        last_level = self._levels[-1].level if self._levels else 0

        for cache in self._levels:
            capacity = float(cache.size_bytes)
            if cache.shared and total_ws > 0:
                share = profile.working_set_bytes / total_ws if total_ws else 1.0
                # A co-resident process never squeezes you below an equal
                # share of the cache.
                share = max(share, 1.0 / (1 + len(coresident_sets)))
                capacity *= share
            hit = self._hit_rate(profile.working_set_bytes, capacity,
                                 profile.locality)
            if cache.level == last_level:
                llc_refs = remaining
                llc_miss = remaining * (1.0 - hit)
            if cache.level == 1:
                l1_miss = remaining * (1.0 - hit)
            if cache.level > 1:
                stall += (remaining * hit * cache.latency_cycles
                          * HIT_LATENCY_EXPOSED)
            remaining *= (1.0 - hit)

        stall += remaining * DRAM_LATENCY_CYCLES * DRAM_LATENCY_EXPOSED
        return CacheBehaviour(
            l1_references=l1_refs,
            l1_misses=l1_miss,
            llc_references=llc_refs,
            llc_misses=llc_miss,
            stall_cycles=stall,
        )

    def dram_bytes_per_instruction(self, behaviour: CacheBehaviour) -> float:
        """DRAM traffic implied by the LLC miss rate (one line per miss)."""
        line = self._levels[-1].line_bytes if self._levels else 64
        return behaviour.llc_misses * line

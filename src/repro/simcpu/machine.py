"""The simulated machine: clocking, execution, counters and wall power.

:class:`Machine` is the integration point of the ``simcpu`` package.  A
driver (normally the OS layer, :mod:`repro.os`) advances simulated time in
discrete steps: it hands the machine a list of :class:`ThreadAssignment`
records — which process runs on which logical CPU, how busy, with what
instruction mix and memory profile — and the machine

1. arbitrates effective core frequencies (DVFS/turbo),
2. runs the cache and pipeline models to retire instructions,
3. accumulates hardware performance counters,
4. accounts C-state residencies,
5. evaluates the hidden ground-truth power model.

Every step produces a :class:`TickRecord`; observers (power meters, perf
counters, trace recorders) subscribe to the stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, TopologyError
from repro.simcpu import counters as ev
from repro.simcpu.caches import CacheModel, MemoryProfile
from repro.simcpu.counters import CounterBank, EventDelta
from repro.simcpu.cstates import CStateController
from repro.simcpu.engine import BatchEngine
from repro.simcpu.frequency import FrequencyDomain
from repro.simcpu.pipeline import InstructionMix, PipelineModel
from repro.simcpu.power import GroundTruthPower, PowerBreakdown, ThermalModel
from repro.simcpu.spec import CpuSpec
from repro.simcpu.topology import Topology

#: Bus cycles tick at roughly one tenth of the core clock.
BUS_CYCLE_RATIO = 0.1


@dataclass(frozen=True)
class ThreadAssignment:
    """One process occupying (part of) one logical CPU for one step."""

    pid: int
    cpu_id: int
    busy_fraction: float
    mix: InstructionMix
    memory: MemoryProfile

    def __post_init__(self) -> None:
        if self.pid < 0:
            raise ConfigurationError("pid must be >= 0")
        if not 0.0 <= self.busy_fraction <= 1.0:
            raise ConfigurationError(
                f"busy_fraction must be within [0, 1], got {self.busy_fraction}")

    def __hash__(self) -> int:
        # The batched engine hashes every assignment on every step to key
        # its program cache; all fields are immutable, so compute the
        # (nested-dataclass) hash once and memoise it on the instance.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.pid, self.cpu_id, self.busy_fraction,
                           self.mix, self.memory))
            object.__setattr__(self, "_hash", cached)
        return cached


@dataclass(frozen=True)
class TickRecord:
    """Everything that happened during one simulation step."""

    #: Simulated time at the *end* of the step, seconds.
    time_s: float
    dt_s: float
    power: PowerBreakdown
    #: Per-(pid, cpu_id) event deltas for the step.
    events: Mapping[Tuple[int, int], EventDelta]
    #: Per-logical-CPU busy (C0) fraction.
    cpu_busy: Mapping[int, float]
    #: Effective frequency per (package_id, core_id).
    core_frequencies_hz: Mapping[Tuple[int, int], int]

    @property
    def wall_power_w(self) -> float:
        """Total wall power during the step, watts."""
        return self.power.total

    def machine_events(self) -> EventDelta:
        """Machine-wide event delta (sum over all processes and CPUs).

        The merge is computed once and cached: several observers (power
        meters, system-wide counters) ask for it on every tick.  Treat
        the returned delta as read-only.
        """
        cached = self.__dict__.get("_machine_events")
        if cached is None:
            cached = EventDelta()
            for delta in self.events.values():
                for event, count in delta.items():
                    cached[event] = cached.get(event, 0.0) + count
            # Frozen dataclass: bypass __setattr__ for the private cache.
            self.__dict__["_machine_events"] = cached
        return cached


TickObserver = Callable[[TickRecord], None]


class Machine:
    """A complete simulated multi-core machine."""

    def __init__(self, spec: CpuSpec) -> None:
        self.spec = spec
        self.topology = Topology(spec)
        self.frequency = FrequencyDomain(spec)
        self.cstates = CStateController(spec)
        self.caches = CacheModel(spec)
        self.pipeline = PipelineModel(spec)
        self.power_model = GroundTruthPower(spec, self.frequency)
        self.thermal = ThermalModel()
        self.counters = CounterBank()
        self._time_s = 0.0
        self._energy_j = 0.0
        self._observers: List[TickObserver] = []
        #: The most recent tick record (None before the first step).
        self.last_record: Optional[TickRecord] = None
        # Hot-path lookups resolved once: the topology is immutable, and
        # step() consults these for every assignment of every tick.
        topology = self.topology
        self._cores: Tuple[Tuple[int, int], ...] = tuple(topology.cores())
        self._core_cpus: Dict[Tuple[int, int], Tuple[int, ...]] = {
            key: topology.core_cpus(*key) for key in self._cores}
        self._cpu_core_key: Dict[int, Tuple[int, int]] = {
            cpu.cpu_id: (cpu.package_id, cpu.core_id) for cpu in topology}
        self._other_siblings: Dict[int, Tuple[int, ...]] = {
            cpu.cpu_id: tuple(s for s in topology.siblings(cpu.cpu_id)
                              if s != cpu.cpu_id)
            for cpu in topology}
        self._zero_busy: Dict[int, float] = {
            cpu_id: 0.0 for cpu_id in topology.cpu_ids}
        self._line_bytes_cached = (spec.caches[-1].line_bytes
                                   if spec.caches else 64)
        self._engine = BatchEngine(self)

    # -- observers -----------------------------------------------------

    def add_observer(self, observer: TickObserver) -> None:
        """Subscribe *observer* to the stream of tick records."""
        self._observers.append(observer)

    def remove_observer(self, observer: TickObserver) -> None:
        """Unsubscribe an observer; a no-op if it is not subscribed.

        Idempotent so that meters and sessions that double-close (or
        disconnect after an earlier error path already detached them)
        never crash a run.
        """
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    # -- state ----------------------------------------------------------

    @property
    def time_s(self) -> float:
        """Simulated wall-clock time, seconds."""
        return self._time_s

    @property
    def energy_j(self) -> float:
        """Total wall energy consumed since construction, joules."""
        return self._energy_j

    def set_frequency(self, frequency_hz: int) -> None:
        """Pin every core to *frequency_hz* (the userspace-governor path)."""
        self.frequency.set_all_targets(frequency_hz)

    # -- stepping ---------------------------------------------------------

    def step(self, assignments: Sequence[ThreadAssignment], dt_s: float) -> TickRecord:
        """Advance simulated time by *dt_s* with the given CPU occupancy.

        A thin façade over the batched engine: the occupancy is compiled
        once (cached across ticks while assignments, dt and P-state
        targets hold) and replayed for a single tick.
        """
        if dt_s <= 0:
            raise ConfigurationError(f"dt_s must be positive, got {dt_s}")
        program = self._engine.program(assignments, dt_s)
        return self._engine.replay(program, 1)

    def run_batch(self, assignments: Sequence[ThreadAssignment],
                  n_ticks: int, dt_s: float = 0.01) -> TickRecord:
        """Advance *n_ticks* of a steady occupancy in one engine replay.

        State (counters, residencies, thermal, energy, time) ends up
        bit-identical to calling :meth:`step` *n_ticks* times; the record
        returned is the final tick's.  Observers, when attached, still
        see every intermediate tick.
        """
        if dt_s <= 0:
            raise ConfigurationError(f"dt_s must be positive, got {dt_s}")
        if n_ticks < 1:
            raise ConfigurationError(f"n_ticks must be >= 1, got {n_ticks}")
        program = self._engine.program(assignments, dt_s)
        return self._engine.replay(program, n_ticks)

    def run_schedule(self, schedule: Sequence[
            Tuple[Sequence[ThreadAssignment], int]],
            dt_s: float = 0.01) -> List[TickRecord]:
        """Run ``(assignments, n_ticks)`` segments back to back.

        Returns one record per segment (the segment's final tick).
        """
        return [self.run_batch(assignments, n_ticks, dt_s)
                for assignments, n_ticks in schedule]

    def dominant_frequency_hz(self) -> int:
        """Busy-weighted dominant core frequency of the last step.

        Before any step (or on a fully idle step) this is the frequency
        targeted on core 0, which is what a frequency-aware formula should
        assume for an idle machine.  Frequency-aware formulas ask once per
        sample, so the scan result is cached on the record (0 marks the
        all-idle case, whose fallback must track the live target).
        """
        record = self.last_record
        if record is None:
            return self.frequency.target(0, 0)
        cached = record.__dict__.get("_dominant_hz")
        if cached is None:
            weights: Dict[int, float] = {}
            for core_key in self._cores:
                frequency = record.core_frequencies_hz[core_key]
                busy = max(record.cpu_busy[cpu_id]
                           for cpu_id in self._core_cpus[core_key])
                weights[frequency] = weights.get(frequency, 0.0) + busy
            if not weights or max(weights.values()) == 0.0:
                cached = 0
            else:
                cached = max(weights, key=lambda frequency: weights[frequency])
            record.__dict__["_dominant_hz"] = cached
        if cached == 0:
            return self.frequency.target(0, 0)
        return cached

    # -- internals --------------------------------------------------------

    def _line_bytes(self) -> int:
        """Cache-line size of the last-level cache (DRAM transfer unit)."""
        return self._line_bytes_cached

    def _validate_occupancy(
            self, assignments: Sequence[ThreadAssignment]) -> Dict[int, float]:
        """Total busy fraction per logical CPU; reject oversubscription."""
        busy: Dict[int, float] = dict(self._zero_busy)
        for assignment in assignments:
            if assignment.cpu_id not in busy:
                raise TopologyError(f"cpu{assignment.cpu_id} does not exist")
            busy[assignment.cpu_id] += assignment.busy_fraction
            if busy[assignment.cpu_id] > 1.0 + 1e-9:
                raise ConfigurationError(
                    f"cpu{assignment.cpu_id} oversubscribed: "
                    f"{busy[assignment.cpu_id]:.3f} > 1")
        return {cpu_id: min(1.0, value) for cpu_id, value in busy.items()}

    def _effective_frequencies(
            self, cpu_busy: Mapping[int, float]) -> Dict[Tuple[int, int], int]:
        """Granted frequency per core, after turbo arbitration."""
        active_per_package: Dict[int, int] = {}
        for core_key in self._cores:
            if any(cpu_busy[cpu_id] > 0.0
                   for cpu_id in self._core_cpus[core_key]):
                package_id = core_key[0]
                active_per_package[package_id] = (
                    active_per_package.get(package_id, 0) + 1)
        frequencies: Dict[Tuple[int, int], int] = {}
        for package_id, core_id in self._cores:
            frequencies[(package_id, core_id)] = self.frequency.effective(
                package_id, core_id,
                active_cores_in_package=active_per_package.get(package_id, 0))
        return frequencies

    def _execute(self, assignment: ThreadAssignment,
                 cpu_busy: Mapping[int, float], frequency_hz: int,
                 dt_s: float) -> EventDelta:
        """Run one assignment through the cache and pipeline models."""
        cpu_id = assignment.cpu_id
        sibling_busy = max(
            (cpu_busy[sibling] for sibling in self._other_siblings[cpu_id]),
            default=0.0)

        package_id = self._cpu_core_key[cpu_id][0]
        coresident_sets = self._coresident_working_sets(assignment, package_id)
        behaviour = self.caches.behaviour(assignment.memory, coresident_sets)
        rates = self.pipeline.rates(assignment.mix, behaviour, sibling_busy)

        busy_seconds = assignment.busy_fraction * dt_s
        instructions = self.pipeline.instructions_in(rates, frequency_hz, busy_seconds)
        cycles = frequency_hz * busy_seconds

        # Every key is distinct and every count non-negative by
        # construction, so build the delta in one shot instead of going
        # through the validating add() path 14 times per assignment.
        return EventDelta({
            ev.INSTRUCTIONS: instructions,
            ev.CYCLES: cycles,
            ev.REF_CYCLES: self.spec.max_frequency_hz * busy_seconds,
            ev.BUS_CYCLES: cycles * BUS_CYCLE_RATIO,
            ev.BRANCHES: instructions * rates.branches_per_instruction,
            ev.BRANCH_MISSES:
                instructions * rates.branch_misses_per_instruction,
            ev.CACHE_REFERENCES: instructions * behaviour.llc_references,
            ev.CACHE_MISSES: instructions * behaviour.llc_misses,
            ev.LLC_LOADS: instructions * behaviour.llc_references,
            ev.LLC_LOAD_MISSES: instructions * behaviour.llc_misses,
            ev.L1_DCACHE_LOADS: instructions * behaviour.l1_references,
            ev.L1_DCACHE_LOAD_MISSES: instructions * behaviour.l1_misses,
            ev.STALLED_CYCLES_BACKEND: cycles * rates.backend_stall_fraction,
            ev.STALLED_CYCLES_FRONTEND:
                cycles * rates.frontend_stall_fraction,
        })

    def _coresident_working_sets(self, assignment: ThreadAssignment,
                                 package_id: int) -> List[int]:
        """Working sets of the other assignments on the same package."""
        sets: List[int] = []
        for other in self._current_assignments:
            if other is assignment:
                continue
            other_cpu = self.topology.cpu(other.cpu_id)
            if other_cpu.package_id == package_id and other.busy_fraction > 0.0:
                sets.append(other.memory.working_set_bytes)
        return sets

    # step() needs the full assignment list while executing each one (for
    # cache co-residency); stash it for the duration of the call.
    _current_assignments: Sequence[ThreadAssignment] = ()

    def run(self, assignments: Sequence[ThreadAssignment], duration_s: float,
            dt_s: float = 0.01) -> List[TickRecord]:
        """Step a fixed occupancy for *duration_s*; returns all tick records."""
        records: List[TickRecord] = []
        steps = max(1, int(round(duration_s / dt_s)))
        for _ in range(steps):
            records.append(self.step(assignments, dt_s))
        return records

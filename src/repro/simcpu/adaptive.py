"""Adaptive live sampling over the batched stepping engine.

Pac-Sim-style intelligent sampling for the live pipeline: most of a
workload's lifetime is spent inside steady phases where nothing the
power model sees is changing, so stepping them at the fine calibration
resolution wastes almost all of the simulation budget.  The sampler
watches windowed IPC and busy-fraction deltas through a
:class:`PhaseDetector`; once a phase has been stable for a few windows
it widens the tick to a coarse dt, and it drops back to the fine dt the
moment a transient appears — a segment boundary in the driven schedule,
or a deviation caught by one of the seeded random fine-resolution
probes it keeps injecting while coarse.

The trade-off is explicit, not hidden: coarse ticks integrate the same
physics on a wider grid (thermal relaxation discretisation, C-state
selection for the longer expected-idle window), so the result is *near*
the full-resolution run, not bit-identical to it.
:class:`AdaptiveReport` says exactly how many fine and coarse ticks were
spent, and the benchmark suite pins the whole-run energy error against
full-resolution stepping (≤ 1 % on the scenario workloads).  Anything
that must stay bit-exact — calibration campaigns, golden datasets —
simply keeps using :meth:`repro.simcpu.machine.Machine.run_batch` at a
fixed dt.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.simcpu import counters as ev
from repro.simcpu.machine import Machine, ThreadAssignment, TickRecord

#: One schedule segment: hold *assignments* for *duration_s* of sim time.
Segment = Tuple[Sequence[ThreadAssignment], float]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning knobs of the adaptive sampler."""

    #: Full-resolution tick, used on transients (and for probes).
    fine_dt_s: float = 0.01
    #: Widened tick for steady phases.
    coarse_dt_s: float = 0.1
    #: Fine ticks per detector decision window.
    window_ticks: int = 8
    #: Consecutive stable windows before the phase counts as steady.
    steady_windows: int = 3
    #: Relative IPC change below which two windows are "the same phase".
    ipc_tolerance: float = 0.02
    #: Absolute mean-busy-fraction change tolerated within a phase.
    busy_tolerance: float = 0.02
    #: Chance that a coarse window is replaced by a fine probe window.
    probe_probability: float = 0.1

    def __post_init__(self) -> None:
        if self.fine_dt_s <= 0 or self.coarse_dt_s <= 0:
            raise ConfigurationError("adaptive dts must be positive")
        if self.coarse_dt_s < self.fine_dt_s:
            raise ConfigurationError(
                "coarse_dt_s must be >= fine_dt_s "
                f"({self.coarse_dt_s} < {self.fine_dt_s})")
        if self.window_ticks < 1 or self.steady_windows < 1:
            raise ConfigurationError("window sizes must be >= 1")
        if not 0.0 <= self.probe_probability <= 1.0:
            raise ConfigurationError("probe_probability must be in [0, 1]")


class PhaseDetector:
    """Declares a phase steady after consecutive stable (IPC, busy) windows.

    Purely causal: it compares each window's observation against the
    previous one, so it needs no knowledge of the driving schedule —
    a scheduler churning pids at constant load still reads as steady,
    while a ramp or a phase change trips it within one window.
    """

    def __init__(self, config: AdaptiveConfig) -> None:
        self._config = config
        self._last: Optional[Tuple[float, float]] = None
        self._stable_windows = 0

    def reset(self) -> None:
        """Forget history (a known transient, e.g. a segment boundary)."""
        self._last = None
        self._stable_windows = 0

    def observe(self, ipc: float, busy: float) -> bool:
        """Feed one window's observation; returns True once steady."""
        config = self._config
        last = self._last
        self._last = (ipc, busy)
        if last is None:
            self._stable_windows = 0
            return False
        last_ipc, last_busy = last
        ipc_scale = max(abs(last_ipc), abs(ipc), 1e-12)
        ipc_stable = abs(ipc - last_ipc) / ipc_scale <= config.ipc_tolerance
        busy_stable = abs(busy - last_busy) <= config.busy_tolerance
        if ipc_stable and busy_stable:
            self._stable_windows += 1
        else:
            self._stable_windows = 0
        return self._stable_windows >= config.steady_windows


@dataclass
class AdaptiveReport:
    """What an adaptive run did and what it would have cost without it."""

    fine_ticks: int = 0
    coarse_ticks: int = 0
    probe_windows: int = 0
    transitions_to_coarse: int = 0
    simulated_s: float = 0.0
    energy_j: float = 0.0
    #: Final record of each schedule segment.
    segment_records: List[TickRecord] = field(default_factory=list)

    @property
    def total_ticks(self) -> int:
        return self.fine_ticks + self.coarse_ticks

    def full_resolution_ticks(self, config: AdaptiveConfig) -> int:
        """Ticks a pure fine-dt run of the same schedule would take."""
        ratio = round(config.coarse_dt_s / config.fine_dt_s)
        return self.fine_ticks + self.coarse_ticks * ratio

    def tick_reduction(self, config: AdaptiveConfig) -> float:
        """Speed-up factor in Python-level ticks vs full resolution."""
        total = self.total_ticks
        if total == 0:
            return 1.0
        return self.full_resolution_ticks(config) / total


class AdaptiveSampler:
    """Drives a :class:`Machine` through a schedule with adaptive dt."""

    def __init__(self, machine: Machine,
                 config: AdaptiveConfig = AdaptiveConfig(),
                 seed: int = 0) -> None:
        self.machine = machine
        self.config = config
        self._rng = random.Random(seed)
        self._detector = PhaseDetector(config)

    def run(self, schedule: Sequence[Segment]) -> AdaptiveReport:
        """Simulate every ``(assignments, duration_s)`` segment in order."""
        config = self.config
        machine = self.machine
        detector = self._detector
        report = AdaptiveReport()
        ratio = round(config.coarse_dt_s / config.fine_dt_s)
        energy_before = machine.energy_j
        time_before = machine.time_s

        for assignments, duration_s in schedule:
            if duration_s <= 0:
                raise ConfigurationError(
                    f"segment duration must be positive, got {duration_s}")
            # Work in fine-tick units so fine and coarse windows cover the
            # same simulated span and the segment length is honoured.
            remaining = max(1, int(round(duration_s / config.fine_dt_s)))
            detector.reset()  # a segment boundary is a known transient
            steady = False
            record = None
            while remaining > 0:
                if steady and remaining >= ratio:
                    probe = self._rng.random() < config.probe_probability
                    if probe:
                        # A failed probe (steady -> False) drops the phase
                        # back to fine resolution until it re-stabilises.
                        report.probe_windows += 1
                        record, used, steady = self._fine_window(
                            assignments, remaining, report)
                    else:
                        n_coarse = min(config.window_ticks, remaining // ratio)
                        record = machine.run_batch(
                            assignments, n_coarse, config.coarse_dt_s)
                        report.coarse_ticks += n_coarse
                        used = n_coarse * ratio
                    remaining -= used
                else:
                    was_steady = steady
                    record, used, steady = self._fine_window(
                        assignments, remaining, report)
                    remaining -= used
                    if steady and not was_steady:
                        report.transitions_to_coarse += 1
            report.segment_records.append(record)

        report.simulated_s = machine.time_s - time_before
        report.energy_j = machine.energy_j - energy_before
        return report

    def _fine_window(self, assignments: Sequence[ThreadAssignment],
                     remaining: int, report: AdaptiveReport):
        """One fine-resolution window; feeds the detector.

        Returns ``(record, fine_ticks_used, steady)``.
        """
        config = self.config
        n_fine = min(config.window_ticks, remaining)
        record = self.machine.run_batch(assignments, n_fine, config.fine_dt_s)
        report.fine_ticks += n_fine
        steady = self._detector.observe(*_window_signature(record))
        return record, n_fine, steady


def _window_signature(record: TickRecord) -> Tuple[float, float]:
    """(IPC, mean busy fraction) of the occupancy behind *record*.

    Within a batch every tick carries the same per-tick deltas, so the
    final record characterises the whole window.
    """
    events = record.machine_events()
    cycles = events.get(ev.CYCLES, 0.0)
    ipc = events.get(ev.INSTRUCTIONS, 0.0) / cycles if cycles > 0 else 0.0
    busy = record.cpu_busy
    mean_busy = sum(busy.values()) / len(busy) if busy else 0.0
    return ipc, mean_busy

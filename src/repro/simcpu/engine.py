"""Batched struct-of-arrays stepping engine — the simulator's hot path.

Tick-at-a-time stepping spends almost all of its wall time on Python
object churn: one :class:`~repro.simcpu.counters.EventDelta` dict per
assignment per tick, a fresh ``Dict[Tuple[int, int], ...]`` events map
per tick, a dict-based counter fold per assignment per tick, and a full
re-derivation of cache behaviour, execution rates and the power
breakdown even though every one of those is a pure function of the
(occupancy, dt, P-state targets) triple — which is constant for
thousands of consecutive ticks in every campaign, soak and monitor run.

This module splits the step into the two halves the tick loop conflates:

* **compile** — :meth:`BatchEngine.program` derives everything that is a
  loop invariant of a steady occupancy into a :class:`TickProgram`:
  the per-(pid, cpu) event deltas, the shared events/busy/frequency
  mappings of the eventual :class:`~repro.simcpu.machine.TickRecord`,
  the constant components of the power breakdown, and a flat list of
  *accumulation cells* — ``(container, index, addends)`` triples over
  the struct-of-arrays :class:`~repro.simcpu.counters.CounterBank`
  columns and the C-state residency table.
* **replay** — :meth:`BatchEngine.replay` advances N ticks by replaying
  only the data-dependent state updates: the first-order thermal
  relaxation, the energy and time integrals, and one float addition per
  accumulation cell per tick.

Bit-identity is the hard contract (the golden dataset tests pin it):
replaying a program performs exactly the float operations, in exactly
the order, that N calls of the tick-at-a-time step would — repeated
addition per cell rather than a single ``n * delta`` fold, the same
association order in the power total, the same two data-dependent
thermal lines per tick.  Observers attached to the machine see one
record per tick with fully committed machine state, exactly as before;
with no observers the per-tick record materialisation is skipped and
the counter cells are accumulated column-wise, which is where the
order-of-magnitude throughput win comes from.
"""

from __future__ import annotations

from itertools import repeat
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.simcpu import counters as ev
from repro.simcpu.counters import EventDelta
from repro.simcpu.power import CoreActivity, PowerBreakdown

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (machine -> engine)
    from repro.simcpu.machine import Machine, ThreadAssignment, TickRecord


class TickProgram:
    """Everything about one steady (occupancy, dt, P-states) combination
    that does not change from tick to tick."""

    __slots__ = (
        "dt_s", "cpu_busy", "core_freqs", "events", "machine_events",
        "single_cells", "multi_cells", "current_states", "has_counters",
        "idle_w", "cores_w", "uncore_w", "dram_w", "wakeup_w", "base_w",
        "dynamic_w", "bank", "cstates",
    )


class BatchEngine:
    """Compiles steady occupancies into tick programs and replays them."""

    #: Cap on cached programs; a campaign sees a handful per run, an
    #: open-ended monitor with a churning scheduler should not leak.
    _PROGRAM_CACHE_LIMIT = 256

    def __init__(self, machine: "Machine") -> None:
        self._machine = machine
        self._programs: Dict[tuple, TickProgram] = {}

    # -- compilation ---------------------------------------------------

    def program(self, assignments: Sequence["ThreadAssignment"],
                dt_s: float) -> TickProgram:
        """The compiled program for (*assignments*, *dt_s*), cached.

        The cache key includes the frequency domain's change generation,
        so any governor request that actually moves a P-state target
        invalidates affected programs; re-requests of the current target
        (what every governor does each quantum in steady state) do not.
        """
        machine = self._machine
        key = (tuple(assignments), dt_s, machine.frequency.generation)
        program = self._programs.get(key)
        if program is not None and (program.bank is not machine.counters
                                    or program.cstates is not machine.cstates):
            program = None  # counters/cstates were swapped out under us
        if program is None:
            program = self._compile(key[0], dt_s)
            if len(self._programs) >= self._PROGRAM_CACHE_LIMIT:
                self._programs.clear()
            self._programs[key] = program
        return program

    def _compile(self, assignments: Tuple["ThreadAssignment", ...],
                 dt_s: float) -> TickProgram:
        """Run the full per-tick derivation once and freeze the invariants."""
        machine = self._machine
        cpu_busy = machine._validate_occupancy(assignments)
        core_freqs = machine._effective_frequencies(cpu_busy)

        events: Dict[Tuple[int, int], EventDelta] = {}
        llc_refs = 0.0
        dram_bytes = 0.0
        core_weights: Dict[Tuple[int, int], List[Tuple[float, float]]] = {}
        raw_cells: list = []
        line_bytes = machine._line_bytes_cached

        machine._current_assignments = assignments
        try:
            for assignment in assignments:
                if assignment.busy_fraction == 0.0:
                    continue
                core_key = machine._cpu_core_key[assignment.cpu_id]
                frequency_hz = core_freqs[core_key]
                delta = machine._execute(assignment, cpu_busy, frequency_hz,
                                         dt_s)
                key = (assignment.pid, assignment.cpu_id)
                existing = events.get(key)
                events[key] = (delta if existing is None
                               else existing.merged_with(delta))
                raw_cells.extend(machine.counters.accumulation_cells(
                    assignment.pid, assignment.cpu_id, delta))
                llc_refs += delta.get(ev.CACHE_REFERENCES, 0.0)
                dram_bytes += delta.get(ev.CACHE_MISSES, 0.0) * line_bytes
                core_weights.setdefault(core_key, []).append(
                    (assignment.busy_fraction, assignment.mix.power_weight()))
        finally:
            machine._current_assignments = ()

        has_counters = bool(raw_cells)
        activities, cstate_cells, current_states = self._activities(
            cpu_busy, core_freqs, core_weights, dt_s)
        raw_cells.extend(cstate_cells)

        breakdown = machine.power_model.wall_power(
            activities,
            llc_references_per_s=llc_refs / dt_s,
            dram_bytes_per_s=dram_bytes / dt_s,
            thermal=None,
        )

        program = TickProgram()
        program.dt_s = dt_s
        program.cpu_busy = cpu_busy
        program.core_freqs = core_freqs
        program.events = events
        program.machine_events = self._merged_events(events)
        program.single_cells, program.multi_cells = self._group_cells(raw_cells)
        program.current_states = current_states
        program.has_counters = has_counters
        program.idle_w = breakdown.idle
        program.cores_w = breakdown.cores
        program.uncore_w = breakdown.uncore
        program.dram_w = breakdown.dram
        program.wakeup_w = breakdown.wakeup
        # The exact association orders GroundTruthPower and PowerBreakdown
        # use, frozen here so the replay loop reproduces them bit-for-bit.
        program.dynamic_w = (breakdown.cores + breakdown.uncore
                             + breakdown.dram + breakdown.wakeup)
        program.base_w = (((breakdown.idle + breakdown.cores)
                           + breakdown.uncore) + breakdown.dram)
        program.bank = machine.counters
        program.cstates = machine.cstates
        return program

    def _activities(self, cpu_busy, core_freqs, core_weights, dt_s):
        """Per-core activity records plus compiled C-state accounting.

        The side-effect-free half of what the tick loop used to do in
        ``Machine._core_activities``: the governor's idle-state choice is
        a pure function of the expected idle window, so it compiles to
        residency cells and a final per-CPU state name.
        """
        machine = self._machine
        cstates = machine.cstates
        activities: List[CoreActivity] = []
        cells: list = []
        current_states: Dict[int, str] = {}
        for core_key in machine._cores:
            core_cpus = machine._core_cpus[core_key]
            thread_busy = tuple(cpu_busy[cpu_id] for cpu_id in core_cpus)
            weights = core_weights.get(core_key, [])
            total_busy = sum(busy for busy, _weight in weights)
            if total_busy > 0:
                weight = sum(busy * w for busy, w in weights) / total_busy
            else:
                weight = 1.0
            busiest = max(thread_busy, default=0.0)
            expected_idle_s = (1.0 - busiest) * dt_s
            idle_fraction = cstates.idle_power_fraction(expected_idle_s)
            for cpu_id in core_cpus:
                cpu_cells, state_name = cstates.accounting_cells(
                    cpu_id, cpu_busy[cpu_id], dt_s, expected_idle_s)
                cells.extend(cpu_cells)
                current_states[cpu_id] = state_name
            activities.append(CoreActivity(
                frequency_hz=core_freqs[core_key],
                thread_busy=thread_busy,
                power_weight=weight,
                idle_power_fraction=idle_fraction,
            ))
        return activities, cells, current_states

    @staticmethod
    def _merged_events(events: Dict[Tuple[int, int], EventDelta]) -> EventDelta:
        """Machine-wide merge, exactly as ``TickRecord.machine_events``."""
        merged = EventDelta()
        for delta in events.values():
            for event, count in delta.items():
                merged[event] = merged.get(event, 0.0) + count
        return merged

    @staticmethod
    def _group_cells(raw_cells):
        """Group (container, index, addend) triples by cell, keeping order.

        Cells are independent memory locations, so replay order *across*
        cells is free; order of repeated addends *within* one cell (two
        assignments sharing a (pid, cpu) slot, or busy and idle residency
        both landing in C0) is exactly the order the tick loop folds
        them, preserved here so the float rounding matches.
        """
        grouped: Dict[Tuple[int, object], list] = {}
        order: List[list] = []
        for container, index, addend in raw_cells:
            group_key = (id(container), index)
            entry = grouped.get(group_key)
            if entry is None:
                entry = [container, index, []]
                grouped[group_key] = entry
                order.append(entry)
            entry[2].append(addend)
        singles = [(container, index, addends[0])
                   for container, index, addends in order
                   if len(addends) == 1]
        multis = [(container, index, tuple(addends))
                  for container, index, addends in order
                  if len(addends) > 1]
        return singles, multis

    # -- replay --------------------------------------------------------

    def replay(self, program: TickProgram, n_ticks: int) -> "TickRecord":
        """Advance *n_ticks* of the program; returns the final tick's record.

        With observers attached every tick materialises (and delivers) a
        full record over fully committed machine state, exactly like the
        tick-at-a-time loop.  Without observers only the final record is
        built and the accumulation cells are walked column-wise — one
        tight ``t += d`` loop per cell — which performs the identical
        additions in a cell-local order.
        """
        from repro.simcpu.machine import TickRecord

        machine = self._machine
        observers = machine._observers
        thermal = machine.thermal
        dt = program.dt_s
        target_c, decay, leak_per_c, ambient_c = thermal.batch_constants(
            program.dynamic_w, dt)
        temp = thermal.temperature_c
        energy = machine._energy_j
        time_s = machine._time_s
        base_w = program.base_w
        wakeup_w = program.wakeup_w
        single_cells = program.single_cells
        multi_cells = program.multi_cells

        for cpu_id, state_name in program.current_states.items():
            program.cstates.set_current_state(cpu_id, state_name)

        record = None
        if observers or n_ticks == 1:
            idle_w = program.idle_w
            cores_w = program.cores_w
            uncore_w = program.uncore_w
            dram_w = program.dram_w
            events = program.events
            cpu_busy = program.cpu_busy
            core_freqs = program.core_freqs
            machine_events = program.machine_events
            has_counters = program.has_counters
            bank = program.bank
            for _ in repeat(None, n_ticks):
                temp += (target_c - temp) * decay
                rise_c = temp - ambient_c
                leak = leak_per_c * (rise_c if rise_c > 0.0 else 0.0)
                thermal.temperature_c = temp
                energy += ((base_w + leak) + wakeup_w) * dt
                time_s += dt
                for container, index, addend in single_cells:
                    container[index] += addend
                for container, index, addends in multi_cells:
                    value = container[index]
                    for addend in addends:
                        value += addend
                    container[index] = value
                if has_counters:
                    bank.mark_dirty()
                machine._energy_j = energy
                machine._time_s = time_s
                record = TickRecord(
                    time_s=time_s,
                    dt_s=dt,
                    power=PowerBreakdown(
                        idle=idle_w, cores=cores_w, uncore=uncore_w,
                        dram=dram_w, leakage=leak, wakeup=wakeup_w),
                    events=events,
                    cpu_busy=cpu_busy,
                    core_frequencies_hz=core_freqs,
                )
                record.__dict__["_machine_events"] = machine_events
                machine.last_record = record
                for observer in observers:
                    observer(record)
            return record

        # No observers: nothing can see intermediate state, so integrate
        # the scalars tick-wise (thermal/energy/time are genuine
        # recurrences) and each counter cell in its own tight loop.
        leak = 0.0
        for _ in repeat(None, n_ticks):
            temp += (target_c - temp) * decay
            rise_c = temp - ambient_c
            leak = leak_per_c * (rise_c if rise_c > 0.0 else 0.0)
            energy += ((base_w + leak) + wakeup_w) * dt
            time_s += dt
        for container, index, addend in single_cells:
            value = container[index]
            for _ in repeat(None, n_ticks):
                value += addend
            container[index] = value
        for container, index, addends in multi_cells:
            value = container[index]
            for _ in repeat(None, n_ticks):
                for addend in addends:
                    value += addend
            container[index] = value

        thermal.temperature_c = temp
        machine._energy_j = energy
        machine._time_s = time_s
        if program.has_counters:
            program.bank.mark_dirty()
        record = TickRecord(
            time_s=time_s,
            dt_s=dt,
            power=PowerBreakdown(
                idle=program.idle_w, cores=program.cores_w,
                uncore=program.uncore_w, dram=program.dram_w,
                leakage=leak, wakeup=wakeup_w),
            events=program.events,
            cpu_busy=program.cpu_busy,
            core_frequencies_hz=program.core_freqs,
        )
        record.__dict__["_machine_events"] = program.machine_events
        machine.last_record = record
        return record

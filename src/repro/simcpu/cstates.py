"""C-state (idle state) model.

When a logical CPU has no runnable work the hardware parks it in an idle
state.  Deeper C-states draw less power but have a wake-up latency, so the
(simulated) idle governor picks the deepest state whose expected residency
amortises its entry cost — the same menu-governor trade-off Linux makes.

Per-state power is expressed as a fraction of the core's active power; the
residency bookkeeping feeds both the hidden ground-truth power model and the
``cstate-residency`` diagnostic counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.simcpu.spec import CpuSpec


@dataclass(frozen=True)
class CStateInfo:
    """Static parameters of one C-state."""

    name: str
    #: Fraction of a core's active power still drawn in this state.
    power_fraction: float
    #: Time to wake back up to C0, seconds.
    exit_latency_s: float
    #: Minimum expected idle period for the governor to pick this state.
    target_residency_s: float


#: Catalogue of known C-states; specs reference these by name.
CSTATE_CATALOG: Dict[str, CStateInfo] = {
    "C0": CStateInfo("C0", power_fraction=1.00, exit_latency_s=0.0,
                     target_residency_s=0.0),
    "C1": CStateInfo("C1", power_fraction=0.30, exit_latency_s=2e-6,
                     target_residency_s=4e-6),
    "C3": CStateInfo("C3", power_fraction=0.12, exit_latency_s=50e-6,
                     target_residency_s=150e-6),
    "C6": CStateInfo("C6", power_fraction=0.03, exit_latency_s=100e-6,
                     target_residency_s=400e-6),
}


class CStateController:
    """Chooses idle states and tracks per-logical-CPU residencies."""

    def __init__(self, spec: CpuSpec) -> None:
        self.spec = spec
        self._states: Tuple[CStateInfo, ...] = tuple(
            self._lookup(name) for name in spec.cstates)
        if self._states[0].name != "C0":
            raise ConfigurationError("the first C-state must be C0")
        self._residency_s: Dict[Tuple[int, str], float] = {
            (cpu_id, state.name): 0.0
            for cpu_id in range(spec.num_threads)
            for state in self._states
        }
        self._current: Dict[int, str] = {
            cpu_id: "C0" for cpu_id in range(spec.num_threads)}

    @staticmethod
    def _lookup(name: str) -> CStateInfo:
        try:
            return CSTATE_CATALOG[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown C-state {name!r}; known: {sorted(CSTATE_CATALOG)}"
            ) from None

    @property
    def states(self) -> Tuple[CStateInfo, ...]:
        """Supported states, shallowest first."""
        return self._states

    def deepest_for(self, expected_idle_s: float) -> CStateInfo:
        """Pick the deepest state whose target residency fits the idle window."""
        chosen = self._states[0]
        for state in self._states:
            if expected_idle_s >= state.target_residency_s:
                chosen = state
        return chosen

    def account(self, cpu_id: int, busy_fraction: float, dt_s: float,
                expected_idle_s: float) -> CStateInfo:
        """Record *dt_s* of wall time for one logical CPU.

        The busy fraction is spent in C0; the idle remainder is spent in the
        state the governor picks for *expected_idle_s*.  Returns that idle
        state (C0 when the CPU never idles in the window).
        """
        if not 0.0 <= busy_fraction <= 1.0:
            raise ConfigurationError(
                f"busy_fraction must be within [0, 1], got {busy_fraction}")
        self._residency_s[(cpu_id, "C0")] += busy_fraction * dt_s
        idle_s = (1.0 - busy_fraction) * dt_s
        if idle_s <= 0.0:
            self._current[cpu_id] = "C0"
            return self._states[0]
        state = self.deepest_for(expected_idle_s)
        if state.name == "C0":  # no deeper state available for this window
            self._residency_s[(cpu_id, "C0")] += idle_s
        else:
            self._residency_s[(cpu_id, state.name)] += idle_s
        self._current[cpu_id] = state.name
        return state

    def idle_power_fraction(self, expected_idle_s: float) -> float:
        """Power fraction of the state chosen for *expected_idle_s*."""
        return self.deepest_for(expected_idle_s).power_fraction

    def accounting_cells(self, cpu_id: int, busy_fraction: float, dt_s: float,
                         expected_idle_s: float):
        """Compile one :meth:`account` call into replayable residency cells.

        Returns ``(cells, state_name)`` where *cells* is a list of
        ``(residency_dict, key, addend)`` triples; adding every addend to
        its cell once, in order, performs exactly the float additions one
        :meth:`account` call would, and *state_name* is what
        :meth:`current_state` must report afterwards.  The batched engine
        replays the cells once per tick without re-running the governor
        decision, which is constant for a steady occupancy.
        """
        if not 0.0 <= busy_fraction <= 1.0:
            raise ConfigurationError(
                f"busy_fraction must be within [0, 1], got {busy_fraction}")
        residency = self._residency_s
        cells = [(residency, (cpu_id, "C0"), busy_fraction * dt_s)]
        idle_s = (1.0 - busy_fraction) * dt_s
        if idle_s <= 0.0:
            return cells, "C0"
        state = self.deepest_for(expected_idle_s)
        cells.append((residency, (cpu_id, state.name), idle_s))
        return cells, state.name

    def set_current_state(self, cpu_id: int, state_name: str) -> None:
        """Record the state *cpu_id* ended the last step in (batched path)."""
        self._current[cpu_id] = state_name

    def residency(self, cpu_id: int, state_name: str) -> float:
        """Accumulated seconds *cpu_id* has spent in *state_name*."""
        try:
            return self._residency_s[(cpu_id, state_name)]
        except KeyError:
            raise ConfigurationError(
                f"cpu{cpu_id} has no C-state {state_name!r}") from None

    def current_state(self, cpu_id: int) -> str:
        """Name of the state *cpu_id* occupied at the end of the last step."""
        return self._current[cpu_id]

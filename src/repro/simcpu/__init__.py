"""Simulated multi-core processor substrate.

This package replaces the physical machine of the paper's testbed: a
discrete-time CPU simulator with DVFS (P-states and a TurboBoost ladder),
SMT contention, C-states, a three-level cache hierarchy, generic hardware
performance counters and a hidden ground-truth wall-power model.
"""

from repro.simcpu.adaptive import (AdaptiveConfig, AdaptiveReport,
                                   AdaptiveSampler, PhaseDetector)
from repro.simcpu.attribution import TrueProcessPower, attribute_power
from repro.simcpu.caches import CacheBehaviour, CacheModel, MemoryProfile
from repro.simcpu.counters import (ALL_EVENTS, GENERIC_TRIO, CounterBank,
                                   EventDelta)
from repro.simcpu.cstates import CStateController, CStateInfo
from repro.simcpu.frequency import FrequencyDomain
from repro.simcpu.machine import Machine, ThreadAssignment, TickRecord
from repro.simcpu.pipeline import ExecutionRates, InstructionMix, PipelineModel
from repro.simcpu.power import CoreActivity, GroundTruthPower, PowerBreakdown
from repro.simcpu.spec import (PRESETS, CacheSpec, CpuSpec, PowerEnvelope,
                               amd_fx_8120, intel_core2duo_e6600,
                               intel_i3_2120, intel_xeon_smt, preset)
from repro.simcpu.topology import LogicalCpu, Topology

__all__ = [
    "ALL_EVENTS", "AdaptiveConfig", "AdaptiveReport", "AdaptiveSampler",
    "CStateController", "CStateInfo", "CacheBehaviour", "CacheModel",
    "CacheSpec", "CoreActivity", "CounterBank", "CpuSpec", "EventDelta",
    "ExecutionRates", "FrequencyDomain", "GENERIC_TRIO", "GroundTruthPower",
    "InstructionMix", "LogicalCpu", "Machine", "MemoryProfile", "PRESETS",
    "PhaseDetector", "PipelineModel", "PowerBreakdown", "PowerEnvelope",
    "ThreadAssignment", "TickRecord", "Topology", "TrueProcessPower",
    "amd_fx_8120", "attribute_power", "intel_core2duo_e6600",
    "intel_i3_2120", "intel_xeon_smt", "preset",
]

"""Ground-truth per-process power attribution.

The paper's tool estimates *per-process* power but can only be validated
against a wall meter, which sees the whole machine.  The simulator can do
better: it knows exactly which process caused which component of the
ground-truth power, so it can attribute true active power to each pid.

Attribution policy (active power only — the idle baseline and the
temperature-driven leakage are machine-level states no single process
owns):

* **core dynamic power** — within a physical core, the busiest hardware
  thread pays full rate and SMT siblings pay the second-thread factor
  (matching :mod:`repro.simcpu.power`); processes sharing one thread
  split its cost in proportion to their busy fractions,
* **wakeup power** — split across the core's processes by busy fraction,
* **uncore power** — the activity part by busy share, the traffic part
  by LLC-reference share,
* **DRAM power** — by LLC-miss share.

This module is part of the *hidden* substrate: estimation code must not
import it.  Tests and benchmarks use it as the per-process oracle.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.simcpu import counters as ev
from repro.simcpu.counters import EventDelta
from repro.simcpu.power import SMT_SECOND_THREAD_FACTOR, PowerBreakdown


def _thread_weights(thread_busy: Mapping[int, float]) -> Dict[int, float]:
    """Per-thread share weights within one core (SMT discount applied)."""
    ordered = sorted(thread_busy.items(), key=lambda item: -item[1])
    weights: Dict[int, float] = {}
    for index, (cpu_id, busy) in enumerate(ordered):
        factor = 1.0 if index == 0 else SMT_SECOND_THREAD_FACTOR
        weights[cpu_id] = factor * busy
    return weights


def attribute_power(
        breakdown: PowerBreakdown,
        events: Mapping[Tuple[int, int], EventDelta],
        cpu_busy: Mapping[int, float],
        core_groups: Sequence[Tuple[int, ...]],
) -> Dict[int, float]:
    """Split one step's active power across pids.

    ``events`` maps (pid, cpu_id) to the step's event deltas;
    ``core_groups`` lists each physical core's logical CPU ids.  Returns
    pid -> active watts during the step.  The attributed total equals the
    breakdown's cores + wakeup + uncore + dram (idle and leakage stay
    machine-level).
    """
    attributed: Dict[int, float] = defaultdict(float)
    if not events:
        return dict(attributed)

    # Per-(pid, cpu) busy share: processes on one thread split by their
    # contribution to that thread's busy fraction.
    pid_cpu_busy: Dict[Tuple[int, int], float] = {}
    cpu_total_cycles: Dict[int, float] = defaultdict(float)
    for (pid, cpu_id), delta in events.items():
        cpu_total_cycles[cpu_id] += delta.get(ev.CYCLES, 0.0)
    for (pid, cpu_id), delta in events.items():
        total = cpu_total_cycles[cpu_id]
        share = delta.get(ev.CYCLES, 0.0) / total if total > 0 else 0.0
        pid_cpu_busy[(pid, cpu_id)] = share * cpu_busy.get(cpu_id, 0.0)

    # -- cores + wakeup, per physical core ------------------------------
    core_power_total = breakdown.cores + breakdown.wakeup
    core_weight_sum = 0.0
    core_weights: List[Tuple[Tuple[int, ...], Dict[int, float]]] = []
    for group in core_groups:
        thread_busy = {cpu_id: cpu_busy.get(cpu_id, 0.0) for cpu_id in group}
        weights = _thread_weights(thread_busy)
        core_weights.append((group, weights))
        core_weight_sum += sum(weights.values())

    if core_weight_sum > 0:
        watt_per_weight = core_power_total / core_weight_sum
        for group, weights in core_weights:
            for cpu_id, weight in weights.items():
                if weight <= 0.0:
                    continue
                cpu_watts = weight * watt_per_weight
                busy = cpu_busy.get(cpu_id, 0.0)
                if busy <= 0.0:
                    continue
                for (pid, event_cpu), share in pid_cpu_busy.items():
                    if event_cpu == cpu_id:
                        attributed[pid] += cpu_watts * (share / busy)

    # -- uncore: half by busy share, half by LLC-reference share --------
    total_busy = sum(pid_cpu_busy.values())
    pid_refs: Dict[int, float] = defaultdict(float)
    pid_misses: Dict[int, float] = defaultdict(float)
    pid_busy: Dict[int, float] = defaultdict(float)
    for (pid, _cpu_id), delta in events.items():
        pid_refs[pid] += delta.get(ev.CACHE_REFERENCES, 0.0)
        pid_misses[pid] += delta.get(ev.CACHE_MISSES, 0.0)
    for (pid, cpu_id), share in pid_cpu_busy.items():
        pid_busy[pid] += share

    total_refs = sum(pid_refs.values())
    for pid in pid_busy:
        busy_part = (pid_busy[pid] / total_busy) if total_busy > 0 else 0.0
        ref_part = (pid_refs[pid] / total_refs) if total_refs > 0 else busy_part
        attributed[pid] += breakdown.uncore * 0.5 * (busy_part + ref_part)

    # -- DRAM: by LLC-miss share -----------------------------------------
    total_misses = sum(pid_misses.values())
    if total_misses > 0:
        for pid, misses in pid_misses.items():
            attributed[pid] += breakdown.dram * misses / total_misses
    elif total_busy > 0:
        for pid, busy in pid_busy.items():
            attributed[pid] += breakdown.dram * busy / total_busy

    return dict(attributed)


class TrueProcessPower:
    """Oracle observer: integrates ground-truth active energy per pid.

    Attach to a machine (or pass to ``Machine.add_observer``); read
    :meth:`energy_j` / :meth:`mean_power_w` afterwards.  For validation
    only — the estimation pipeline never sees these numbers.
    """

    def __init__(self, machine) -> None:
        self._machine = machine
        self._core_groups = [machine.topology.core_cpus(p, c)
                             for p, c in machine.topology.cores()]
        self._energy_j: Dict[int, float] = defaultdict(float)
        self._duration_s = 0.0
        machine.add_observer(self._on_tick)

    def _on_tick(self, record) -> None:
        shares = attribute_power(record.power, record.events,
                                 record.cpu_busy, self._core_groups)
        for pid, watts in shares.items():
            self._energy_j[pid] += watts * record.dt_s
        self._duration_s += record.dt_s

    def detach(self) -> None:
        """Stop observing."""
        self._machine.remove_observer(self._on_tick)

    @property
    def duration_s(self) -> float:
        """Observed simulated time."""
        return self._duration_s

    def energy_j(self, pid: int) -> float:
        """True active energy attributed to *pid* so far, joules."""
        return self._energy_j[pid]

    def mean_power_w(self, pid: int) -> float:
        """True mean active power of *pid* over the observation, watts."""
        if self._duration_s == 0.0:
            return 0.0
        return self._energy_j[pid] / self._duration_s

    def pids(self) -> Tuple[int, ...]:
        """Pids with attributed energy, ascending."""
        return tuple(sorted(self._energy_j))

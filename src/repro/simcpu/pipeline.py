"""Core pipeline model: instruction mixes, IPC and SMT contention.

Instead of simulating micro-ops, each workload declares an
:class:`InstructionMix` and the pipeline model derives an effective
instructions-per-cycle figure from it:

* the issue-side IPC depends on the mix (FP/SIMD-heavy code issues slower
  than simple integer code, branchy code pays misprediction flushes),
* memory stalls from the cache model add cycles per instruction,
* an SMT sibling running on the same physical core contends for issue
  slots, reducing both threads' throughput — but raising the *core's*
  combined throughput, which is exactly the effect that makes SMT
  power-efficient and SMT-oblivious power models inaccurate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.simcpu.caches import CacheBehaviour
from repro.simcpu.spec import CpuSpec

#: Pipeline flush penalty of one mispredicted branch, cycles.
BRANCH_MISS_PENALTY_CYCLES = 15

#: Throughput retained by each thread when its SMT sibling is fully busy
#: (two threads at 0.62 each give the core a 1.24x combined speed-up).
SMT_THROUGHPUT_FACTOR = 0.62


@dataclass(frozen=True)
class InstructionMix:
    """Composition of a workload's dynamic instruction stream.

    Fractions are of retired instructions and must sum to <= 1; the
    remainder is plain integer ALU work.  ``branch_miss_rate`` is the
    fraction of branches mispredicted.
    """

    fp_fraction: float = 0.0
    simd_fraction: float = 0.0
    branch_fraction: float = 0.15
    branch_miss_rate: float = 0.03

    def __post_init__(self) -> None:
        for name in ("fp_fraction", "simd_fraction", "branch_fraction",
                     "branch_miss_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be within [0, 1]")
        if self.fp_fraction + self.simd_fraction + self.branch_fraction > 1.0:
            raise ConfigurationError("instruction-class fractions exceed 1")

    @property
    def int_fraction(self) -> float:
        """Plain integer ALU fraction (the remainder)."""
        return 1.0 - self.fp_fraction - self.simd_fraction - self.branch_fraction

    def issue_ipc_factor(self) -> float:
        """Relative issue throughput of this mix (1.0 = pure integer code).

        FP issues at ~0.7x and SIMD at ~0.55x of the integer rate on the
        modelled microarchitecture.
        """
        return (self.int_fraction + self.branch_fraction
                + 0.7 * self.fp_fraction + 0.55 * self.simd_fraction)

    def power_weight(self) -> float:
        """Relative switching activity per instruction (1.0 = integer).

        Wide FP/SIMD units burn more energy per retired instruction — one of
        the ground-truth effects a 3-counter model cannot see.
        """
        return (1.0 + 0.5 * self.fp_fraction + 1.1 * self.simd_fraction)


@dataclass(frozen=True)
class ExecutionRates:
    """Per-cycle retirement and event rates of one running thread."""

    #: Instructions retired per core cycle.
    ipc: float
    #: Branch instructions per instruction.
    branches_per_instruction: float
    #: Mispredicted branches per instruction.
    branch_misses_per_instruction: float
    #: Fraction of cycles stalled on memory (backend).
    backend_stall_fraction: float
    #: Fraction of cycles stalled on branch flushes (frontend).
    frontend_stall_fraction: float


class PipelineModel:
    """Turns (mix, cache behaviour, SMT pressure) into execution rates."""

    def __init__(self, spec: CpuSpec) -> None:
        self.spec = spec

    def rates(self, mix: InstructionMix, cache: CacheBehaviour,
              sibling_busy_fraction: float = 0.0) -> ExecutionRates:
        """Effective execution rates of one thread.

        *sibling_busy_fraction* in [0, 1] is how busy the SMT sibling thread
        of the same physical core is during the interval; it linearly
        interpolates between full-speed and the contended
        :data:`SMT_THROUGHPUT_FACTOR` throughput.
        """
        if not 0.0 <= sibling_busy_fraction <= 1.0:
            raise ConfigurationError(
                "sibling_busy_fraction must be within [0, 1], got "
                f"{sibling_busy_fraction}")
        issue_ipc = self.spec.base_ipc * mix.issue_ipc_factor()
        if self.spec.smt_enabled and sibling_busy_fraction > 0.0:
            contention = 1.0 - sibling_busy_fraction * (1.0 - SMT_THROUGHPUT_FACTOR)
            issue_ipc *= contention

        branch_flush = (mix.branch_fraction * mix.branch_miss_rate
                        * BRANCH_MISS_PENALTY_CYCLES)
        # Cycles per instruction = issue time + memory stalls + flushes.
        cpi = 1.0 / issue_ipc + cache.stall_cycles + branch_flush
        ipc = 1.0 / cpi
        return ExecutionRates(
            ipc=ipc,
            branches_per_instruction=mix.branch_fraction,
            branch_misses_per_instruction=mix.branch_fraction * mix.branch_miss_rate,
            backend_stall_fraction=min(1.0, cache.stall_cycles * ipc),
            frontend_stall_fraction=min(1.0, branch_flush * ipc),
        )

    def instructions_in(self, rates: ExecutionRates, frequency_hz: int,
                        busy_seconds: float) -> float:
        """Instructions retired during *busy_seconds* of C0 time at *frequency_hz*."""
        if busy_seconds < 0:
            raise ConfigurationError("busy_seconds must be >= 0")
        return rates.ipc * frequency_hz * busy_seconds

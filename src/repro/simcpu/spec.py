"""CPU specifications and presets.

A :class:`CpuSpec` is a static description of a simulated processor: its
topology (packages, cores, SMT threads), frequency ladder (P-states plus an
optional TurboBoost ladder), cache hierarchy and power envelope.  The presets
at the bottom of this module mirror the processors discussed in the paper:

* :func:`intel_i3_2120` — the evaluation machine of Table 1,
* :func:`intel_core2duo_e6600` — the "simple architecture" used in the
  Bertran et al. comparison (no SMT, no TurboBoost),
* :func:`intel_xeon_smt` — an SMT-heavy server part for the
  hyperthread-aware (HAPPY) comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError, FrequencyError
from repro.units import ghz, kib, mib


@dataclass(frozen=True)
class CacheSpec:
    """Geometry of one cache level.

    ``size_bytes`` is per-instance (per core for L1/L2, per package for a
    shared L3), ``line_bytes`` the cache-line size, ``shared`` whether the
    instance is shared by all cores of a package, and ``latency_cycles`` the
    access latency used by the pipeline model.
    """

    level: int
    size_bytes: int
    line_bytes: int = 64
    associativity: int = 8
    shared: bool = False
    latency_cycles: int = 4

    def __post_init__(self) -> None:
        if self.level < 1 or self.level > 3:
            raise ConfigurationError(f"cache level must be 1..3, got {self.level}")
        if self.size_bytes <= 0:
            raise ConfigurationError("cache size must be positive")
        if self.line_bytes <= 0 or self.size_bytes % self.line_bytes:
            raise ConfigurationError("cache size must be a multiple of the line size")
        if self.latency_cycles <= 0:
            raise ConfigurationError("cache latency must be positive")

    @property
    def lines(self) -> int:
        """Number of cache lines in one instance of this cache."""
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class PowerEnvelope:
    """Static power characteristics of the silicon.

    These drive the *hidden* ground-truth power model
    (:mod:`repro.simcpu.power`).  ``idle_w`` is the wall power of the whole
    machine with the CPU fully idle at the lowest P-state — the constant the
    paper's regression isolates (31.48 W on the i3-2120).
    """

    tdp_w: float
    idle_w: float
    #: Dynamic power of one fully-busy core at base frequency and nominal
    #: voltage, in watts.
    core_active_w: float
    #: Uncore/package power that scales with any package activity.
    uncore_active_w: float
    #: Additional watts drawn per 10^9 memory-controller transfers per second.
    dram_w_per_gtps: float

    def __post_init__(self) -> None:
        for name in ("tdp_w", "idle_w", "core_active_w", "uncore_active_w",
                     "dram_w_per_gtps"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True)
class CpuSpec:
    """Full static description of a simulated processor."""

    vendor: str
    model: str
    packages: int
    cores_per_package: int
    threads_per_core: int
    #: Sustained P-state frequencies in hertz, ascending.
    frequencies_hz: Tuple[int, ...]
    #: TurboBoost ladder in hertz (empty when TurboBoost is absent),
    #: ascending and strictly above the highest sustained frequency.
    turbo_frequencies_hz: Tuple[int, ...]
    caches: Tuple[CacheSpec, ...]
    power: PowerEnvelope
    #: Base instructions-per-cycle of one thread running alone on a core.
    base_ipc: float = 1.6
    #: Number of programmable HPC slots per logical CPU (drives perf
    #: multiplexing).
    counter_slots: int = 4
    #: Supported C-states, deepest last, e.g. ("C0", "C1", "C3", "C6").
    cstates: Tuple[str, ...] = ("C0", "C1")

    def __post_init__(self) -> None:
        if self.packages < 1 or self.cores_per_package < 1:
            raise ConfigurationError("at least one package and one core required")
        if self.threads_per_core not in (1, 2, 4):
            raise ConfigurationError("threads_per_core must be 1, 2 or 4")
        if not self.frequencies_hz:
            raise ConfigurationError("at least one sustained frequency required")
        if list(self.frequencies_hz) != sorted(set(self.frequencies_hz)):
            raise ConfigurationError("frequencies must be ascending and unique")
        if self.turbo_frequencies_hz:
            if list(self.turbo_frequencies_hz) != sorted(set(self.turbo_frequencies_hz)):
                raise ConfigurationError("turbo frequencies must be ascending and unique")
            if self.turbo_frequencies_hz[0] <= self.frequencies_hz[-1]:
                raise ConfigurationError(
                    "turbo frequencies must exceed the highest sustained frequency")
        if self.base_ipc <= 0:
            raise ConfigurationError("base_ipc must be positive")
        if self.counter_slots < 1:
            raise ConfigurationError("at least one counter slot required")
        levels = [cache.level for cache in self.caches]
        if levels != sorted(levels) or len(set(levels)) != len(levels):
            raise ConfigurationError("caches must be ordered by unique level")

    # -- topology ----------------------------------------------------------

    @property
    def num_cores(self) -> int:
        """Total physical cores across all packages."""
        return self.packages * self.cores_per_package

    @property
    def num_threads(self) -> int:
        """Total logical CPUs (hardware threads) across all packages."""
        return self.num_cores * self.threads_per_core

    @property
    def smt_enabled(self) -> bool:
        """Whether Simultaneous Multi-Threading (HyperThreading) is present."""
        return self.threads_per_core > 1

    @property
    def turbo_enabled(self) -> bool:
        """Whether a TurboBoost ladder is present."""
        return bool(self.turbo_frequencies_hz)

    @property
    def dvfs_enabled(self) -> bool:
        """Whether more than one sustained P-state exists (SpeedStep)."""
        return len(self.frequencies_hz) > 1

    # -- frequencies -------------------------------------------------------

    @property
    def all_frequencies_hz(self) -> Tuple[int, ...]:
        """Sustained plus turbo frequencies, ascending."""
        return self.frequencies_hz + self.turbo_frequencies_hz

    @property
    def min_frequency_hz(self) -> int:
        """Lowest sustained frequency."""
        return self.frequencies_hz[0]

    @property
    def max_frequency_hz(self) -> int:
        """Highest sustained (non-turbo) frequency."""
        return self.frequencies_hz[-1]

    def validate_frequency(self, frequency_hz: int) -> int:
        """Return *frequency_hz* if supported, else raise FrequencyError."""
        if frequency_hz not in self.all_frequencies_hz:
            raise FrequencyError(
                f"{frequency_hz} Hz unsupported on {self.model}; "
                f"supported: {list(self.all_frequencies_hz)}")
        return frequency_hz

    # -- caches ------------------------------------------------------------

    def cache(self, level: int) -> CacheSpec:
        """Return the cache spec for *level*, raising if absent."""
        for spec in self.caches:
            if spec.level == level:
                return spec
        raise ConfigurationError(f"{self.model} has no L{level} cache")

    def specification_table(self) -> List[Tuple[str, str]]:
        """Render the Table 1 rows of the paper for this processor."""
        from repro.units import format_bytes, format_frequency

        def flag(enabled: bool) -> str:
            return "yes" if enabled else "no"

        rows = [
            ("Vendor", self.vendor),
            ("Processor", self.model.split()[0]),
            ("Model", self.model.split()[-1]),
            ("Design", f"{self.num_threads} threads"),
            ("Frequency", format_frequency(self.max_frequency_hz)),
            ("TDP", f"{self.power.tdp_w:.0f} W"),
            ("SpeedStep (DVFS)", flag(self.dvfs_enabled)),
            ("HyperThreading (SMT)", flag(self.smt_enabled)),
            ("TurboBoost (Overclocking)", flag(self.turbo_enabled)),
            ("C-states (Idle states)", flag(len(self.cstates) > 1)),
        ]
        for cache in self.caches:
            suffix = "" if cache.shared else " / core"
            rows.append((f"L{cache.level} cache",
                         f"{format_bytes(cache.size_bytes)}{suffix}"))
        return rows


def _dvfs_ladder(min_ghz: float, max_ghz: float, step_ghz: float) -> Tuple[int, ...]:
    """Build an ascending P-state ladder from *min_ghz* to *max_ghz*."""
    freqs = []
    value = min_ghz
    while value < max_ghz - 1e-9:
        freqs.append(ghz(value))
        value += step_ghz
    freqs.append(ghz(max_ghz))
    return tuple(freqs)


def intel_i3_2120() -> CpuSpec:
    """The paper's evaluation machine (Table 1): Intel Core i3-2120.

    2 cores x 2 HyperThreads = 4 threads, 3.30 GHz, TDP 65 W, SpeedStep and
    HyperThreading present, **no** TurboBoost, C-states present, 64 KB L1 and
    256 KB L2 per core, 3 MB shared L3.
    """
    return CpuSpec(
        vendor="Intel",
        model="i3 2120",
        packages=1,
        cores_per_package=2,
        threads_per_core=2,
        frequencies_hz=_dvfs_ladder(1.6, 3.3, 0.2),
        turbo_frequencies_hz=(),
        caches=(
            CacheSpec(level=1, size_bytes=kib(64), latency_cycles=4),
            CacheSpec(level=2, size_bytes=kib(256), latency_cycles=12),
            CacheSpec(level=3, size_bytes=mib(3), shared=True, latency_cycles=30),
        ),
        power=PowerEnvelope(
            tdp_w=65.0,
            idle_w=31.48,
            core_active_w=11.0,
            uncore_active_w=3.5,
            dram_w_per_gtps=18.0,
        ),
        base_ipc=1.6,
        counter_slots=4,
        cstates=("C0", "C1", "C3", "C6"),
    )


def intel_core2duo_e6600() -> CpuSpec:
    """A "simple architecture" akin to the Bertran et al. testbed.

    Intel Core 2 Duo: 2 cores, no HyperThreading, no TurboBoost — the paper
    notes decomposable models reach their best accuracy on such parts.
    """
    return CpuSpec(
        vendor="Intel",
        model="Core2Duo E6600",
        packages=1,
        cores_per_package=2,
        threads_per_core=1,
        frequencies_hz=_dvfs_ladder(1.6, 2.4, 0.2),
        turbo_frequencies_hz=(),
        caches=(
            CacheSpec(level=1, size_bytes=kib(64), latency_cycles=3),
            CacheSpec(level=2, size_bytes=mib(4), shared=True, latency_cycles=14),
        ),
        power=PowerEnvelope(
            tdp_w=65.0,
            idle_w=42.0,
            core_active_w=14.0,
            uncore_active_w=2.0,
            dram_w_per_gtps=14.0,
        ),
        base_ipc=1.3,
        counter_slots=2,
        cstates=("C0", "C1"),
    )


def intel_xeon_smt() -> CpuSpec:
    """An SMT-heavy server part for the HAPPY (hyperthread-aware) comparison.

    4 cores x 2 threads with TurboBoost, mirroring the class of machines used
    by Zhai et al. for hyperthread-aware power profiling.
    """
    return CpuSpec(
        vendor="Intel",
        model="Xeon E5-1620",
        packages=1,
        cores_per_package=4,
        threads_per_core=2,
        frequencies_hz=_dvfs_ladder(1.2, 3.6, 0.4),
        turbo_frequencies_hz=(ghz(3.7), ghz(3.8)),
        caches=(
            CacheSpec(level=1, size_bytes=kib(64), latency_cycles=4),
            CacheSpec(level=2, size_bytes=kib(256), latency_cycles=12),
            CacheSpec(level=3, size_bytes=mib(10), shared=True, latency_cycles=34),
        ),
        power=PowerEnvelope(
            tdp_w=130.0,
            idle_w=55.0,
            core_active_w=16.0,
            uncore_active_w=6.0,
            dram_w_per_gtps=22.0,
        ),
        base_ipc=1.8,
        counter_slots=4,
        cstates=("C0", "C1", "C3", "C6"),
    )


def amd_fx_8120() -> CpuSpec:
    """An AMD part, for the portability half of the paper's claim.

    The paper targets "any modern architectures (i.e. Intel, AMD)": AMD
    parts expose the same *generic* perf events but no RAPL, so the
    counter-based pipeline must work here unchanged while RAPL-based
    tooling cannot.  Modelled on the FX-8120: 4 modules x 2 clustered
    threads (treated as SMT pairs), no TurboBoost modelled.
    """
    return CpuSpec(
        vendor="AMD",
        model="FX 8120",
        packages=1,
        cores_per_package=4,
        threads_per_core=2,
        frequencies_hz=_dvfs_ladder(1.4, 3.1, 0.3),
        turbo_frequencies_hz=(),
        caches=(
            CacheSpec(level=1, size_bytes=kib(16), latency_cycles=4),
            CacheSpec(level=2, size_bytes=mib(2), latency_cycles=20),
            CacheSpec(level=3, size_bytes=mib(8), shared=True,
                      latency_cycles=40),
        ),
        power=PowerEnvelope(
            tdp_w=125.0,
            idle_w=48.0,
            core_active_w=15.0,
            uncore_active_w=5.0,
            dram_w_per_gtps=20.0,
        ),
        base_ipc=1.2,
        counter_slots=6,
        cstates=("C0", "C1", "C6"),
    )


#: Registry of named presets, for CLI/example lookups.
PRESETS: Dict[str, "CpuSpecFactory"] = {}


class CpuSpecFactory:
    """Callable wrapper that registers a preset under a stable name."""

    def __init__(self, name: str, factory) -> None:
        self.name = name
        self._factory = factory
        PRESETS[name] = self

    def __call__(self) -> CpuSpec:
        return self._factory()


i3_2120 = CpuSpecFactory("i3-2120", intel_i3_2120)
core2duo_e6600 = CpuSpecFactory("core2duo-e6600", intel_core2duo_e6600)
xeon_smt = CpuSpecFactory("xeon-e5-1620", intel_xeon_smt)
fx_8120 = CpuSpecFactory("amd-fx-8120", amd_fx_8120)


def preset(name: str) -> CpuSpec:
    """Instantiate a preset CPU spec by registry name."""
    try:
        return PRESETS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown CPU preset {name!r}; available: {sorted(PRESETS)}") from None

"""Processor topology: packages, cores and logical CPUs.

Logical CPUs are numbered the way Linux numbers them on Intel parts: first
one thread of every core (0..num_cores-1), then the SMT siblings
(num_cores..2*num_cores-1).  This matters for schedulers that prefer to
spread load across physical cores before doubling up on hyperthreads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import TopologyError
from repro.simcpu.spec import CpuSpec


@dataclass(frozen=True)
class LogicalCpu:
    """One hardware thread: its id and physical placement."""

    cpu_id: int
    package_id: int
    core_id: int
    thread_id: int

    def __str__(self) -> str:
        return (f"cpu{self.cpu_id}(pkg{self.package_id}/"
                f"core{self.core_id}/smt{self.thread_id})")


class Topology:
    """Enumerates logical CPUs and sibling relationships for a CpuSpec.

    All relationships are precomputed at construction: the topology is
    immutable and its lookups sit on the simulator's per-tick hot path
    (schedulers and the machine consult siblings/core membership for
    every assignment of every step).
    """

    def __init__(self, spec: CpuSpec) -> None:
        self.spec = spec
        self._cpus: List[LogicalCpu] = []
        num_cores = spec.num_cores
        for cpu_id in range(spec.num_threads):
            thread_id, flat_core = divmod(cpu_id, num_cores)
            package_id, core_id = divmod(flat_core, spec.cores_per_package)
            self._cpus.append(LogicalCpu(
                cpu_id=cpu_id,
                package_id=package_id,
                core_id=core_id,
                thread_id=thread_id,
            ))
        self._cpu_ids: Tuple[int, ...] = tuple(
            cpu.cpu_id for cpu in self._cpus)
        core_members: Dict[Tuple[int, int], List[int]] = {}
        package_members: Dict[int, List[int]] = {}
        for cpu in self._cpus:
            core_members.setdefault(
                (cpu.package_id, cpu.core_id), []).append(cpu.cpu_id)
            package_members.setdefault(cpu.package_id, []).append(cpu.cpu_id)
        self._core_cpus: Dict[Tuple[int, int], Tuple[int, ...]] = {
            key: tuple(members) for key, members in core_members.items()}
        self._package_cpus: Dict[int, Tuple[int, ...]] = {
            key: tuple(members) for key, members in package_members.items()}
        self._cores: Tuple[Tuple[int, int], ...] = tuple(core_members)
        self._siblings: Dict[int, Tuple[int, ...]] = {
            cpu.cpu_id: self._core_cpus[(cpu.package_id, cpu.core_id)]
            for cpu in self._cpus}

    def __len__(self) -> int:
        return len(self._cpus)

    def __iter__(self):
        return iter(self._cpus)

    def cpu(self, cpu_id: int) -> LogicalCpu:
        """Return the logical CPU with id *cpu_id*."""
        if not 0 <= cpu_id < len(self._cpus):
            raise TopologyError(
                f"cpu{cpu_id} out of range (0..{len(self._cpus) - 1})")
        return self._cpus[cpu_id]

    @property
    def cpu_ids(self) -> Tuple[int, ...]:
        """All logical CPU ids, ascending."""
        return self._cpu_ids

    def siblings(self, cpu_id: int) -> Tuple[int, ...]:
        """Logical CPU ids sharing the same physical core as *cpu_id*.

        Includes *cpu_id* itself; on a non-SMT part this is a 1-tuple.
        """
        try:
            return self._siblings[cpu_id]
        except KeyError:
            raise TopologyError(
                f"cpu{cpu_id} out of range (0..{len(self._cpus) - 1})"
            ) from None

    def core_cpus(self, package_id: int, core_id: int) -> Tuple[int, ...]:
        """Logical CPU ids belonging to a given physical core."""
        try:
            return self._core_cpus[(package_id, core_id)]
        except KeyError:
            raise TopologyError(
                f"no such core pkg{package_id}/core{core_id}") from None

    def package_cpus(self, package_id: int) -> Tuple[int, ...]:
        """Logical CPU ids belonging to a given package."""
        try:
            return self._package_cpus[package_id]
        except KeyError:
            raise TopologyError(f"no such package {package_id}") from None

    def cores(self) -> List[Tuple[int, int]]:
        """All (package_id, core_id) pairs, in order."""
        return list(self._cores)

    def primary_thread(self, cpu_id: int) -> bool:
        """Whether *cpu_id* is the first (SMT-0) thread of its core."""
        return self.cpu(cpu_id).thread_id == 0

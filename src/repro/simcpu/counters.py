"""Hardware performance counter (HPC) bookkeeping.

The simulated silicon exposes the *generic* events of ``perf_event_open`` —
the ones the paper selects for portability across Intel and AMD parts
(``instructions``, ``cache-references``, ``cache-misses``) plus the rest of
the generic set for baselines and ablations.

The machine emits one :class:`EventDelta` per (process, logical CPU) per
simulation step; the :class:`CounterBank` accumulates those into the
per-process, per-CPU and machine-wide totals that the perf layer
(:mod:`repro.perf`) reads through its counter abstraction.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping, Tuple

from repro.errors import ConfigurationError

# Generic hardware events (perf_event_open PERF_TYPE_HARDWARE).
CYCLES = "cycles"
INSTRUCTIONS = "instructions"
CACHE_REFERENCES = "cache-references"
CACHE_MISSES = "cache-misses"
BRANCHES = "branches"
BRANCH_MISSES = "branch-misses"
BUS_CYCLES = "bus-cycles"
STALLED_CYCLES_FRONTEND = "stalled-cycles-frontend"
STALLED_CYCLES_BACKEND = "stalled-cycles-backend"
REF_CYCLES = "ref-cycles"

# Generic cache events (PERF_TYPE_HW_CACHE), the subset we model.
L1_DCACHE_LOADS = "L1-dcache-loads"
L1_DCACHE_LOAD_MISSES = "L1-dcache-load-misses"
LLC_LOADS = "LLC-loads"
LLC_LOAD_MISSES = "LLC-load-misses"

#: Every event the simulated PMU can produce.
ALL_EVENTS: Tuple[str, ...] = (
    CYCLES, INSTRUCTIONS, CACHE_REFERENCES, CACHE_MISSES, BRANCHES,
    BRANCH_MISSES, BUS_CYCLES, STALLED_CYCLES_FRONTEND,
    STALLED_CYCLES_BACKEND, REF_CYCLES, L1_DCACHE_LOADS,
    L1_DCACHE_LOAD_MISSES, LLC_LOADS, LLC_LOAD_MISSES,
)

#: The trio the paper identifies as most correlated with power on
#: multi-core systems (Section 3).
GENERIC_TRIO: Tuple[str, ...] = (INSTRUCTIONS, CACHE_REFERENCES, CACHE_MISSES)

#: Frozen-set view of :data:`ALL_EVENTS` for O(1) membership tests; the
#: accumulation paths run once per (process, cpu, event) per tick.
KNOWN_EVENTS = frozenset(ALL_EVENTS)


def _check_events(delta: Mapping[str, float]) -> None:
    """Reject deltas naming events the simulated PMU cannot produce."""
    if not KNOWN_EVENTS.issuperset(delta):
        unknown = sorted(set(delta) - KNOWN_EVENTS)[0]
        raise ConfigurationError(f"unknown HPC event {unknown!r}")

#: Events counted per logical CPU even with no process attached.
PER_CPU_EVENTS: Tuple[str, ...] = (CYCLES, REF_CYCLES, BUS_CYCLES)


class EventDelta(Dict[str, float]):
    """Event counts produced by one (process, cpu) during one step."""

    def add(self, event: str, count: float) -> None:
        """Accumulate *count* occurrences of *event* (must be >= 0)."""
        if count < 0:
            raise ConfigurationError(f"negative event count for {event}: {count}")
        self[event] = self.get(event, 0.0) + count

    def merged_with(self, other: Mapping[str, float]) -> "EventDelta":
        """Return a new delta that is the sum of this one and *other*."""
        merged = EventDelta(self)
        for event, count in other.items():
            merged.add(event, count)
        return merged


class CounterBank:
    """Accumulated HPC totals, indexed four ways.

    * per (pid, cpu, event) — what a per-process, per-CPU perf counter reads,
    * per (cpu, event)      — what a CPU-wide counter reads,
    * per (pid, event)      — what an inherit-style per-process counter reads,
    * machine-wide (event)  — what a system-wide counter reads.

    Writes land once per tick per (process, cpu) on the simulator's hot
    path, while reads happen at most once per sampling window, so the
    bank accumulates into per-(pid, cpu) buckets only and materialises
    the three aggregate indexes lazily on first read after a write.
    """

    def __init__(self) -> None:
        self._pair_totals: Dict[Tuple[int, int], Dict[str, float]] = {}
        self._cpu_only: Dict[int, Dict[str, float]] = {}
        self._by_pid_cpu: Dict[Tuple[int, int, str], float] = {}
        self._by_cpu: Dict[Tuple[int, str], float] = defaultdict(float)
        self._by_pid: Dict[Tuple[int, str], float] = defaultdict(float)
        self._machine: Dict[str, float] = defaultdict(float)
        self._dirty = False

    def record(self, pid: int, cpu_id: int, delta: Mapping[str, float]) -> None:
        """Fold one (process, cpu) step delta into the bank."""
        _check_events(delta)
        bucket = self._pair_totals.get((pid, cpu_id))
        if bucket is None:
            bucket = self._pair_totals[(pid, cpu_id)] = {}
        for event, count in delta.items():
            bucket[event] = bucket.get(event, 0.0) + count
        self._dirty = True

    def record_cpu_only(self, cpu_id: int, delta: Mapping[str, float]) -> None:
        """Fold CPU-level activity not attributable to any process."""
        _check_events(delta)
        bucket = self._cpu_only.get(cpu_id)
        if bucket is None:
            bucket = self._cpu_only[cpu_id] = {}
        for event, count in delta.items():
            bucket[event] = bucket.get(event, 0.0) + count
        self._dirty = True

    def _refresh(self) -> None:
        """Rebuild the aggregate indexes from the accumulation buckets."""
        by_pid_cpu: Dict[Tuple[int, int, str], float] = {}
        by_cpu: Dict[Tuple[int, str], float] = defaultdict(float)
        by_pid: Dict[Tuple[int, str], float] = defaultdict(float)
        machine: Dict[str, float] = defaultdict(float)
        for (pid, cpu_id), bucket in self._pair_totals.items():
            for event, count in bucket.items():
                by_pid_cpu[(pid, cpu_id, event)] = count
                by_cpu[(cpu_id, event)] += count
                by_pid[(pid, event)] += count
                machine[event] += count
        for cpu_id, bucket in self._cpu_only.items():
            for event, count in bucket.items():
                by_cpu[(cpu_id, event)] += count
                machine[event] += count
        self._by_pid_cpu = by_pid_cpu
        self._by_cpu = by_cpu
        self._by_pid = by_pid
        self._machine = machine
        self._dirty = False

    # -- reads ---------------------------------------------------------

    def read(self, event: str, pid: int = -1, cpu_id: int = -1) -> float:
        """Read a counter the way perf does.

        ``pid == -1`` means "any process" and ``cpu_id == -1`` means "any
        CPU"; the four combinations map onto the four indexes.
        """
        if event not in KNOWN_EVENTS:
            raise ConfigurationError(f"unknown HPC event {event!r}")
        if self._dirty:
            self._refresh()
        if pid >= 0 and cpu_id >= 0:
            return self._by_pid_cpu.get((pid, cpu_id, event), 0.0)
        if pid >= 0:
            return self._by_pid[(pid, event)]
        if cpu_id >= 0:
            return self._by_cpu[(cpu_id, event)]
        return self._machine[event]

    def machine_totals(self, events: Iterable[str] = ALL_EVENTS) -> Dict[str, float]:
        """Machine-wide totals for *events* as a plain dict."""
        return {event: self.read(event) for event in events}

    def pids(self) -> Tuple[int, ...]:
        """All process ids that ever recorded activity, ascending."""
        return tuple(sorted({pid for (pid, _cpu) in self._pair_totals}))

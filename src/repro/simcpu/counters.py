"""Hardware performance counter (HPC) bookkeeping.

The simulated silicon exposes the *generic* events of ``perf_event_open`` —
the ones the paper selects for portability across Intel and AMD parts
(``instructions``, ``cache-references``, ``cache-misses``) plus the rest of
the generic set for baselines and ablations.

The machine emits one :class:`EventDelta` per (process, logical CPU) per
simulation step; the :class:`CounterBank` accumulates those into the
per-process, per-CPU and machine-wide totals that the perf layer
(:mod:`repro.perf`) reads through its counter abstraction.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping, Tuple

from repro.errors import ConfigurationError

# Generic hardware events (perf_event_open PERF_TYPE_HARDWARE).
CYCLES = "cycles"
INSTRUCTIONS = "instructions"
CACHE_REFERENCES = "cache-references"
CACHE_MISSES = "cache-misses"
BRANCHES = "branches"
BRANCH_MISSES = "branch-misses"
BUS_CYCLES = "bus-cycles"
STALLED_CYCLES_FRONTEND = "stalled-cycles-frontend"
STALLED_CYCLES_BACKEND = "stalled-cycles-backend"
REF_CYCLES = "ref-cycles"

# Generic cache events (PERF_TYPE_HW_CACHE), the subset we model.
L1_DCACHE_LOADS = "L1-dcache-loads"
L1_DCACHE_LOAD_MISSES = "L1-dcache-load-misses"
LLC_LOADS = "LLC-loads"
LLC_LOAD_MISSES = "LLC-load-misses"

#: Every event the simulated PMU can produce.
ALL_EVENTS: Tuple[str, ...] = (
    CYCLES, INSTRUCTIONS, CACHE_REFERENCES, CACHE_MISSES, BRANCHES,
    BRANCH_MISSES, BUS_CYCLES, STALLED_CYCLES_FRONTEND,
    STALLED_CYCLES_BACKEND, REF_CYCLES, L1_DCACHE_LOADS,
    L1_DCACHE_LOAD_MISSES, LLC_LOADS, LLC_LOAD_MISSES,
)

#: The trio the paper identifies as most correlated with power on
#: multi-core systems (Section 3).
GENERIC_TRIO: Tuple[str, ...] = (INSTRUCTIONS, CACHE_REFERENCES, CACHE_MISSES)

#: Events counted per logical CPU even with no process attached.
PER_CPU_EVENTS: Tuple[str, ...] = (CYCLES, REF_CYCLES, BUS_CYCLES)


class EventDelta(Dict[str, float]):
    """Event counts produced by one (process, cpu) during one step."""

    def add(self, event: str, count: float) -> None:
        """Accumulate *count* occurrences of *event* (must be >= 0)."""
        if count < 0:
            raise ConfigurationError(f"negative event count for {event}: {count}")
        self[event] = self.get(event, 0.0) + count

    def merged_with(self, other: Mapping[str, float]) -> "EventDelta":
        """Return a new delta that is the sum of this one and *other*."""
        merged = EventDelta(self)
        for event, count in other.items():
            merged.add(event, count)
        return merged


class CounterBank:
    """Accumulated HPC totals, indexed three ways.

    * per (pid, cpu, event) — what a per-process, per-CPU perf counter reads,
    * per (cpu, event)      — what a CPU-wide counter reads,
    * per (pid, event)      — what an inherit-style per-process counter reads,
    * machine-wide (event)  — what a system-wide counter reads.
    """

    def __init__(self) -> None:
        self._by_pid_cpu: Dict[Tuple[int, int, str], float] = defaultdict(float)
        self._by_cpu: Dict[Tuple[int, str], float] = defaultdict(float)
        self._by_pid: Dict[Tuple[int, str], float] = defaultdict(float)
        self._machine: Dict[str, float] = defaultdict(float)

    def record(self, pid: int, cpu_id: int, delta: Mapping[str, float]) -> None:
        """Fold one (process, cpu) step delta into all indexes."""
        for event, count in delta.items():
            if event not in ALL_EVENTS:
                raise ConfigurationError(f"unknown HPC event {event!r}")
            self._by_pid_cpu[(pid, cpu_id, event)] += count
            self._by_cpu[(cpu_id, event)] += count
            self._by_pid[(pid, event)] += count
            self._machine[event] += count

    def record_cpu_only(self, cpu_id: int, delta: Mapping[str, float]) -> None:
        """Fold CPU-level activity not attributable to any process."""
        for event, count in delta.items():
            if event not in ALL_EVENTS:
                raise ConfigurationError(f"unknown HPC event {event!r}")
            self._by_cpu[(cpu_id, event)] += count
            self._machine[event] += count

    # -- reads ---------------------------------------------------------

    def read(self, event: str, pid: int = -1, cpu_id: int = -1) -> float:
        """Read a counter the way perf does.

        ``pid == -1`` means "any process" and ``cpu_id == -1`` means "any
        CPU"; the four combinations map onto the four indexes.
        """
        if event not in ALL_EVENTS:
            raise ConfigurationError(f"unknown HPC event {event!r}")
        if pid >= 0 and cpu_id >= 0:
            return self._by_pid_cpu[(pid, cpu_id, event)]
        if pid >= 0:
            return self._by_pid[(pid, event)]
        if cpu_id >= 0:
            return self._by_cpu[(cpu_id, event)]
        return self._machine[event]

    def machine_totals(self, events: Iterable[str] = ALL_EVENTS) -> Dict[str, float]:
        """Machine-wide totals for *events* as a plain dict."""
        return {event: self.read(event) for event in events}

    def pids(self) -> Tuple[int, ...]:
        """All process ids that ever recorded activity, ascending."""
        return tuple(sorted({pid for (pid, _event) in self._by_pid}))

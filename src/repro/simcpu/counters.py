"""Hardware performance counter (HPC) bookkeeping.

The simulated silicon exposes the *generic* events of ``perf_event_open`` —
the ones the paper selects for portability across Intel and AMD parts
(``instructions``, ``cache-references``, ``cache-misses``) plus the rest of
the generic set for baselines and ablations.

The machine emits one :class:`EventDelta` per (process, logical CPU) per
simulation step; the :class:`CounterBank` accumulates those into the
per-process, per-CPU and machine-wide totals that the perf layer
(:mod:`repro.perf`) reads through its counter abstraction.
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.errors import ConfigurationError

# Generic hardware events (perf_event_open PERF_TYPE_HARDWARE).
CYCLES = "cycles"
INSTRUCTIONS = "instructions"
CACHE_REFERENCES = "cache-references"
CACHE_MISSES = "cache-misses"
BRANCHES = "branches"
BRANCH_MISSES = "branch-misses"
BUS_CYCLES = "bus-cycles"
STALLED_CYCLES_FRONTEND = "stalled-cycles-frontend"
STALLED_CYCLES_BACKEND = "stalled-cycles-backend"
REF_CYCLES = "ref-cycles"

# Generic cache events (PERF_TYPE_HW_CACHE), the subset we model.
L1_DCACHE_LOADS = "L1-dcache-loads"
L1_DCACHE_LOAD_MISSES = "L1-dcache-load-misses"
LLC_LOADS = "LLC-loads"
LLC_LOAD_MISSES = "LLC-load-misses"

#: Every event the simulated PMU can produce.
ALL_EVENTS: Tuple[str, ...] = (
    CYCLES, INSTRUCTIONS, CACHE_REFERENCES, CACHE_MISSES, BRANCHES,
    BRANCH_MISSES, BUS_CYCLES, STALLED_CYCLES_FRONTEND,
    STALLED_CYCLES_BACKEND, REF_CYCLES, L1_DCACHE_LOADS,
    L1_DCACHE_LOAD_MISSES, LLC_LOADS, LLC_LOAD_MISSES,
)

#: The trio the paper identifies as most correlated with power on
#: multi-core systems (Section 3).
GENERIC_TRIO: Tuple[str, ...] = (INSTRUCTIONS, CACHE_REFERENCES, CACHE_MISSES)

#: Frozen-set view of :data:`ALL_EVENTS` for O(1) membership tests; the
#: accumulation paths run once per (process, cpu, event) per tick.
KNOWN_EVENTS = frozenset(ALL_EVENTS)

#: Column index of every event in the struct-of-arrays layout.
EVENT_INDEX: Dict[str, int] = {event: column
                               for column, event in enumerate(ALL_EVENTS)}


def _check_events(delta: Mapping[str, float]) -> None:
    """Reject deltas naming events the simulated PMU cannot produce."""
    if not KNOWN_EVENTS.issuperset(delta):
        unknown = sorted(set(delta) - KNOWN_EVENTS)[0]
        raise ConfigurationError(f"unknown HPC event {unknown!r}")

#: Events counted per logical CPU even with no process attached.
PER_CPU_EVENTS: Tuple[str, ...] = (CYCLES, REF_CYCLES, BUS_CYCLES)


class EventDelta(Dict[str, float]):
    """Event counts produced by one (process, cpu) during one step."""

    def add(self, event: str, count: float) -> None:
        """Accumulate *count* occurrences of *event* (must be >= 0)."""
        if count < 0:
            raise ConfigurationError(f"negative event count for {event}: {count}")
        self[event] = self.get(event, 0.0) + count

    def merged_with(self, other: Mapping[str, float]) -> "EventDelta":
        """Return a new delta that is the sum of this one and *other*."""
        merged = EventDelta(self)
        for event, count in other.items():
            merged.add(event, count)
        return merged


class CounterBank:
    """Accumulated HPC totals, indexed four ways.

    * per (pid, cpu, event) — what a per-process, per-CPU perf counter reads,
    * per (cpu, event)      — what a CPU-wide counter reads,
    * per (pid, event)      — what an inherit-style per-process counter reads,
    * machine-wide (event)  — what a system-wide counter reads.

    Writes land once per tick per (process, cpu) on the simulator's hot
    path, so the accumulation state is struct-of-arrays: one ``array('d')``
    column per event, indexed by a dense (pid, cpu) slot.  The batched
    stepping engine (:mod:`repro.simcpu.engine`) accumulates directly into
    those cells via :meth:`accumulation_cells`, performing exactly the
    same sequence of float additions :meth:`record` would, so totals stay
    bit-identical to tick-at-a-time stepping.  Reads happen at most once
    per sampling window; the three aggregate indexes are materialised
    lazily on first read after a write.
    """

    def __init__(self) -> None:
        self._slots: Dict[Tuple[int, int], int] = {}
        self._columns: Tuple[array, ...] = tuple(
            array("d") for _event in ALL_EVENTS)
        self._cpu_slots: Dict[int, int] = {}
        self._cpu_columns: Tuple[array, ...] = tuple(
            array("d") for _event in ALL_EVENTS)
        self._by_pid_cpu: Dict[Tuple[int, int, str], float] = {}
        self._by_cpu: Dict[Tuple[int, str], float] = defaultdict(float)
        self._by_pid: Dict[Tuple[int, str], float] = defaultdict(float)
        self._machine: Dict[str, float] = defaultdict(float)
        self._dirty = False

    def _slot(self, pid: int, cpu_id: int) -> int:
        """Dense row index of (pid, cpu), growing every column on demand."""
        key = (pid, cpu_id)
        slot = self._slots.get(key)
        if slot is None:
            slot = len(self._slots)
            self._slots[key] = slot
            for column in self._columns:
                column.append(0.0)
        return slot

    def _cpu_slot(self, cpu_id: int) -> int:
        slot = self._cpu_slots.get(cpu_id)
        if slot is None:
            slot = len(self._cpu_slots)
            self._cpu_slots[cpu_id] = slot
            for column in self._cpu_columns:
                column.append(0.0)
        return slot

    def record(self, pid: int, cpu_id: int, delta: Mapping[str, float]) -> None:
        """Fold one (process, cpu) step delta into the bank."""
        _check_events(delta)
        slot = self._slot(pid, cpu_id)
        columns = self._columns
        index = EVENT_INDEX
        for event, count in delta.items():
            columns[index[event]][slot] += count
        self._dirty = True

    def record_cpu_only(self, cpu_id: int, delta: Mapping[str, float]) -> None:
        """Fold CPU-level activity not attributable to any process."""
        _check_events(delta)
        slot = self._cpu_slot(cpu_id)
        columns = self._cpu_columns
        index = EVENT_INDEX
        for event, count in delta.items():
            columns[index[event]][slot] += count
        self._dirty = True

    # -- batched accumulation ------------------------------------------

    def accumulation_cells(self, pid: int, cpu_id: int,
                           delta: Mapping[str, float]
                           ) -> List[Tuple[array, int, float]]:
        """(column, slot, addend) cells that replay ``record(delta)`` once.

        The batched engine compiles these once per steady occupancy and
        then adds each addend into its cell once per tick, which is the
        identical float-addition sequence the dict path performs.  Cell
        references stay valid as more slots appear: ``array.append`` may
        reallocate the buffer, but the ``array`` object itself is stable.
        """
        _check_events(delta)
        slot = self._slot(pid, cpu_id)
        columns = self._columns
        index = EVENT_INDEX
        return [(columns[index[event]], slot, count)
                for event, count in delta.items()]

    def mark_dirty(self) -> None:
        """Invalidate the aggregate indexes after direct cell accumulation."""
        self._dirty = True

    def _refresh(self) -> None:
        """Rebuild the aggregate indexes from the accumulation columns."""
        by_pid_cpu: Dict[Tuple[int, int, str], float] = {}
        by_cpu: Dict[Tuple[int, str], float] = defaultdict(float)
        by_pid: Dict[Tuple[int, str], float] = defaultdict(float)
        machine: Dict[str, float] = defaultdict(float)
        columns = self._columns
        for (pid, cpu_id), slot in self._slots.items():
            for event, column_index in EVENT_INDEX.items():
                count = columns[column_index][slot]
                by_pid_cpu[(pid, cpu_id, event)] = count
                by_cpu[(cpu_id, event)] += count
                by_pid[(pid, event)] += count
                machine[event] += count
        cpu_columns = self._cpu_columns
        for cpu_id, slot in self._cpu_slots.items():
            for event, column_index in EVENT_INDEX.items():
                count = cpu_columns[column_index][slot]
                by_cpu[(cpu_id, event)] += count
                machine[event] += count
        self._by_pid_cpu = by_pid_cpu
        self._by_cpu = by_cpu
        self._by_pid = by_pid
        self._machine = machine
        self._dirty = False

    # -- reads ---------------------------------------------------------

    def read(self, event: str, pid: int = -1, cpu_id: int = -1) -> float:
        """Read a counter the way perf does.

        ``pid == -1`` means "any process" and ``cpu_id == -1`` means "any
        CPU"; the four combinations map onto the four indexes.
        """
        if event not in KNOWN_EVENTS:
            raise ConfigurationError(f"unknown HPC event {event!r}")
        if self._dirty:
            self._refresh()
        if pid >= 0 and cpu_id >= 0:
            return self._by_pid_cpu.get((pid, cpu_id, event), 0.0)
        if pid >= 0:
            return self._by_pid[(pid, event)]
        if cpu_id >= 0:
            return self._by_cpu[(cpu_id, event)]
        return self._machine[event]

    def machine_totals(self, events: Iterable[str] = ALL_EVENTS) -> Dict[str, float]:
        """Machine-wide totals for *events* as a plain dict."""
        return {event: self.read(event) for event in events}

    def pids(self) -> Tuple[int, ...]:
        """All process ids that ever recorded activity, ascending."""
        return tuple(sorted({pid for (pid, _cpu) in self._slots}))

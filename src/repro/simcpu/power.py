"""The hidden ground-truth power model of the simulated machine.

This is the "physics" the learning pipeline tries to approximate — the
simulated counterpart of the real silicon the paper measures with a
PowerSpy.  Nothing in :mod:`repro.core` may import the internals of this
module: the learner sees only (HPC values, wall-power samples).

The ground truth deliberately contains effects that a linear model over the
three generic counters cannot express, so the learned model exhibits a
realistic residual error (the paper reports a 15 % median error on
SPECjbb2013):

* per-instruction energy depends on the instruction mix (FP/SIMD weight),
* two SMT threads on one core draw much less than twice one thread,
* voltage scaling makes power superlinear in frequency (handled by the
  per-frequency model structure, invisible within one frequency),
* uncore and DRAM power depend on cache/memory traffic non-linearly,
* C-states make idle power depend on utilisation patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.simcpu.frequency import FrequencyDomain
from repro.simcpu.spec import CpuSpec

#: Fraction of a core's active power drawn by the second SMT thread
#: (the first thread "pays" for the shared front-end and caches).
SMT_SECOND_THREAD_FACTOR = 0.35

#: Watts per 10^9 last-level-cache references per second (uncore activity).
UNCORE_W_PER_GREF = 2.0

#: Thermal time constant of the package + heatsink, seconds.  Short
#: calibration windows never heat the silicon; sustained benchmarks do.
THERMAL_TAU_S = 45.0

#: Leakage power at thermal equilibrium as a fraction of the sustained
#: dynamic power (leakage grows with temperature, which tracks activity).
LEAKAGE_EQUILIBRIUM_FRACTION = 0.30

#: Peak per-core wakeup power at 50 % duty cycle, watts.  Every C-state
#: exit burns energy the retired-instruction counters never see.
WAKEUP_PEAK_W = 1.6


@dataclass(frozen=True)
class CoreActivity:
    """Aggregate activity of one physical core during one step.

    ``thread_busy`` holds the C0 (busy) fraction of each hardware thread;
    ``power_weight`` the activity-weighted mean instruction power weight;
    ``frequency_hz`` the granted effective frequency;
    ``idle_power_fraction`` the C-state power fraction of the idle time.
    """

    frequency_hz: int
    thread_busy: Tuple[float, ...]
    power_weight: float = 1.0
    idle_power_fraction: float = 0.03

    def __post_init__(self) -> None:
        for busy in self.thread_busy:
            if not 0.0 <= busy <= 1.0:
                raise ConfigurationError("thread busy fraction out of [0, 1]")
        if self.power_weight < 0:
            raise ConfigurationError("power_weight must be >= 0")


@dataclass(frozen=True)
class PowerBreakdown:
    """Wall power decomposed into its ground-truth components (watts)."""

    idle: float
    cores: float
    uncore: float
    dram: float
    #: Temperature-dependent leakage (slow thermal dynamics).
    leakage: float = 0.0
    #: C-state transition (wakeup) overhead at partial load.
    wakeup: float = 0.0

    @property
    def total(self) -> float:
        """Total wall power: the sum of every component, watts."""
        return (self.idle + self.cores + self.uncore + self.dram
                + self.leakage + self.wakeup)


class ThermalModel:
    """First-order package temperature and the leakage power it drives.

    Temperature relaxes toward a level proportional to the dynamic power
    with time constant :data:`THERMAL_TAU_S`; leakage is proportional to
    the temperature rise.  The constants are arranged so that sustained
    dynamic power P eventually adds ``LEAKAGE_EQUILIBRIUM_FRACTION * P``
    of leakage — a real silicon effect that no retirement counter can
    observe, and one reason short-calibration power models underestimate
    long hot runs.
    """

    def __init__(self, ambient_c: float = 35.0,
                 c_per_watt: float = 1.5) -> None:
        self.ambient_c = ambient_c
        self.c_per_watt = c_per_watt
        self.temperature_c = ambient_c

    def step(self, dynamic_power_w: float, dt_s: float) -> float:
        """Advance temperature by *dt_s*; returns the leakage power, watts."""
        if dt_s < 0 or dynamic_power_w < 0:
            raise ConfigurationError("thermal step inputs must be >= 0")
        target_c = self.ambient_c + self.c_per_watt * dynamic_power_w
        decay = 1.0 - pow(2.718281828, -dt_s / THERMAL_TAU_S)
        self.temperature_c += (target_c - self.temperature_c) * decay
        rise_c = max(0.0, self.temperature_c - self.ambient_c)
        leak_per_c = LEAKAGE_EQUILIBRIUM_FRACTION / self.c_per_watt
        return leak_per_c * rise_c

    def batch_constants(self, dynamic_power_w: float,
                        dt_s: float) -> Tuple[float, float, float, float]:
        """``(target_c, decay, leak_per_c, ambient_c)`` for a steady batch.

        These are exactly the intermediates :meth:`step` derives on every
        call; for a constant dynamic power and dt they are loop
        invariants, so the batched engine hoists them and replays only
        the two data-dependent lines (the temperature relaxation and the
        leakage readout) per tick — the identical float operations in the
        identical order, keeping batched thermal state bit-identical to
        tick-at-a-time stepping.
        """
        if dt_s < 0 or dynamic_power_w < 0:
            raise ConfigurationError("thermal step inputs must be >= 0")
        target_c = self.ambient_c + self.c_per_watt * dynamic_power_w
        decay = 1.0 - pow(2.718281828, -dt_s / THERMAL_TAU_S)
        leak_per_c = LEAKAGE_EQUILIBRIUM_FRACTION / self.c_per_watt
        return target_c, decay, leak_per_c, self.ambient_c


class GroundTruthPower:
    """Computes the machine's instantaneous wall power."""

    def __init__(self, spec: CpuSpec, frequency_domain: FrequencyDomain) -> None:
        self.spec = spec
        self._freq = frequency_domain

    def core_power(self, activity: CoreActivity) -> float:
        """Power of one physical core (watts).

        With SMT, the busiest thread draws the full per-thread cost and the
        sibling only :data:`SMT_SECOND_THREAD_FACTOR` of it — the overlap in
        shared structures that SMT-oblivious models mis-attribute.
        """
        busy = sorted(activity.thread_busy, reverse=True)
        primary = busy[0] if busy else 0.0
        secondary = sum(busy[1:])
        effective_busy = primary + SMT_SECOND_THREAD_FACTOR * secondary
        scale = self._freq.dynamic_scale(activity.frequency_hz)
        active_w = (self.spec.power.core_active_w * scale
                    * effective_busy * activity.power_weight)
        idle_fraction = max(0.0, 1.0 - primary)
        idle_w = (self.spec.power.core_active_w
                  * self._freq.dynamic_scale(self.spec.min_frequency_hz)
                  * idle_fraction * activity.idle_power_fraction)
        return active_w + idle_w

    def wakeup_power(self, activity: CoreActivity) -> float:
        """C-state transition overhead of one core, watts.

        Peaks at 50 % duty cycle (maximum wake/sleep churn) and vanishes
        at both idle and full load; invisible to retirement counters.
        """
        busiest = max(activity.thread_busy, default=0.0)
        return WAKEUP_PEAK_W * 4.0 * busiest * (1.0 - busiest)

    def wall_power(self, core_activities: Sequence[CoreActivity],
                   llc_references_per_s: float,
                   dram_bytes_per_s: float,
                   thermal: Optional["ThermalModel"] = None,
                   dt_s: float = 0.0) -> PowerBreakdown:
        """Total wall power of the machine during one step.

        When *thermal* is given (with a positive *dt_s*) the breakdown
        includes temperature-driven leakage, advancing the thermal state.
        """
        if llc_references_per_s < 0 or dram_bytes_per_s < 0:
            raise ConfigurationError("traffic rates must be >= 0")
        cores_w = sum(self.core_power(activity) for activity in core_activities)
        wakeup_w = sum(self.wakeup_power(activity)
                       for activity in core_activities)

        any_busy = max(
            (max(activity.thread_busy, default=0.0)
             for activity in core_activities), default=0.0)
        uncore_w = (self.spec.power.uncore_active_w * any_busy
                    + UNCORE_W_PER_GREF * llc_references_per_s / 1e9)

        # DRAM power grows sublinearly at high bandwidth (row-buffer
        # locality improves under load), another non-linearity the linear
        # model absorbs into its cache-miss coefficient.
        gtps = dram_bytes_per_s / 64.0 / 1e9  # giga-transfers (lines) per second
        dram_w = self.spec.power.dram_w_per_gtps * gtps ** 0.85

        leakage_w = 0.0
        if thermal is not None and dt_s > 0:
            dynamic_w = cores_w + uncore_w + dram_w + wakeup_w
            leakage_w = thermal.step(dynamic_w, dt_s)

        return PowerBreakdown(
            idle=self.spec.power.idle_w,
            cores=cores_w,
            uncore=uncore_w,
            dram=dram_w,
            leakage=leakage_w,
            wakeup=wakeup_w,
        )

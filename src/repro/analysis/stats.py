"""Statistical utilities: bootstrap confidence intervals for error metrics.

A single median-APE number (the paper reports "15 %") says nothing about
its stability.  The bootstrap quantifies it: resample the per-sample
errors with replacement, recompute the statistic, and read the spread of
the resampled statistics.  Used by EXPERIMENTS.md to report intervals
alongside point estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.metrics import absolute_percentage_errors
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BootstrapResult:
    """A point estimate with its bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    resamples: int

    def __str__(self) -> str:
        return (f"{self.estimate:.4g} "
                f"[{self.low:.4g}, {self.high:.4g}] "
                f"@{self.confidence * 100:.0f}%")

    @property
    def width(self) -> float:
        """Width of the interval."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether *value* lies inside the interval."""
        return self.low <= value <= self.high


def bootstrap(values: Sequence[float],
              statistic: Callable[[np.ndarray], float] = np.median,
              confidence: float = 0.95,
              resamples: int = 2000,
              seed: Optional[int] = 12345) -> BootstrapResult:
    """Percentile-bootstrap interval for *statistic* over *values*."""
    data = np.asarray(values, dtype=float)
    if data.ndim != 1 or data.size < 2:
        raise ConfigurationError("need at least 2 values to bootstrap")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be within (0, 1)")
    if resamples < 100:
        raise ConfigurationError("use at least 100 resamples")

    rng = np.random.default_rng(seed)
    indexes = rng.integers(0, data.size, size=(resamples, data.size))
    stats = np.apply_along_axis(statistic, 1, data[indexes])
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        estimate=float(statistic(data)),
        low=float(np.quantile(stats, alpha)),
        high=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
        resamples=resamples,
    )


def median_ape_interval(measured: Sequence[float],
                        estimated: Sequence[float],
                        confidence: float = 0.95,
                        resamples: int = 2000,
                        seed: Optional[int] = 12345) -> BootstrapResult:
    """Bootstrap interval for the paper's headline metric."""
    errors = absolute_percentage_errors(measured, estimated)
    return bootstrap(errors, statistic=np.median, confidence=confidence,
                     resamples=resamples, seed=seed)

"""Energy hotspot analysis: "identifying the largest power consumers".

Section 1 of the paper motivates fine-grained estimation as the
cornerstone for "identifying the largest power consumers and mak[ing]
informed decisions".  This module turns a monitoring run's reports into
that decision-support view: ranked per-process consumers, their share of
the machine's active energy, and simple green-pattern diagnoses (busy
but low-work processes, memory-thrashing processes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.messages import AggregatedPowerReport
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Hotspot:
    """One process's standing in the energy ranking."""

    pid: int
    active_energy_j: float
    #: Share of all attributed active energy, in [0, 1].
    share: float
    mean_power_w: float


def rank_consumers(reports: Sequence[AggregatedPowerReport],
                   top: Optional[int] = None) -> List[Hotspot]:
    """Rank processes by active energy over a monitoring run."""
    if not reports:
        raise ConfigurationError("no reports to rank")
    energy: Dict[int, float] = {}
    duration: Dict[int, float] = {}
    for report in reports:
        for pid, watts in report.by_pid.items():
            energy[pid] = energy.get(pid, 0.0) + watts * report.period_s
            duration[pid] = duration.get(pid, 0.0) + report.period_s
    total = sum(energy.values())
    hotspots = [
        Hotspot(
            pid=pid,
            active_energy_j=joules,
            share=joules / total if total > 0 else 0.0,
            mean_power_w=joules / duration[pid] if duration[pid] else 0.0,
        )
        for pid, joules in energy.items()
    ]
    hotspots.sort(key=lambda hotspot: -hotspot.active_energy_j)
    return hotspots[:top] if top is not None else hotspots


@dataclass(frozen=True)
class Diagnosis:
    """A green-pattern finding for one process."""

    pid: int
    pattern: str
    detail: str


#: Instructions per joule below which a process is "spinning" (burning
#: power without retiring much work).
SPIN_THRESHOLD_INSTR_PER_J = 5e7

#: Cache-miss-per-instruction ratio above which a process is "thrashing".
THRASH_THRESHOLD_MPI = 0.02


def diagnose(hotspots: Sequence[Hotspot],
             instructions_by_pid: Mapping[int, float],
             misses_by_pid: Optional[Mapping[int, float]] = None
             ) -> List[Diagnosis]:
    """Apply simple green patterns to ranked consumers.

    *instructions_by_pid* (and optionally *misses_by_pid*) come from the
    perf layer or the counter bank.  Patterns:

    * ``busy-spinning`` — high energy, almost no instructions per joule
      (polling loops, lock spinning),
    * ``memory-thrashing`` — extreme misses per instruction (working set
      blowing the cache; batching or blocking would cut DRAM power).
    """
    findings: List[Diagnosis] = []
    for hotspot in hotspots:
        instructions = instructions_by_pid.get(hotspot.pid, 0.0)
        if hotspot.active_energy_j > 0:
            efficiency = instructions / hotspot.active_energy_j
            if efficiency < SPIN_THRESHOLD_INSTR_PER_J:
                findings.append(Diagnosis(
                    pid=hotspot.pid, pattern="busy-spinning",
                    detail=(f"{efficiency:.3g} instructions/J "
                            f"(threshold {SPIN_THRESHOLD_INSTR_PER_J:.3g})")))
        if misses_by_pid is not None and instructions > 0:
            mpi = misses_by_pid.get(hotspot.pid, 0.0) / instructions
            if mpi > THRASH_THRESHOLD_MPI:
                findings.append(Diagnosis(
                    pid=hotspot.pid, pattern="memory-thrashing",
                    detail=(f"{mpi:.3g} cache-misses/instruction "
                            f"(threshold {THRASH_THRESHOLD_MPI})")))
    return findings


def render_hotspots(hotspots: Sequence[Hotspot],
                    names: Optional[Mapping[int, str]] = None) -> str:
    """Human-readable ranking table."""
    if not hotspots:
        raise ConfigurationError("nothing to render")
    lines = [f"{'#':>2}  {'process':<16} {'energy':>10}  {'share':>6}  "
             f"{'mean power':>10}"]
    for rank, hotspot in enumerate(hotspots, start=1):
        name = (names or {}).get(hotspot.pid, f"pid {hotspot.pid}")
        lines.append(
            f"{rank:>2}  {name:<16} {hotspot.active_energy_j:>8.1f} J  "
            f"{hotspot.share * 100:>5.1f}%  {hotspot.mean_power_w:>8.2f} W")
    return "\n".join(lines)

"""Plain-text rendering of tables and figures.

The benchmark harness regenerates the paper's artefacts as terminal
output: :func:`render_table` prints aligned key/value or grid tables
(Table 1), :func:`ascii_chart` overlays power traces as a line chart
(Figure 3), and :func:`render_comparison` prints measured-vs-estimated
metric rows for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.traces import PowerTrace
from repro.errors import ConfigurationError


def render_table(rows: Sequence[Tuple[str, str]], title: str = "") -> str:
    """Two-column table with aligned separators."""
    if not rows:
        raise ConfigurationError("table needs at least one row")
    key_width = max(len(key) for key, _value in rows)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * max(len(title), key_width + 3))
    for key, value in rows:
        lines.append(f"{key.ljust(key_width)} : {value}")
    return "\n".join(lines)


def render_grid(headers: Sequence[str], rows: Sequence[Sequence[str]],
                title: str = "") -> str:
    """Multi-column grid with a header rule."""
    if not rows:
        raise ConfigurationError("grid needs at least one row")
    table = [list(map(str, headers))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[col]) for row in table)
              for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(table[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table[1:]:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_chart(traces: Sequence[PowerTrace], width: int = 78,
                height: int = 18, title: str = "",
                y_label: str = "W") -> str:
    """Overlay up to a few power traces as an ASCII line chart.

    Each trace is drawn with its own glyph; the legend maps glyphs to
    trace names.  This renders the Figure 3 overlay in a terminal.
    """
    if not traces:
        raise ConfigurationError("chart needs at least one trace")
    if width < 20 or height < 5:
        raise ConfigurationError("chart too small to draw")
    glyphs = "*+ox#@"
    t_min = min(trace.times_s[0] for trace in traces if len(trace))
    t_max = max(trace.times_s[-1] for trace in traces if len(trace))
    p_min = min(min(trace.powers_w) for trace in traces if len(trace))
    p_max = max(max(trace.powers_w) for trace in traces if len(trace))
    if p_max - p_min < 1e-9:
        p_max = p_min + 1.0
    if t_max - t_min < 1e-9:
        t_max = t_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for trace_index, trace in enumerate(traces):
        glyph = glyphs[trace_index % len(glyphs)]
        for t, p in zip(trace.times_s, trace.powers_w):
            col = int((t - t_min) / (t_max - t_min) * (width - 1))
            row = int((p - p_min) / (p_max - p_min) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{p_max:7.1f} {y_label} |"
    bottom_label = f"{p_min:7.1f} {y_label} |"
    pad = " " * len(top_label.rstrip("|"))
    for index, row in enumerate(grid):
        if index == 0:
            prefix = top_label
        elif index == height - 1:
            prefix = bottom_label
        else:
            prefix = pad + "|"
        lines.append(prefix + "".join(row))
    lines.append(pad + "+" + "-" * width)
    lines.append(pad + f" {t_min:.0f}s" + " " * (width - 12) + f"{t_max:.0f}s")
    legend = "   ".join(f"{glyphs[i % len(glyphs)]} {trace.name}"
                        for i, trace in enumerate(traces))
    lines.append(pad + " " + legend)
    return "\n".join(lines)


def render_comparison(experiment: str, paper_value: str, measured_value: str,
                      verdict: str) -> str:
    """One EXPERIMENTS.md-style row: paper vs this reproduction."""
    return (f"{experiment}: paper={paper_value}  "
            f"reproduction={measured_value}  [{verdict}]")


def format_metrics(summary: Dict[str, float]) -> str:
    """Render an error-summary dict on one line."""
    parts = []
    for key in ("median_ape", "mean_ape", "max_ape"):
        if key in summary:
            parts.append(f"{key}={summary[key] * 100:.1f}%")
    if "rmse_w" in summary:
        parts.append(f"rmse={summary['rmse_w']:.2f}W")
    if "r2" in summary:
        parts.append(f"r2={summary['r2']:.3f}")
    if "aligned" in summary:
        parts.append(f"n={summary['aligned']}")
    return "  ".join(parts)

"""Power-trace handling: alignment and comparison of time series.

The Figure 3 evaluation overlays a measured PowerSpy trace with the
PowerAPI estimation.  The two series are sampled by different components
(meter intervals vs monitoring clock), so their timestamps carry
independent floating-point drift; :func:`align` matches samples by
nearest timestamp within a tolerance instead of exact equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.metrics import error_summary
from repro.errors import ConfigurationError
from repro.powermeter.base import PowerSample


@dataclass(frozen=True)
class PowerTrace:
    """A named power time series."""

    name: str
    times_s: Tuple[float, ...]
    powers_w: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times_s) != len(self.powers_w):
            raise ConfigurationError("times and powers length mismatch")
        if list(self.times_s) != sorted(self.times_s):
            raise ConfigurationError("trace timestamps must be ascending")

    def __len__(self) -> int:
        return len(self.times_s)

    @classmethod
    def from_samples(cls, name: str,
                     samples: Sequence[PowerSample]) -> "PowerTrace":
        """Build a trace from power-meter samples."""
        return cls(name=name,
                   times_s=tuple(sample.time_s for sample in samples),
                   powers_w=tuple(sample.power_w for sample in samples))

    @classmethod
    def from_series(cls, name: str, times_s: Sequence[float],
                    powers_w: Sequence[float]) -> "PowerTrace":
        """Build a trace from parallel time/power sequences."""
        return cls(name=name, times_s=tuple(times_s), powers_w=tuple(powers_w))

    def mean_w(self) -> float:
        """Mean power of the trace."""
        if not self.powers_w:
            raise ConfigurationError("empty trace has no mean")
        return float(np.mean(self.powers_w))

    def energy_j(self) -> float:
        """Trapezoidal energy integral of the trace."""
        if len(self) < 2:
            return 0.0
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(self.powers_w, self.times_s))

    def window(self, start_s: float, end_s: float) -> "PowerTrace":
        """Sub-trace with start_s <= t < end_s."""
        pairs = [(t, p) for t, p in zip(self.times_s, self.powers_w)
                 if start_s <= t < end_s]
        return PowerTrace(
            name=self.name,
            times_s=tuple(t for t, _p in pairs),
            powers_w=tuple(p for _t, p in pairs),
        )

    def smoothed(self, window: int = 5) -> "PowerTrace":
        """Centred moving-average smoothing (window must be odd, >= 1).

        Edges use the available neighbours, so the trace keeps its
        length and timestamps — handy before plotting a noisy meter.
        """
        if window < 1 or window % 2 == 0:
            raise ConfigurationError("smoothing window must be odd and >= 1")
        if window == 1 or len(self) == 0:
            return self
        half = window // 2
        values = np.asarray(self.powers_w)
        smoothed = [
            float(values[max(0, i - half):i + half + 1].mean())
            for i in range(len(values))
        ]
        return PowerTrace(name=f"{self.name}~{window}",
                          times_s=self.times_s,
                          powers_w=tuple(smoothed))

    def downsampled(self, factor: int) -> "PowerTrace":
        """Keep every *factor*-th sample (rendering long traces)."""
        if factor < 1:
            raise ConfigurationError("downsample factor must be >= 1")
        return PowerTrace(name=self.name,
                          times_s=self.times_s[::factor],
                          powers_w=self.powers_w[::factor])

    def percentiles(self, levels: Sequence[float] = (5, 50, 95)
                    ) -> Dict[float, float]:
        """Power percentiles of the trace, e.g. {5: ..., 50: ..., 95: ...}."""
        if not self.powers_w:
            raise ConfigurationError("empty trace has no percentiles")
        values = np.asarray(self.powers_w)
        return {level: float(np.percentile(values, level))
                for level in levels}


def align(reference: PowerTrace, other: PowerTrace,
          tolerance_s: float = 0.5) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Match samples of *other* to *reference* by nearest timestamp.

    Returns (times, reference powers, other powers) for every reference
    sample that has a counterpart within *tolerance_s*.  Each sample of
    *other* is used at most once.
    """
    if tolerance_s <= 0:
        raise ConfigurationError("tolerance must be positive")
    times: List[float] = []
    ref_values: List[float] = []
    other_values: List[float] = []
    other_times = np.asarray(other.times_s)
    used = np.zeros(len(other_times), dtype=bool)
    for t, p in zip(reference.times_s, reference.powers_w):
        if other_times.size == 0:
            break
        index = int(np.argmin(np.abs(other_times - t)))
        if used[index] or abs(other_times[index] - t) > tolerance_s:
            continue
        used[index] = True
        times.append(t)
        ref_values.append(p)
        other_values.append(other.powers_w[index])
    return (np.asarray(times), np.asarray(ref_values),
            np.asarray(other_values))


def compare(measured: PowerTrace, estimated: PowerTrace,
            tolerance_s: float = 0.5) -> dict:
    """Error summary of *estimated* against *measured* after alignment.

    Adds ``aligned`` (matched sample count) to the metric dict.
    """
    times, ref, est = align(measured, estimated, tolerance_s=tolerance_s)
    if times.size == 0:
        raise ConfigurationError("traces share no aligned samples")
    summary = error_summary(ref, est)
    summary["aligned"] = int(times.size)
    return summary

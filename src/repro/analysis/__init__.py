"""Trace analysis and text rendering of the paper's tables and figures."""

from repro.analysis.hotspots import (Diagnosis, Hotspot, diagnose,
                                     rank_consumers, render_hotspots)
from repro.analysis.report import (ascii_chart, format_metrics,
                                   render_comparison, render_grid,
                                   render_table)
from repro.analysis.stats import (BootstrapResult, bootstrap,
                                  median_ape_interval)
from repro.analysis.traces import PowerTrace, align, compare

__all__ = [
    "BootstrapResult", "Diagnosis", "Hotspot", "PowerTrace", "align",
    "ascii_chart", "bootstrap", "compare", "diagnose", "format_metrics",
    "median_ape_interval", "rank_consumers", "render_comparison",
    "render_grid", "render_hotspots", "render_table",
]

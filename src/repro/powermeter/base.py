"""Power-meter abstractions.

Meters attach to a machine's tick stream and integrate true wall power
into periodic :class:`PowerSample` readings, each subclass adding its own
imperfections (noise, quantization, latency, restricted measurement
domain).  The learning pipeline and the evaluation figures consume the
common :class:`PowerMeter` interface only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError, MeterConnectionError
from repro.simcpu.machine import Machine, TickRecord


@dataclass(frozen=True)
class PowerSample:
    """One meter reading: average power over the preceding interval."""

    #: Timestamp at the *end* of the integration interval, seconds.
    time_s: float
    power_w: float

    def __post_init__(self) -> None:
        if self.power_w < 0:
            raise ConfigurationError("power sample cannot be negative")


class PowerMeter:
    """Base meter: integrates machine energy into periodic samples."""

    def __init__(self, machine: Machine, sample_rate_hz: float = 1.0) -> None:
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be positive")
        self.machine = machine
        self.sample_interval_s = 1.0 / sample_rate_hz
        self._samples: List[PowerSample] = []
        self._interval_energy_j = 0.0
        self._interval_elapsed_s = 0.0
        self._connected = False
        self._link_down_until_s = float("-inf")

    # -- lifecycle --------------------------------------------------------

    def connect(self) -> None:
        """Attach to the machine and start sampling.

        Raises :class:`MeterConnectionError` while an injected dropout
        holds the link down (see :meth:`inject_dropout`).
        """
        if self.machine.time_s < self._link_down_until_s - 1e-12:
            raise MeterConnectionError(
                f"{type(self).__name__}: link down until "
                f"t={self._link_down_until_s:.3f}s")
        if self._connected:
            return
        self.machine.add_observer(self._on_tick)
        self._connected = True

    def inject_dropout(self, down_s: float) -> None:
        """Fault injection: drop the link now, refuse reconnects for *down_s*.

        Models a meter losing its bluetooth/serial link: the meter
        disconnects immediately and :meth:`connect` raises until the
        machine's clock passes the reconnect deadline.  Partial-interval
        energy is discarded, like a real stream cut mid-sample.
        """
        if down_s < 0:
            raise ConfigurationError("dropout duration must be >= 0")
        self.disconnect()
        self._interval_energy_j = 0.0
        self._interval_elapsed_s = 0.0
        self._link_down_until_s = self.machine.time_s + down_s

    def disconnect(self) -> None:
        """Detach; accumulated samples remain readable."""
        if not self._connected:
            return
        self.machine.remove_observer(self._on_tick)
        self._connected = False

    @property
    def connected(self) -> bool:
        """Whether the meter is currently attached to the machine."""
        return self._connected

    def _require_connected(self) -> None:
        if not self._connected:
            raise MeterConnectionError(
                f"{type(self).__name__} is not connected")

    def __enter__(self) -> "PowerMeter":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.disconnect()

    # -- sampling ---------------------------------------------------------

    def _on_tick(self, record: TickRecord) -> None:
        self._interval_energy_j += self._measured_power(record) * record.dt_s
        self._interval_elapsed_s += record.dt_s
        while self._interval_elapsed_s >= self.sample_interval_s - 1e-12:
            average = self._interval_energy_j / self._interval_elapsed_s
            self._samples.append(PowerSample(
                time_s=record.time_s,
                power_w=self._postprocess(average),
            ))
            self._interval_energy_j = 0.0
            self._interval_elapsed_s = 0.0

    def _measured_power(self, record: TickRecord) -> float:
        """What part of the machine's power this meter sees (default: wall)."""
        return record.wall_power_w

    def _postprocess(self, power_w: float) -> float:
        """Apply the meter's imperfections to a clean average (default: none)."""
        return power_w

    # -- reads --------------------------------------------------------------

    @property
    def samples(self) -> List[PowerSample]:
        """All samples collected so far."""
        return list(self._samples)

    def last_sample(self) -> Optional[PowerSample]:
        """The most recent sample, or None before the first interval ends."""
        return self._samples[-1] if self._samples else None

    def clear(self) -> None:
        """Drop collected samples (keeps the connection)."""
        self._samples.clear()
        self._interval_energy_j = 0.0
        self._interval_elapsed_s = 0.0

    def mean_power_w(self) -> float:
        """Mean of all collected samples."""
        if not self._samples:
            raise MeterConnectionError("no samples collected yet")
        return sum(sample.power_w for sample in self._samples) / len(self._samples)

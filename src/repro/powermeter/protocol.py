"""The PowerSpy wire protocol (simulated bluetooth serial link).

The real PowerSpy2 streams ASCII frames over an RFCOMM serial link; a
client must frame, parse, checksum-verify and survive corrupted frames.
This module models that layer so the acquisition stack is exercised
end-to-end, wire format included:

frame   := '<' TIMESTAMP ' ' POWER ' ' CHECKSUM '>' CRLF
TIMESTAMP := 8 uppercase hex digits, milliseconds since link-up
POWER     := 8 uppercase hex digits, milliwatts
CHECKSUM  := 2 uppercase hex digits, XOR of the payload bytes

:class:`PowerSpyLink` encodes meter samples into frames (optionally
injecting corruption with a seeded RNG); :func:`decode_frame` /
:class:`FrameDecoder` implement the tolerant client side.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PowerMeterError
from repro.powermeter.base import PowerSample

FRAME_START = "<"
FRAME_END = ">"
CRLF = "\r\n"


def _checksum(payload: str) -> int:
    value = 0
    for char in payload:
        value ^= ord(char)
    return value


def encode_frame(sample: PowerSample) -> str:
    """Encode one sample as a wire frame (including CRLF)."""
    timestamp_ms = int(round(sample.time_s * 1000.0))
    power_mw = int(round(sample.power_w * 1000.0))
    if not 0 <= timestamp_ms <= 0xFFFFFFFF:
        raise PowerMeterError(f"timestamp {timestamp_ms} ms out of range")
    if not 0 <= power_mw <= 0xFFFFFFFF:
        raise PowerMeterError(f"power {power_mw} mW out of range")
    payload = f"{timestamp_ms:08X} {power_mw:08X}"
    return f"{FRAME_START}{payload} {_checksum(payload):02X}{FRAME_END}{CRLF}"


def decode_frame(frame: str) -> PowerSample:
    """Decode one frame; raises :class:`PowerMeterError` on corruption."""
    stripped = frame.strip()
    if not (stripped.startswith(FRAME_START)
            and stripped.endswith(FRAME_END)):
        raise PowerMeterError("missing frame delimiters")
    body = stripped[1:-1]
    parts = body.split(" ")
    if len(parts) != 3:
        raise PowerMeterError(f"expected 3 fields, got {len(parts)}")
    timestamp_hex, power_hex, checksum_hex = parts
    payload = f"{timestamp_hex} {power_hex}"
    try:
        declared = int(checksum_hex, 16)
        timestamp_ms = int(timestamp_hex, 16)
        power_mw = int(power_hex, 16)
    except ValueError:
        raise PowerMeterError("non-hex field in frame") from None
    if len(timestamp_hex) != 8 or len(power_hex) != 8:
        raise PowerMeterError("field width violation")
    if _checksum(payload) != declared:
        raise PowerMeterError("checksum mismatch")
    return PowerSample(time_s=timestamp_ms / 1000.0,
                       power_w=power_mw / 1000.0)


class FrameDecoder:
    """Incremental, corruption-tolerant stream decoder.

    Feed arbitrary chunks; complete frames come out, corrupted ones are
    counted and dropped (the real meter keeps streaming, so must the
    client).
    """

    def __init__(self) -> None:
        self._buffer = ""
        self.frames_decoded = 0
        self.frames_dropped = 0

    def feed(self, chunk: str) -> List[PowerSample]:
        """Consume *chunk*; returns samples completed by it."""
        self._buffer += chunk
        samples: List[PowerSample] = []
        while True:
            end = self._buffer.find(CRLF)
            if end < 0:
                # Bound the buffer: garbage with no CRLF must not grow it
                # without limit.
                if len(self._buffer) > 1024:
                    self._buffer = self._buffer[-64:]
                break
            line, self._buffer = (self._buffer[:end],
                                  self._buffer[end + len(CRLF):])
            if not line.strip():
                continue
            try:
                samples.append(decode_frame(line))
                self.frames_decoded += 1
            except PowerMeterError:
                self.frames_dropped += 1
        return samples


class PowerSpyLink:
    """Server side: turns meter samples into a (lossy) frame stream."""

    def __init__(self, corruption_rate: float = 0.0,
                 seed: Optional[int] = 7) -> None:
        if not 0.0 <= corruption_rate < 1.0:
            raise PowerMeterError("corruption_rate must be within [0, 1)")
        self.corruption_rate = corruption_rate
        self._rng = np.random.default_rng(seed)

    def transmit(self, samples: Sequence[PowerSample]) -> str:
        """Encode *samples*; a fraction of frames get a flipped byte."""
        frames: List[str] = []
        for sample in samples:
            frame = encode_frame(sample)
            if (self.corruption_rate > 0.0
                    and self._rng.random() < self.corruption_rate):
                position = int(self._rng.integers(1, len(frame) - 3))
                original = frame[position]
                replacement = "X" if original != "X" else "Y"
                frame = frame[:position] + replacement + frame[position + 1:]
            frames.append(frame)
        return "".join(frames)


def roundtrip(samples: Sequence[PowerSample],
              corruption_rate: float = 0.0,
              seed: Optional[int] = 7) -> Tuple[List[PowerSample], int]:
    """Transmit and decode; returns (survivors, dropped count)."""
    link = PowerSpyLink(corruption_rate=corruption_rate, seed=seed)
    decoder = FrameDecoder()
    survivors = decoder.feed(link.transmit(samples))
    return survivors, decoder.frames_dropped

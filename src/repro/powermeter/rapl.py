"""Simulated Intel RAPL (Running Average Power Limit).

RAPL is the architecture-dependent alternative the paper discusses: since
Sandy Bridge, Intel parts expose model-specific registers (MSRs) with
cumulative energy counters per power domain.  The simulation reproduces
the real interface quirks consumers must handle:

* energies are reported in units decoded from ``MSR_RAPL_POWER_UNIT``
  (default granularity 2^-16 J ≈ 15.3 µJ),
* counters are 32-bit and wrap around (a busy package wraps in under an
  hour),
* RAPL covers the *package* (cores + uncore) and DRAM — never the rest of
  the system, so it cannot substitute for a wall meter,
* the interface only exists on Intel parts — the portability limitation
  that motivates the paper's counter-based approach.
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.errors import PowerMeterError
from repro.simcpu.machine import Machine, TickRecord

#: MSR addresses (Intel SDM).
MSR_RAPL_POWER_UNIT = 0x606
MSR_PKG_ENERGY_STATUS = 0x611
MSR_PP0_ENERGY_STATUS = 0x639
MSR_DRAM_ENERGY_STATUS = 0x619

#: Energy-status-unit field value 16 -> energies in 2^-16 J.
ENERGY_UNIT_FIELD = 16
ENERGY_UNIT_J = 2.0 ** -ENERGY_UNIT_FIELD

#: Counters are 32 bits wide.
COUNTER_WRAP = 2 ** 32


class RaplDomain(enum.Enum):
    """RAPL power domains we model."""

    PACKAGE = "package-0"
    PP0 = "core"
    DRAM = "dram"


_DOMAIN_MSR = {
    RaplDomain.PACKAGE: MSR_PKG_ENERGY_STATUS,
    RaplDomain.PP0: MSR_PP0_ENERGY_STATUS,
    RaplDomain.DRAM: MSR_DRAM_ENERGY_STATUS,
}


class RaplInterface:
    """MSR-level RAPL emulation over a machine's tick stream."""

    def __init__(self, machine: Machine) -> None:
        if machine.spec.vendor.lower() != "intel":
            raise PowerMeterError(
                f"RAPL is Intel-only; {machine.spec.vendor} unsupported")
        self.machine = machine
        self._energy_j: Dict[RaplDomain, float] = {
            domain: 0.0 for domain in RaplDomain}
        machine.add_observer(self._on_tick)

    def _on_tick(self, record: TickRecord) -> None:
        # Package = cores + uncore; PP0 = cores only; DRAM separate.  The
        # idle baseline outside the CPU (fans, disk, board) is invisible to
        # RAPL, which is why it cannot replace a wall meter.
        package_w = (record.power.cores + record.power.uncore
                     + record.power.leakage + record.power.wakeup)
        self._energy_j[RaplDomain.PACKAGE] += package_w * record.dt_s
        self._energy_j[RaplDomain.PP0] += (
            (record.power.cores + record.power.wakeup) * record.dt_s)
        self._energy_j[RaplDomain.DRAM] += record.power.dram * record.dt_s

    # -- MSR interface -------------------------------------------------------

    def read_msr(self, address: int) -> int:
        """Raw 64-bit MSR read, as ``rdmsr`` would return."""
        if address == MSR_RAPL_POWER_UNIT:
            # Bits 12:8 hold the energy-status-unit exponent.
            return ENERGY_UNIT_FIELD << 8
        for domain, msr in _DOMAIN_MSR.items():
            if address == msr:
                ticks = int(self._energy_j[domain] / ENERGY_UNIT_J)
                return ticks % COUNTER_WRAP
        raise PowerMeterError(f"unknown MSR 0x{address:x}")

    # -- convenience -----------------------------------------------------

    def energy_unit_j(self) -> float:
        """Decode the energy unit from MSR_RAPL_POWER_UNIT."""
        exponent = (self.read_msr(MSR_RAPL_POWER_UNIT) >> 8) & 0x1F
        return 2.0 ** -exponent

    def energy_j(self, domain: RaplDomain) -> float:
        """Cumulative energy of *domain*, already unwrapped by the caller.

        This returns the value a single MSR read exposes — i.e. modulo the
        32-bit wrap.  Use :class:`RaplEnergyReader` for monotonic totals.
        """
        return self.read_msr(_DOMAIN_MSR[domain]) * self.energy_unit_j()


class RaplEnergyReader:
    """Wrap-correcting reader, like the kernel's powercap sysfs layer."""

    def __init__(self, rapl: RaplInterface, domain: RaplDomain) -> None:
        self.rapl = rapl
        self.domain = domain
        self._last_raw = rapl.read_msr(_DOMAIN_MSR[domain])
        self._total_ticks = 0

    def total_energy_j(self) -> float:
        """Monotonic cumulative energy since the reader was created."""
        raw = self.rapl.read_msr(_DOMAIN_MSR[self.domain])
        delta = (raw - self._last_raw) % COUNTER_WRAP
        self._total_ticks += delta
        self._last_raw = raw
        return self._total_ticks * self.rapl.energy_unit_j()


class RaplPowerMeter:
    """Average-power view over RAPL, for comparison experiments.

    Note this reports *package + DRAM* power, not wall power: comparing it
    to a PowerSpy trace shows the constant offset RAPL misses.
    """

    def __init__(self, rapl: RaplInterface) -> None:
        self._readers = {
            RaplDomain.PACKAGE: RaplEnergyReader(rapl, RaplDomain.PACKAGE),
            RaplDomain.DRAM: RaplEnergyReader(rapl, RaplDomain.DRAM),
        }
        self._machine = rapl.machine
        self._last_time_s = rapl.machine.time_s
        self._last_energy_j = self._total()

    def _total(self) -> float:
        return sum(reader.total_energy_j()
                   for reader in self._readers.values())

    def average_power_w(self) -> float:
        """Average package+DRAM power since the previous call."""
        now = self._machine.time_s
        energy = self._total()
        dt = now - self._last_time_s
        if dt <= 0:
            return 0.0
        power = (energy - self._last_energy_j) / dt
        self._last_time_s = now
        self._last_energy_j = energy
        return power

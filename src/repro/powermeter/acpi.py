"""ACPI battery power meter: the coarse, free alternative.

Laptops expose the battery discharge rate through ACPI.  It costs nothing,
but updates slowly and with coarse quantization — included to show why the
paper dismisses "hardware-free" metering for fine-grained work.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.powermeter.base import PowerMeter
from repro.simcpu.machine import Machine

#: Typical ACPI battery reporting resolution, watts.
DEFAULT_RESOLUTION_W = 0.5

#: Smoothing factor: batteries report a heavily filtered discharge rate.
DEFAULT_SMOOTHING = 0.3


class AcpiBatteryMeter(PowerMeter):
    """Slow, heavily smoothed, coarsely quantized wall-power readings."""

    def __init__(self, machine: Machine, sample_rate_hz: float = 0.25,
                 resolution_w: float = DEFAULT_RESOLUTION_W,
                 smoothing: float = DEFAULT_SMOOTHING) -> None:
        super().__init__(machine, sample_rate_hz=sample_rate_hz)
        if resolution_w <= 0:
            raise ConfigurationError("resolution must be positive")
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError("smoothing must be within (0, 1]")
        self.resolution_w = resolution_w
        self.smoothing = smoothing
        self._filtered_w: float = 0.0
        self._primed = False

    def _postprocess(self, power_w: float) -> float:
        if not self._primed:
            self._filtered_w = power_w
            self._primed = True
        else:
            self._filtered_w += self.smoothing * (power_w - self._filtered_w)
        return round(self._filtered_w / self.resolution_w) * self.resolution_w

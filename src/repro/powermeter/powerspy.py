"""Simulated PowerSpy bluetooth wall-power meter.

The PowerSpy2 the paper uses plugs between the wall and the machine and
streams instantaneous power over bluetooth.  This simulation reproduces
its externally visible behaviour:

* it measures *wall* power — the whole system, not just the CPU,
* readings carry multiplicative gaussian noise (a percent-of-reading
  accuracy figure, as specified for the real device),
* values are quantized to the device's resolution,
* the bluetooth link can be connected/disconnected, and samples are lost
  while disconnected.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.powermeter.base import PowerMeter
from repro.simcpu.machine import Machine

#: Percent-of-reading accuracy of the PowerSpy2 (spec sheet: < 1 %).
DEFAULT_NOISE_FRACTION = 0.008

#: Device resolution, watts.
DEFAULT_RESOLUTION_W = 0.1


class PowerSpy(PowerMeter):
    """Wall-power meter with noise and quantization."""

    def __init__(self, machine: Machine, sample_rate_hz: float = 1.0,
                 noise_fraction: float = DEFAULT_NOISE_FRACTION,
                 resolution_w: float = DEFAULT_RESOLUTION_W,
                 seed: Optional[int] = 1234) -> None:
        super().__init__(machine, sample_rate_hz=sample_rate_hz)
        if noise_fraction < 0 or noise_fraction >= 0.5:
            raise ConfigurationError("noise_fraction must be within [0, 0.5)")
        if resolution_w < 0:
            raise ConfigurationError("resolution must be >= 0")
        self.noise_fraction = noise_fraction
        self.resolution_w = resolution_w
        self._rng = np.random.default_rng(seed)

    def _postprocess(self, power_w: float) -> float:
        noisy = power_w * (1.0 + self.noise_fraction
                           * float(self._rng.standard_normal()))
        if self.resolution_w > 0:
            noisy = round(noisy / self.resolution_w) * self.resolution_w
        return max(0.0, noisy)

"""Simulated power-measurement equipment: PowerSpy, RAPL, ACPI battery."""

from repro.powermeter.acpi import AcpiBatteryMeter
from repro.powermeter.base import PowerMeter, PowerSample
from repro.powermeter.powerspy import PowerSpy
from repro.powermeter.protocol import (FrameDecoder, PowerSpyLink,
                                       decode_frame, encode_frame)
from repro.powermeter.rapl import (RaplDomain, RaplEnergyReader,
                                   RaplInterface, RaplPowerMeter)

__all__ = [
    "AcpiBatteryMeter", "FrameDecoder", "PowerMeter", "PowerSample",
    "PowerSpy", "PowerSpyLink", "RaplDomain", "RaplEnergyReader",
    "RaplInterface", "RaplPowerMeter", "decode_frame", "encode_frame",
]

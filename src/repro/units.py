"""Physical units and safe conversions used across the library.

All frequencies are stored internally in hertz (int), powers in watts
(float), energies in joules (float) and times in seconds (float).  The
helpers in this module make unit intent explicit at call sites
(``mhz(1600)`` reads better than ``1600 * 1_000_000``) and centralise
validation so negative or non-finite quantities are rejected early.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

#: One kilohertz in hertz.
KHZ = 1_000
#: One megahertz in hertz.
MHZ = 1_000_000
#: One gigahertz in hertz.
GHZ = 1_000_000_000


def khz(value: float) -> int:
    """Return *value* kilohertz expressed in hertz."""
    return int(round(value * KHZ))


def mhz(value: float) -> int:
    """Return *value* megahertz expressed in hertz."""
    return int(round(value * MHZ))


def ghz(value: float) -> int:
    """Return *value* gigahertz expressed in hertz."""
    return int(round(value * GHZ))


def to_ghz(hertz: float) -> float:
    """Return *hertz* expressed in gigahertz."""
    return hertz / GHZ


def to_mhz(hertz: float) -> float:
    """Return *hertz* expressed in megahertz."""
    return hertz / MHZ


def watts(value: float) -> float:
    """Validate and return a power in watts (must be finite and >= 0)."""
    if not math.isfinite(value) or value < 0:
        raise ConfigurationError(f"invalid power: {value!r} W")
    return float(value)


def joules(value: float) -> float:
    """Validate and return an energy in joules (must be finite and >= 0)."""
    if not math.isfinite(value) or value < 0:
        raise ConfigurationError(f"invalid energy: {value!r} J")
    return float(value)


def seconds(value: float) -> float:
    """Validate and return a duration in seconds (must be finite and >= 0)."""
    if not math.isfinite(value) or value < 0:
        raise ConfigurationError(f"invalid duration: {value!r} s")
    return float(value)


def kib(value: float) -> int:
    """Return *value* kibibytes expressed in bytes."""
    return int(round(value * 1024))


def mib(value: float) -> int:
    """Return *value* mebibytes expressed in bytes."""
    return int(round(value * 1024 * 1024))


def energy(power_w: float, duration_s: float) -> float:
    """Return the energy in joules of *power_w* sustained for *duration_s*."""
    return watts(power_w) * seconds(duration_s)


def average_power(energy_j: float, duration_s: float) -> float:
    """Return the average power in watts of *energy_j* over *duration_s*.

    Raises :class:`~repro.errors.ConfigurationError` for a zero or negative
    duration, since the average would be undefined.
    """
    duration = seconds(duration_s)
    if duration <= 0:
        raise ConfigurationError("duration must be positive to average power")
    return joules(energy_j) / duration


def format_frequency(hertz: float) -> str:
    """Render a frequency in the most natural unit (e.g. ``'3.30 GHz'``)."""
    if hertz >= GHZ:
        return f"{hertz / GHZ:.2f} GHz"
    if hertz >= MHZ:
        return f"{hertz / MHZ:.0f} MHz"
    if hertz >= KHZ:
        return f"{hertz / KHZ:.0f} kHz"
    return f"{hertz:.0f} Hz"


def format_power(watts_value: float) -> str:
    """Render a power with a fixed two-decimal precision (e.g. ``'31.48 W'``)."""
    return f"{watts_value:.2f} W"


def format_bytes(num_bytes: int) -> str:
    """Render a byte size in KiB/MiB/GiB as appropriate (e.g. ``'3 MB'``)."""
    if num_bytes >= 1024 ** 3:
        return f"{num_bytes / 1024 ** 3:.0f} GB"
    if num_bytes >= 1024 ** 2:
        return f"{num_bytes / 1024 ** 2:.0f} MB"
    if num_bytes >= 1024:
        return f"{num_bytes / 1024:.0f} KB"
    return f"{num_bytes} B"

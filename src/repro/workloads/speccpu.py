"""Synthetic SPEC CPU2006-like applications.

Bertran et al. — the comparison point the paper cites with a 4.63 % average
error — evaluate on six applications from SPEC CPU2006.  These synthetic
counterparts reproduce the *diversity* that matters for power modelling:
each app has a distinct instruction mix and memory behaviour, spanning
compute-bound integer code, FP-heavy number crunching and memory-bound
pointer chasing.

The parameters are loosely inspired by the published characterisations of
the corresponding benchmarks (perlbench, bzip2, mcf, namd, lbm, libquantum).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.os.process import Demand
from repro.simcpu.caches import MemoryProfile
from repro.simcpu.pipeline import InstructionMix
from repro.workloads.base import ConstantWorkload


class SpecCpuApp(ConstantWorkload):
    """One synthetic SPEC CPU-like application (single-threaded, CPU-bound)."""

    def __init__(self, name: str, mix: InstructionMix, memory: MemoryProfile,
                 duration_s: Optional[float] = None) -> None:
        super().__init__(
            demand=Demand(utilization=1.0, mix=mix, memory=memory),
            duration_s=duration_s,
            name=name,
        )


def _app_catalog() -> Dict[str, SpecCpuApp]:
    kib = 1024
    mib = 1024 * 1024
    return {
        # Integer, branchy, small working set (interpreter-like).
        "perlbench": SpecCpuApp(
            "perlbench",
            InstructionMix(fp_fraction=0.0, branch_fraction=0.23,
                           branch_miss_rate=0.05),
            MemoryProfile(mem_ops_per_instruction=0.30,
                          working_set_bytes=512 * kib, locality=0.95)),
        # Integer compression: moderate working set, good locality.
        "bzip2": SpecCpuApp(
            "bzip2",
            InstructionMix(fp_fraction=0.0, branch_fraction=0.15,
                           branch_miss_rate=0.06),
            MemoryProfile(mem_ops_per_instruction=0.33,
                          working_set_bytes=4 * mib, locality=0.90)),
        # Pointer-chasing graph code: notoriously memory-bound.
        "mcf": SpecCpuApp(
            "mcf",
            InstructionMix(fp_fraction=0.0, branch_fraction=0.19,
                           branch_miss_rate=0.08),
            MemoryProfile(mem_ops_per_instruction=0.38,
                          working_set_bytes=128 * mib, locality=0.55)),
        # FP molecular dynamics: compute-bound, tiny working set.
        "namd": SpecCpuApp(
            "namd",
            InstructionMix(fp_fraction=0.45, simd_fraction=0.10,
                           branch_fraction=0.08, branch_miss_rate=0.01),
            MemoryProfile(mem_ops_per_instruction=0.25,
                          working_set_bytes=384 * kib, locality=0.97)),
        # FP stencil (lattice Boltzmann): streaming, DRAM bandwidth bound.
        "lbm": SpecCpuApp(
            "lbm",
            InstructionMix(fp_fraction=0.40, simd_fraction=0.15,
                           branch_fraction=0.04, branch_miss_rate=0.01),
            MemoryProfile(mem_ops_per_instruction=0.35,
                          working_set_bytes=64 * mib, locality=0.65)),
        # Quantum simulation: streaming over a large vector, simple control.
        "libquantum": SpecCpuApp(
            "libquantum",
            InstructionMix(fp_fraction=0.10, simd_fraction=0.05,
                           branch_fraction=0.12, branch_miss_rate=0.02),
            MemoryProfile(mem_ops_per_instruction=0.30,
                          working_set_bytes=32 * mib, locality=0.70)),
    }


#: Names of the six applications, in catalogue order.
APP_NAMES = tuple(_app_catalog())


def spec_cpu_app(name: str, duration_s: Optional[float] = None) -> SpecCpuApp:
    """Instantiate one synthetic SPEC CPU app by name."""
    catalog = _app_catalog()
    if name not in catalog:
        raise ConfigurationError(
            f"unknown SPEC CPU app {name!r}; available: {sorted(catalog)}")
    app = catalog[name]
    if duration_s is None:
        return app
    return SpecCpuApp(app.name, app.phases[0].demand.mix,
                      app.phases[0].demand.memory, duration_s=duration_s)


def spec_cpu_suite(duration_s: Optional[float] = None) -> List[SpecCpuApp]:
    """All six synthetic applications."""
    return [spec_cpu_app(name, duration_s) for name in APP_NAMES]

"""A diurnal web-server workload.

Servers are the machines where software energy efficiency pays off most,
and their load has structure: a day/night cycle, weekday request ramps,
short traffic spikes and a constant maintenance floor.  This synthetic
server reproduces those dynamics so long-horizon experiments (capacity
planning under a power budget, hotspot tracking over a "day") have a
realistic driver.

Time is compressed: one simulated "day" defaults to 240 s so a full
diurnal cycle fits in an experiment.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.os.process import Demand
from repro.simcpu.caches import MemoryProfile
from repro.simcpu.pipeline import InstructionMix
from repro.workloads.base import Workload


class WebServerWorkload(Workload):
    """Diurnal load with random spikes and a maintenance floor."""

    name = "webserver"

    def __init__(self, duration_s: float = 480.0,
                 day_length_s: float = 240.0,
                 peak_utilization: float = 0.9,
                 floor_utilization: float = 0.08,
                 threads: int = 2,
                 spike_rate_per_day: float = 6.0,
                 spike_duration_s: float = 4.0,
                 seed: int = 21) -> None:
        if duration_s <= 0 or day_length_s <= 0:
            raise ConfigurationError("durations must be positive")
        if not 0.0 <= floor_utilization < peak_utilization <= 1.0:
            raise ConfigurationError(
                "need 0 <= floor < peak <= 1 utilisation")
        if threads < 1:
            raise ConfigurationError("threads must be >= 1")
        self.duration_s = duration_s
        self.day_length_s = day_length_s
        self.peak_utilization = peak_utilization
        self.floor_utilization = floor_utilization
        self.threads = threads
        self.spike_duration_s = spike_duration_s

        rng = np.random.default_rng(seed)
        days = max(1.0, duration_s / day_length_s)
        n_spikes = int(round(spike_rate_per_day * days))
        self._spike_starts = sorted(
            float(rng.uniform(0, duration_s)) for _ in range(n_spikes))
        self._jitter = 1.0 + 0.05 * rng.standard_normal(
            int(math.ceil(duration_s)) + 1)

        self._request_mix = InstructionMix(
            fp_fraction=0.02, branch_fraction=0.22, branch_miss_rate=0.05)
        self._request_memory = MemoryProfile(
            mem_ops_per_instruction=0.32,
            working_set_bytes=24 * 1024 ** 2, locality=0.92)

    def total_duration_s(self) -> Optional[float]:
        return self.duration_s

    # -- load shape --------------------------------------------------------

    def diurnal_level(self, time_s: float) -> float:
        """Base utilisation from the day/night sine, in [floor, peak]."""
        phase = 2.0 * math.pi * (time_s / self.day_length_s)
        # Shifted sine: minimum at "night" (t=0), maximum mid-"day".
        wave = 0.5 * (1.0 - math.cos(phase))
        return (self.floor_utilization
                + (self.peak_utilization - self.floor_utilization) * wave)

    def in_spike(self, time_s: float) -> bool:
        """Whether a traffic spike is in progress at *time_s*."""
        for start in self._spike_starts:
            if start <= time_s < start + self.spike_duration_s:
                return True
            if start > time_s:
                break
        return False

    def demand(self, local_time_s: float) -> Optional[Demand]:
        if local_time_s >= self.duration_s:
            return None
        level = self.diurnal_level(local_time_s)
        if self.in_spike(local_time_s):
            level = self.peak_utilization
        jitter = self._jitter[min(int(local_time_s),
                                  len(self._jitter) - 1)]
        utilization = min(1.0, max(self.floor_utilization, level * jitter))
        return Demand(utilization=utilization, mix=self._request_mix,
                      memory=self._request_memory, threads=self.threads)

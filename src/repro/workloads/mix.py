"""Composite and randomized workloads.

:class:`RandomWorkload` draws a sequence of random phases from a seeded
generator — useful for hold-out evaluation of learned models on load the
sampling grid never saw.  :func:`colocated_pair` builds the SMT co-location
scenario used by the hyperthread-aware comparison.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.os.process import Demand
from repro.simcpu.caches import MemoryProfile
from repro.simcpu.pipeline import InstructionMix
from repro.workloads.base import Phase, PhasedWorkload, Workload


class RandomWorkload(PhasedWorkload):
    """Random phases with varied utilisation, mixes and working sets."""

    def __init__(self, duration_s: float = 120.0, seed: int = 7,
                 mean_phase_s: float = 8.0, threads: int = 1) -> None:
        if duration_s <= 0 or mean_phase_s <= 0:
            raise ConfigurationError("durations must be positive")
        rng = np.random.default_rng(seed)
        phases: List[Phase] = []
        elapsed = 0.0
        while elapsed < duration_s:
            length = float(rng.exponential(mean_phase_s)) + 0.5
            length = min(length, duration_s - elapsed)
            if length <= 0:
                break
            utilization = float(rng.uniform(0.05, 1.0))
            fp = float(rng.uniform(0.0, 0.4))
            working_set = int(rng.choice(
                [16 * 1024, 256 * 1024, 2 * 1024 ** 2,
                 16 * 1024 ** 2, 96 * 1024 ** 2]))
            locality = float(rng.uniform(0.55, 0.98))
            phases.append(Phase(length, Demand(
                utilization=utilization,
                mix=InstructionMix(fp_fraction=fp, branch_fraction=0.15,
                                   branch_miss_rate=0.04),
                memory=MemoryProfile(
                    mem_ops_per_instruction=float(rng.uniform(0.15, 0.45)),
                    working_set_bytes=working_set,
                    locality=locality),
                threads=threads,
            )))
            elapsed += length
        super().__init__(phases, name=f"random-{seed}")


def colocated_pair(duration_s: float = 60.0, seed: int = 11
                   ) -> Tuple[Workload, Workload]:
    """Two workloads intended to share one physical core's hyperthreads.

    One is compute-bound and one memory-bound: the asymmetric pairing where
    SMT-oblivious power attribution errs the most.
    """
    compute = PhasedWorkload(
        [Phase(duration_s, Demand(
            utilization=1.0,
            mix=InstructionMix(fp_fraction=0.30, simd_fraction=0.10,
                               branch_fraction=0.10, branch_miss_rate=0.02),
            memory=MemoryProfile(mem_ops_per_instruction=0.20,
                                 working_set_bytes=32 * 1024,
                                 locality=0.98)))],
        name="colocated-compute")
    memory = PhasedWorkload(
        [Phase(duration_s, Demand(
            utilization=1.0,
            mix=InstructionMix(branch_fraction=0.15, branch_miss_rate=0.05),
            memory=MemoryProfile(mem_ops_per_instruction=0.40,
                                 working_set_bytes=64 * 1024 ** 2,
                                 locality=0.60)))],
        name="colocated-memory")
    return compute, memory

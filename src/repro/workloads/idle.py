"""Idle and near-idle workloads, used for idle-power calibration."""

from __future__ import annotations

from typing import Optional

from repro.os.process import Demand
from repro.workloads.base import ConstantWorkload, Workload, cpu_demand


class IdleWorkload(Workload):
    """A process that sleeps forever (or for a fixed duration)."""

    name = "idle"

    def __init__(self, duration_s: Optional[float] = None) -> None:
        self.duration_s = duration_s

    def total_duration_s(self) -> Optional[float]:
        return self.duration_s

    def demand(self, local_time_s: float) -> Optional[Demand]:
        if self.duration_s is not None and local_time_s >= self.duration_s:
            return None
        return Demand(utilization=0.0)


class BackgroundNoise(ConstantWorkload):
    """A light daemon-like load (a few percent of one CPU)."""

    def __init__(self, utilization: float = 0.03,
                 duration_s: Optional[float] = None) -> None:
        super().__init__(
            demand=cpu_demand(utilization=utilization),
            duration_s=duration_s,
            name="background-noise",
        )

"""Workload library: stress utilities, synthetic benchmarks and mixes."""

from repro.workloads.base import (ConstantWorkload, Phase, PhasedWorkload,
                                  Workload, cpu_demand, memory_demand)
from repro.workloads.idle import BackgroundNoise, IdleWorkload
from repro.workloads.mix import RandomWorkload, colocated_pair
from repro.workloads.speccpu import (APP_NAMES, SpecCpuApp, spec_cpu_app,
                                     spec_cpu_suite)
from repro.workloads.specjbb import SpecJbbWorkload
from repro.workloads.stress import (DEFAULT_LEVELS, DEFAULT_WORKING_SETS,
                                    CpuStress, MemoryStress, MixedStress,
                                    stress_matrix)
from repro.workloads.webserver import WebServerWorkload

__all__ = [
    "APP_NAMES", "BackgroundNoise", "ConstantWorkload", "CpuStress",
    "DEFAULT_LEVELS", "DEFAULT_WORKING_SETS", "IdleWorkload",
    "MemoryStress", "MixedStress", "Phase", "PhasedWorkload",
    "RandomWorkload", "SpecCpuApp", "SpecJbbWorkload", "WebServerWorkload",
    "Workload",
    "colocated_pair", "cpu_demand", "memory_demand", "spec_cpu_app",
    "spec_cpu_suite", "stress_matrix",
]

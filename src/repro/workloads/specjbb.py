"""A synthetic SPECjbb2013-like benchmark.

SPECjbb2013 is the memory-intensive Java business benchmark the paper uses
for its preliminary experiment (Figure 3).  This synthetic stand-in
reproduces the *shape* of its load over a run:

1. a ramp-up where the harness searches for the maximum injection rate,
2. a staircase of sustained load plateaus at increasing fractions of the
   maximum rate (the RT-curve phase),
3. short garbage-collection bursts — memory-heavy, full-utilisation spikes
   that recur throughout,
4. per-quantum jitter around each plateau.

All randomness is drawn at construction from a seeded generator, so a
given (seed, duration) pair always produces the same trace.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.os.process import Demand
from repro.simcpu.caches import MemoryProfile
from repro.simcpu.pipeline import InstructionMix
from repro.workloads.base import Workload

#: Default trace length, matching the x-axis of Figure 3 (seconds).
DEFAULT_DURATION_S = 2500.0

#: Java heap working set of the backend (bytes).
HEAP_WORKING_SET = 96 * 1024 * 1024

#: Fractions of max injection rate visited by the RT-curve staircase.
RT_CURVE_STEPS = (0.30, 0.45, 0.60, 0.70, 0.80, 0.90, 1.00, 0.85, 0.55)


class SpecJbbWorkload(Workload):
    """Synthetic SPECjbb2013: ramp, RT-curve staircase, GC spikes, jitter."""

    name = "specjbb2013"

    def __init__(self, duration_s: float = DEFAULT_DURATION_S,
                 threads: int = 4, seed: int = 42,
                 ramp_fraction: float = 0.12,
                 jitter: float = 0.06,
                 gc_interval_s: float = 47.0,
                 gc_duration_s: float = 3.0) -> None:
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if threads < 1:
            raise ConfigurationError("threads must be >= 1")
        if not 0.0 <= jitter < 0.5:
            raise ConfigurationError("jitter must be within [0, 0.5)")
        self.duration_s = duration_s
        self.threads = threads
        self.seed = seed
        self._ramp_s = ramp_fraction * duration_s
        self._gc_interval_s = gc_interval_s
        self._gc_duration_s = gc_duration_s

        rng = np.random.default_rng(seed)
        # One jitter factor per second of trace, precomputed for determinism.
        self._jitter = 1.0 + jitter * rng.standard_normal(
            int(math.ceil(duration_s)) + 1)
        # GC bursts drift around the nominal interval.
        self._gc_offsets = rng.uniform(-5.0, 5.0, size=max(
            1, int(duration_s / gc_interval_s) + 2))

        self._transaction_mix = InstructionMix(
            fp_fraction=0.05, simd_fraction=0.0,
            branch_fraction=0.20, branch_miss_rate=0.05)
        self._transaction_memory = MemoryProfile(
            mem_ops_per_instruction=0.35,
            working_set_bytes=HEAP_WORKING_SET,
            locality=0.93)
        self._gc_mix = InstructionMix(
            fp_fraction=0.0, simd_fraction=0.0,
            branch_fraction=0.12, branch_miss_rate=0.03)
        self._gc_memory = MemoryProfile(
            mem_ops_per_instruction=0.50,
            working_set_bytes=2 * HEAP_WORKING_SET,
            locality=0.60)

    def total_duration_s(self) -> Optional[float]:
        return self.duration_s

    # -- trace shape -----------------------------------------------------

    def base_utilization(self, time_s: float) -> float:
        """Plateau level before jitter and GC, in [0, 1]."""
        if time_s < self._ramp_s:
            # Harness searching for max rate: smooth ramp to full load.
            return 0.15 + 0.85 * (time_s / self._ramp_s)
        steady = self.duration_s - self._ramp_s
        step_length = steady / len(RT_CURVE_STEPS)
        index = min(int((time_s - self._ramp_s) / step_length),
                    len(RT_CURVE_STEPS) - 1)
        return RT_CURVE_STEPS[index]

    def in_gc(self, time_s: float) -> bool:
        """Whether a GC burst is active at *time_s*."""
        if time_s < self._gc_interval_s:
            return False
        cycle = int(time_s / self._gc_interval_s)
        offset = self._gc_offsets[min(cycle, len(self._gc_offsets) - 1)]
        burst_start = cycle * self._gc_interval_s + offset
        return burst_start <= time_s < burst_start + self._gc_duration_s

    # -- Program protocol ---------------------------------------------------

    def demand(self, local_time_s: float) -> Optional[Demand]:
        if local_time_s >= self.duration_s:
            return None
        if self.in_gc(local_time_s):
            return Demand(
                utilization=1.0,
                mix=self._gc_mix,
                memory=self._gc_memory,
                threads=self.threads,
            )
        base = self.base_utilization(local_time_s)
        jitter = self._jitter[min(int(local_time_s), len(self._jitter) - 1)]
        utilization = min(1.0, max(0.05, base * jitter))
        return Demand(
            utilization=utilization,
            mix=self._transaction_mix,
            memory=self._transaction_memory,
            threads=self.threads,
        )

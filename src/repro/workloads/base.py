"""Workload base classes.

A workload is a :class:`~repro.os.process.Program`: the simulated kernel
polls ``demand(local_time_s)`` every quantum.  :class:`PhasedWorkload`
builds workloads from a list of timed :class:`Phase` records, which covers
everything from a constant stress loop to a multi-phase benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.os.process import Demand
from repro.simcpu.caches import MemoryProfile
from repro.simcpu.pipeline import InstructionMix


@dataclass(frozen=True)
class Phase:
    """A constant demand sustained for a duration.

    ``region`` optionally names the code region (function, request
    handler, GC, ...) the phase models; the code-level energy profiler
    (:mod:`repro.core.codelevel`) attributes energy per region name.
    """

    duration_s: float
    demand: Demand
    region: str = ""

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("phase duration must be positive")


class Workload:
    """Abstract workload; subclasses implement :meth:`demand`."""

    #: Human-readable name, used as the default process name.
    name = "workload"

    def demand(self, local_time_s: float) -> Optional[Demand]:
        """Demand at *local_time_s*, or None once finished."""
        raise NotImplementedError

    def total_duration_s(self) -> Optional[float]:
        """Known runtime in seconds, or None for open-ended workloads."""
        return None

    def region(self, local_time_s: float) -> str:
        """Name of the code region active at *local_time_s* ("" = none)."""
        return ""


class PhasedWorkload(Workload):
    """A workload defined by a fixed sequence of phases."""

    def __init__(self, phases: Sequence[Phase], name: str = "phased",
                 repeat: bool = False) -> None:
        if not phases:
            raise ConfigurationError("at least one phase required")
        self.name = name
        self.phases: List[Phase] = list(phases)
        self.repeat = repeat
        self._cycle_s = sum(phase.duration_s for phase in self.phases)

    def total_duration_s(self) -> Optional[float]:
        return None if self.repeat else self._cycle_s

    def _phase_at(self, local_time_s: float) -> Optional[Phase]:
        time = local_time_s
        if self.repeat:
            time = time % self._cycle_s
        elif time >= self._cycle_s - 1e-12:
            return None
        for phase in self.phases:
            if time < phase.duration_s:
                return phase
            time -= phase.duration_s
        return self.phases[-1]

    def demand(self, local_time_s: float) -> Optional[Demand]:
        phase = self._phase_at(local_time_s)
        return phase.demand if phase is not None else None

    def region(self, local_time_s: float) -> str:
        phase = self._phase_at(local_time_s)
        return phase.region if phase is not None else ""


class ConstantWorkload(PhasedWorkload):
    """A single constant demand, optionally time-limited."""

    def __init__(self, demand: Demand, duration_s: Optional[float] = None,
                 name: str = "constant") -> None:
        open_ended = duration_s is None
        super().__init__(
            phases=[Phase(duration_s if duration_s else 1.0, demand)],
            name=name,
            repeat=open_ended,
        )


def cpu_demand(utilization: float = 1.0, threads: int = 1) -> Demand:
    """A CPU-bound demand: tiny working set, integer-dominated mix."""
    return Demand(
        utilization=utilization,
        mix=InstructionMix(fp_fraction=0.05, branch_fraction=0.15,
                           branch_miss_rate=0.02),
        memory=MemoryProfile(mem_ops_per_instruction=0.15,
                             working_set_bytes=8 * 1024, locality=0.99),
        threads=threads,
    )


def memory_demand(utilization: float = 1.0, working_set_bytes: int = 32 * 1024 * 1024,
                  locality: float = 0.75, threads: int = 1) -> Demand:
    """A memory-bound demand: large working set, load/store heavy mix."""
    return Demand(
        utilization=utilization,
        mix=InstructionMix(fp_fraction=0.0, branch_fraction=0.10,
                           branch_miss_rate=0.02),
        memory=MemoryProfile(mem_ops_per_instruction=0.40,
                             working_set_bytes=working_set_bytes,
                             locality=locality),
        threads=threads,
    )

"""Stress workloads — the "Stress Utility" box of the paper's Figure 1.

The sampling pipeline stresses the processor "in several dimensions" with
CPU- and memory-intensive loops at controlled utilisation levels, one run
per available frequency.  :func:`stress_matrix` produces the standard grid
the learning pipeline iterates over: for each dimension (cpu / memory /
mixed) a ramp of utilisation levels and, for the memory dimension, several
working-set sizes so the cache-reference and cache-miss counters span
their realistic ranges.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.os.process import Demand
from repro.simcpu.caches import MemoryProfile
from repro.simcpu.pipeline import InstructionMix
from repro.workloads.base import ConstantWorkload, Workload, cpu_demand, memory_demand

#: Working-set sizes (bytes) the memory stressor sweeps: L1-resident,
#: L2-resident, L3-resident, and two DRAM-bound sizes.
DEFAULT_WORKING_SETS = (16 * 1024, 192 * 1024, 2 * 1024 * 1024,
                        16 * 1024 * 1024, 64 * 1024 * 1024)

#: Utilisation levels the stressors ramp through.
DEFAULT_LEVELS = (0.25, 0.5, 0.75, 1.0)


class CpuStress(ConstantWorkload):
    """A CPU-bound spin loop at a fixed utilisation (stress-ng ``--cpu``)."""

    def __init__(self, utilization: float = 1.0, threads: int = 1,
                 duration_s: Optional[float] = None) -> None:
        super().__init__(
            demand=cpu_demand(utilization=utilization, threads=threads),
            duration_s=duration_s,
            name=f"stress-cpu-{int(utilization * 100)}",
        )


class MemoryStress(ConstantWorkload):
    """A memory-walking loop over a configurable working set."""

    def __init__(self, utilization: float = 1.0,
                 working_set_bytes: int = 32 * 1024 * 1024,
                 locality: float = 0.75, threads: int = 1,
                 duration_s: Optional[float] = None) -> None:
        super().__init__(
            demand=memory_demand(
                utilization=utilization,
                working_set_bytes=working_set_bytes,
                locality=locality,
                threads=threads,
            ),
            duration_s=duration_s,
            name=f"stress-mem-{working_set_bytes // 1024}k",
        )


class MixedStress(ConstantWorkload):
    """Interleaved compute and memory work (FP-flavoured)."""

    def __init__(self, utilization: float = 1.0,
                 working_set_bytes: int = 4 * 1024 * 1024,
                 fp_fraction: float = 0.25, threads: int = 1,
                 duration_s: Optional[float] = None) -> None:
        if not 0.0 <= fp_fraction <= 0.6:
            raise ConfigurationError("fp_fraction must be within [0, 0.6]")
        demand = Demand(
            utilization=utilization,
            mix=InstructionMix(fp_fraction=fp_fraction, simd_fraction=0.1,
                               branch_fraction=0.12, branch_miss_rate=0.03),
            memory=MemoryProfile(mem_ops_per_instruction=0.30,
                                 working_set_bytes=working_set_bytes,
                                 locality=0.85),
            threads=threads,
        )
        super().__init__(demand=demand, duration_s=duration_s,
                         name=f"stress-mixed-{int(utilization * 100)}")


def stress_matrix(levels: Sequence[float] = DEFAULT_LEVELS,
                  working_sets: Sequence[int] = DEFAULT_WORKING_SETS,
                  threads: int = 1) -> List[Workload]:
    """The standard sampling grid of Figure 1.

    Covers the CPU dimension at each utilisation level, the memory
    dimension at each (level, working set) pair, and a mixed dimension, so
    the regression sees the full dynamic range of every counter.
    """
    for level in levels:
        if not 0.0 < level <= 1.0:
            raise ConfigurationError(f"invalid utilisation level {level}")
    workloads: List[Workload] = []
    for level in levels:
        workloads.append(CpuStress(utilization=level, threads=threads))
    for working_set in working_sets:
        for level in levels:
            workloads.append(MemoryStress(
                utilization=level, working_set_bytes=working_set,
                threads=threads))
    for level in levels:
        workloads.append(MixedStress(utilization=level, threads=threads))
    return workloads


def iter_stress_names(workloads: Sequence[Workload]) -> Iterator[str]:
    """Names of the workloads in a matrix (handy for progress reporting)."""
    for workload in workloads:
        yield workload.name

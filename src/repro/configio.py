"""Minimal TOML reading/writing for pipeline config files.

Pipeline specs serialize to a deliberately small TOML subset — bare
keys, JSON-compatible scalar values, inline arrays of scalars,
``[section]`` tables and ``[[section]]`` arrays of tables.  Reading uses
the stdlib :mod:`tomllib` where available (Python >= 3.11) and falls
back to a parser for exactly that subset on older interpreters, so
config files work across the supported Python range without adding a
dependency.

The subset is closed under round-trip: everything :func:`dumps_toml`
emits, :func:`loads_toml` parses back to an equal structure (with both
parsers).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Tuple

try:  # Python >= 3.11
    import tomllib as _tomllib
except ModuleNotFoundError:  # pragma: no cover - depends on interpreter
    _tomllib = None

from repro.errors import ConfigurationError

__all__ = ["dumps_toml", "loads_toml"]


# -- writing ----------------------------------------------------------------

def _scalar(value: Any) -> str:
    """One TOML scalar/array literal.

    JSON happens to be valid TOML for strings (same escapes), numbers,
    booleans and homogeneous arrays of those, so :func:`json.dumps`
    does the formatting.
    """
    if isinstance(value, tuple):
        value = list(value)
    if isinstance(value, float) and value != value:  # NaN has no JSON form
        raise ConfigurationError("cannot serialize NaN to TOML")
    try:
        return json.dumps(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"cannot serialize {value!r} to TOML: {exc}") from None


def _emit_table(data: Mapping[str, Any], path: Tuple[str, ...],
                lines: List[str]) -> None:
    scalars = []
    tables = []
    for key, value in data.items():
        if isinstance(value, Mapping):
            tables.append((key, value, False))
        elif (isinstance(value, (list, tuple)) and value
                and all(isinstance(item, Mapping) for item in value)):
            tables.append((key, value, True))
        else:
            scalars.append((key, value))
    for key, value in scalars:
        lines.append(f"{key} = {_scalar(value)}")
    for key, value, is_array in tables:
        child_path = path + (key,)
        dotted = ".".join(child_path)
        if is_array:
            for element in value:
                lines.append("")
                lines.append(f"[[{dotted}]]")
                _emit_table(element, child_path, lines)
        else:
            lines.append("")
            lines.append(f"[{dotted}]")
            _emit_table(value, child_path, lines)


def dumps_toml(data: Mapping[str, Any]) -> str:
    """Serialize a nested dict to the TOML subset described above."""
    lines: List[str] = []
    _emit_table(data, (), lines)
    return "\n".join(lines).lstrip("\n") + "\n"


# -- reading ----------------------------------------------------------------

def _descend(root: Dict[str, Any], parts: Tuple[str, ...],
             line: str) -> Dict[str, Any]:
    """The table a dotted header path refers to (creating as needed)."""
    current = root
    for part in parts:
        node = current.setdefault(part, {})
        if isinstance(node, list):
            if not node:
                raise ConfigurationError(f"bad TOML header {line!r}: "
                                         f"empty table array {part!r}")
            node = node[-1]
        if not isinstance(node, dict):
            raise ConfigurationError(
                f"bad TOML header {line!r}: {part!r} is not a table")
        current = node
    return current


def _loads_subset(text: str) -> Dict[str, Any]:
    root: Dict[str, Any] = {}
    current = root
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[[") and line.endswith("]]"):
            parts = tuple(part.strip() for part in line[2:-2].split("."))
            parent = _descend(root, parts[:-1], line)
            array = parent.setdefault(parts[-1], [])
            if not isinstance(array, list):
                raise ConfigurationError(
                    f"bad TOML header {line!r}: {parts[-1]!r} is not "
                    "a table array")
            array.append({})
            current = array[-1]
        elif line.startswith("[") and line.endswith("]"):
            parts = tuple(part.strip() for part in line[1:-1].split("."))
            current = _descend(root, parts, line)
        elif "=" in line:
            key, _, value = line.partition("=")
            try:
                current[key.strip()] = json.loads(value.strip())
            except ValueError:
                raise ConfigurationError(
                    f"unsupported TOML value in line {raw_line!r} "
                    "(this reader handles JSON-style scalars and "
                    "arrays only)") from None
        else:
            raise ConfigurationError(f"unparseable TOML line {raw_line!r}")
    return root


def loads_toml(text: str) -> Dict[str, Any]:
    """Parse TOML text into nested dicts/lists/scalars."""
    if _tomllib is not None:
        try:
            return _tomllib.loads(text)
        except _tomllib.TOMLDecodeError as exc:
            raise ConfigurationError(f"bad TOML: {exc}") from None
    return _loads_subset(text)

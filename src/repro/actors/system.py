"""The actor system: registry, dispatch loop and supervision.

Execution model: :meth:`ActorSystem.dispatch` drains mailboxes in global
FIFO order until quiescent.  Because there is exactly one thread, message
processing is deterministic — the property that makes the PowerAPI
pipeline unit-testable tick by tick.  Under real-time use the host
(:class:`repro.core.monitor.PowerAPI`) calls ``dispatch()`` after every
clock tick, which is equivalent to an event loop that always drains.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.actors.actor import (Actor, ActorContext, ActorRef, Envelope,
                                Mailbox)
from repro.actors.eventbus import EventBus
from repro.actors.supervision import (Directive, RestartStrategy,
                                      SupervisionStrategy)
from repro.errors import ActorError, ActorStoppedError


class _Cell:
    """Internal bookkeeping for one live actor."""

    def __init__(self, actor: Actor, factory: Optional[Callable[[], Actor]],
                 mailbox: Mailbox) -> None:
        self.actor = actor
        self.factory = factory
        self.mailbox = mailbox
        self.failure_count = 0
        #: Virtual-clock time before which this actor must not run
        #: (restart backoff); None when the actor is live.
        self.suspended_until: Optional[float] = None


class ActorSystem:
    """Owns all actors, their mailboxes and the event bus."""

    def __init__(self, name: str = "powerapi",
                 strategy: Optional[SupervisionStrategy] = None) -> None:
        self.name = name
        self.strategy = strategy or RestartStrategy()
        self.event_bus = EventBus(self)
        self._cells: Dict[str, _Cell] = {}
        self._run_queue: Deque[str] = deque()
        self._counter = 0
        #: Monotone virtual-clock time; drives restart backoff.  The host
        #: (PowerAPI) advances it via :meth:`advance_time`.
        self.clock_s = 0.0
        #: Optional observer of supervision outcomes, called with
        #: (actor_name, kind, detail) where kind is "actor-restarted",
        #: "actor-restart-scheduled" or "actor-stopped".  The host wires
        #: this to the pipeline health log.
        self.on_lifecycle_event: Optional[
            Callable[[str, str, str], None]] = None

    # -- spawning -------------------------------------------------------

    def actor_of(self, factory: Callable[[], Actor],
                 name: Optional[str] = None) -> ActorRef:
        """Create an actor from a zero-argument factory and start it.

        Passing the factory (rather than an instance) is what enables the
        RESTART directive to rebuild a fresh instance after a failure.
        """
        if name is None:
            self._counter += 1
            name = f"{self.name}-actor-{self._counter}"
        if name in self._cells:
            raise ActorError(f"actor name {name!r} already in use")
        actor = factory()
        if not isinstance(actor, Actor):
            raise ActorError(f"factory returned {type(actor).__name__}, "
                             "expected an Actor")
        ref = ActorRef(name, self)
        cell = _Cell(actor, factory, Mailbox())
        self._cells[name] = cell
        actor.context = ActorContext(self, ref)
        actor.pre_start()
        return ref

    def spawn(self, actor: Actor, name: Optional[str] = None) -> ActorRef:
        """Start a pre-built actor instance (not restartable)."""
        return self.actor_of(lambda: actor, name=name)

    # -- stopping --------------------------------------------------------

    def stop(self, ref: ActorRef) -> None:
        """Stop one actor: unsubscribe it and drop its mailbox."""
        cell = self._cells.pop(ref.name, None)
        if cell is None:
            return
        self.event_bus.unsubscribe_all(ref)
        cell.actor.post_stop()
        cell.actor.context = None

    def shutdown(self) -> None:
        """Stop every actor."""
        for name in list(self._cells):
            self.stop(ActorRef(name, self))

    # -- delivery (called via ActorRef) ------------------------------------

    def _deliver(self, ref: ActorRef, message: Any,
                 sender: Optional[ActorRef]) -> None:
        cell = self._cells.get(ref.name)
        if cell is None:
            raise ActorStoppedError(f"actor {ref.name!r} is not running")
        cell.mailbox.put(Envelope(message, sender))
        if cell.suspended_until is None:
            self._run_queue.append(ref.name)
        # Suspended cells keep their mail; the run-queue entries are
        # re-created when the backoff expires (see advance_time).

    def _is_alive(self, name: str) -> bool:
        return name in self._cells

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, max_messages: int = 1_000_000) -> int:
        """Process queued messages until quiescent; returns count handled.

        Raises :class:`~repro.errors.ActorError` if *max_messages* is
        exceeded, which catches accidental message loops.
        """
        handled = 0
        while self._run_queue:
            if handled >= max_messages:
                raise ActorError(
                    f"dispatch exceeded {max_messages} messages; "
                    "possible message loop")
            name = self._run_queue.popleft()
            cell = self._cells.get(name)
            if cell is None:
                continue  # stopped after the message was queued
            if cell.suspended_until is not None:
                continue  # mail stays queued until the backoff expires
            envelope = cell.mailbox.get()
            if envelope is None:
                continue
            self._process(name, cell, envelope)
            handled += 1
        return handled

    def _process(self, name: str, cell: _Cell, envelope: Envelope) -> None:
        actor = cell.actor
        assert actor.context is not None
        actor.context.sender = envelope.sender
        try:
            actor.receive(envelope.message)
        except Exception as failure:  # noqa: BLE001 - supervision boundary
            self._handle_failure(name, cell, failure)
        finally:
            if actor.context is not None:
                actor.context.sender = None

    # -- supervision -------------------------------------------------------

    def _notify(self, name: str, kind: str, detail: str) -> None:
        if self.on_lifecycle_event is not None:
            self.on_lifecycle_event(name, kind, detail)

    def _handle_failure(self, name: str, cell: _Cell,
                        failure: Exception) -> None:
        cell.failure_count += 1
        directive = self.strategy.decide(name, failure, cell.failure_count)
        if directive is Directive.RESUME:
            return
        if directive is Directive.RESTART and cell.factory is not None:
            # Drop the failing instance's subscriptions first so the
            # fresh instance's pre_start re-subscribes from a clean
            # slate (no stale topics surviving the restart).
            ref = ActorRef(name, self)
            cell.actor.pre_restart(failure)
            self.event_bus.unsubscribe_all(ref)
            delay = self.strategy.backoff_s(cell.failure_count)
            if delay > 0.0:
                cell.suspended_until = self.clock_s + delay
                self._notify(name, "actor-restart-scheduled",
                             f"{type(failure).__name__}: restart in "
                             f"{delay:g}s")
                return
            self._restart_cell(name, cell)
            return
        if directive is Directive.ESCALATE:
            raise failure
        self.stop(ActorRef(name, self))
        self._notify(name, "actor-stopped", type(failure).__name__)

    def _restart_cell(self, name: str, cell: _Cell) -> None:
        """Rebuild a cell's actor from its factory and restart it."""
        old = cell.actor
        context = old.context
        old.context = None
        if context is None:
            context = ActorContext(self, ActorRef(name, self))
        fresh = cell.factory()  # may return the same instance
        fresh.context = context
        context.sender = None
        cell.actor = fresh
        cell.suspended_until = None
        fresh.pre_start()
        self._notify(name, "actor-restarted",
                     f"after {cell.failure_count} failure(s)")

    def inject_failure(self, name: str, failure: Exception) -> bool:
        """Run the supervision path as if actor *name* raised *failure*.

        The fault-injection entry point: exercises the same decide /
        restart / stop machinery as an organic crash in ``receive``.
        Returns False when no such actor is running.
        """
        cell = self._cells.get(name)
        if cell is None:
            return False
        self._handle_failure(name, cell, failure)
        return True

    def advance_time(self, now_s: float) -> None:
        """Advance the virtual clock; resume actors whose backoff expired."""
        self.clock_s = max(self.clock_s, now_s)
        due: List[str] = [
            name for name, cell in self._cells.items()
            if cell.suspended_until is not None
            and cell.suspended_until <= self.clock_s + 1e-12]
        for name in due:
            cell = self._cells[name]
            self._restart_cell(name, cell)
            # Withheld mail becomes runnable again.
            for _ in range(len(cell.mailbox)):
                self._run_queue.append(name)

    # -- introspection -----------------------------------------------------

    def actor_names(self):
        """Names of all live actors."""
        return tuple(self._cells)

    def pending_messages(self) -> int:
        """Total messages waiting in mailboxes."""
        return sum(len(cell.mailbox) for cell in self._cells.values())

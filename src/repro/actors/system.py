"""The actor system: registry, dispatch loop and supervision.

Execution model: :meth:`ActorSystem.dispatch` drains mailboxes in global
FIFO order until quiescent.  Because there is exactly one thread, message
processing is deterministic — the property that makes the PowerAPI
pipeline unit-testable tick by tick.  Under real-time use the host
(:class:`repro.core.monitor.PowerAPI`) calls ``dispatch()`` after every
clock tick, which is equivalent to an event loop that always drains.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Optional

from repro.actors.actor import (Actor, ActorContext, ActorRef, Envelope,
                                Mailbox)
from repro.actors.eventbus import EventBus
from repro.actors.supervision import (Directive, RestartStrategy,
                                      SupervisionStrategy)
from repro.errors import ActorError, ActorStoppedError


class _Cell:
    """Internal bookkeeping for one live actor."""

    def __init__(self, actor: Actor, factory: Optional[Callable[[], Actor]],
                 mailbox: Mailbox) -> None:
        self.actor = actor
        self.factory = factory
        self.mailbox = mailbox
        self.failure_count = 0


class ActorSystem:
    """Owns all actors, their mailboxes and the event bus."""

    def __init__(self, name: str = "powerapi",
                 strategy: Optional[SupervisionStrategy] = None) -> None:
        self.name = name
        self.strategy = strategy or RestartStrategy()
        self.event_bus = EventBus(self)
        self._cells: Dict[str, _Cell] = {}
        self._run_queue: Deque[str] = deque()
        self._counter = 0

    # -- spawning -------------------------------------------------------

    def actor_of(self, factory: Callable[[], Actor],
                 name: Optional[str] = None) -> ActorRef:
        """Create an actor from a zero-argument factory and start it.

        Passing the factory (rather than an instance) is what enables the
        RESTART directive to rebuild a fresh instance after a failure.
        """
        if name is None:
            self._counter += 1
            name = f"{self.name}-actor-{self._counter}"
        if name in self._cells:
            raise ActorError(f"actor name {name!r} already in use")
        actor = factory()
        if not isinstance(actor, Actor):
            raise ActorError(f"factory returned {type(actor).__name__}, "
                             "expected an Actor")
        ref = ActorRef(name, self)
        cell = _Cell(actor, factory, Mailbox())
        self._cells[name] = cell
        actor.context = ActorContext(self, ref)
        actor.pre_start()
        return ref

    def spawn(self, actor: Actor, name: Optional[str] = None) -> ActorRef:
        """Start a pre-built actor instance (not restartable)."""
        return self.actor_of(lambda: actor, name=name)

    # -- stopping --------------------------------------------------------

    def stop(self, ref: ActorRef) -> None:
        """Stop one actor: unsubscribe it and drop its mailbox."""
        cell = self._cells.pop(ref.name, None)
        if cell is None:
            return
        self.event_bus.unsubscribe_all(ref)
        cell.actor.post_stop()
        cell.actor.context = None

    def shutdown(self) -> None:
        """Stop every actor."""
        for name in list(self._cells):
            self.stop(ActorRef(name, self))

    # -- delivery (called via ActorRef) ------------------------------------

    def _deliver(self, ref: ActorRef, message: Any,
                 sender: Optional[ActorRef]) -> None:
        cell = self._cells.get(ref.name)
        if cell is None:
            raise ActorStoppedError(f"actor {ref.name!r} is not running")
        cell.mailbox.put(Envelope(message, sender))
        self._run_queue.append(ref.name)

    def _is_alive(self, name: str) -> bool:
        return name in self._cells

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, max_messages: int = 1_000_000) -> int:
        """Process queued messages until quiescent; returns count handled.

        Raises :class:`~repro.errors.ActorError` if *max_messages* is
        exceeded, which catches accidental message loops.
        """
        handled = 0
        while self._run_queue:
            if handled >= max_messages:
                raise ActorError(
                    f"dispatch exceeded {max_messages} messages; "
                    "possible message loop")
            name = self._run_queue.popleft()
            cell = self._cells.get(name)
            if cell is None:
                continue  # stopped after the message was queued
            envelope = cell.mailbox.get()
            if envelope is None:
                continue
            self._process(name, cell, envelope)
            handled += 1
        return handled

    def _process(self, name: str, cell: _Cell, envelope: Envelope) -> None:
        actor = cell.actor
        assert actor.context is not None
        actor.context.sender = envelope.sender
        try:
            actor.receive(envelope.message)
        except Exception as failure:  # noqa: BLE001 - supervision boundary
            cell.failure_count += 1
            directive = self.strategy.decide(name, failure, cell.failure_count)
            if directive is Directive.RESUME:
                return
            if directive is Directive.RESTART and cell.factory is not None:
                actor.pre_restart(failure)
                context = actor.context
                actor.context = None
                fresh = cell.factory()  # may return the same instance
                fresh.context = context
                cell.actor = fresh
                fresh.pre_start()
                return
            if directive is Directive.ESCALATE:
                raise
            self.stop(ActorRef(name, self))
        finally:
            if actor.context is not None:
                actor.context.sender = None

    # -- introspection -----------------------------------------------------

    def actor_names(self):
        """Names of all live actors."""
        return tuple(self._cells)

    def pending_messages(self) -> int:
        """Total messages waiting in mailboxes."""
        return sum(len(cell.mailbox) for cell in self._cells.values())

"""Type-routed publish/subscribe event bus.

PowerAPI components are decoupled through a bus: Sensors publish sensor
messages, Formulas subscribe to them and publish power estimations,
Aggregators subscribe to those, and so on (Figure 2 of the paper).
Subscription is by message *class*; publishing delivers to every
subscriber of the message's class or any of its base classes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Optional, Type

from repro.actors.actor import ActorRef


class EventBus:
    """Class-based topic routing onto actor mailboxes."""

    def __init__(self, system: "ActorSystem") -> None:
        self._system = system
        self._subscribers: Dict[type, List[ActorRef]] = defaultdict(list)

    def subscribe(self, topic: Type, subscriber: ActorRef) -> None:
        """Deliver every published instance of *topic* to *subscriber*."""
        if subscriber not in self._subscribers[topic]:
            self._subscribers[topic].append(subscriber)

    def unsubscribe(self, topic: Type, subscriber: ActorRef) -> None:
        """Stop delivering *topic* to *subscriber* (no-op if absent)."""
        if subscriber in self._subscribers[topic]:
            self._subscribers[topic].remove(subscriber)

    def unsubscribe_all(self, subscriber: ActorRef) -> None:
        """Remove *subscriber* from every topic."""
        for refs in self._subscribers.values():
            if subscriber in refs:
                refs.remove(subscriber)

    def publish(self, message: Any, sender: Optional[ActorRef] = None) -> None:
        """Route *message* to all subscribers of its class hierarchy."""
        delivered = set()
        for klass in type(message).__mro__:
            for subscriber in self._subscribers.get(klass, ()):
                if subscriber.name not in delivered:
                    delivered.add(subscriber.name)
                    subscriber.tell(message, sender=sender)

    def subscriber_count(self, topic: Type) -> int:
        """Number of direct subscribers of *topic*."""
        return len(self._subscribers.get(topic, ()))

"""Type-routed publish/subscribe event bus.

PowerAPI components are decoupled through a bus: Sensors publish sensor
messages, Formulas subscribe to them and publish power estimations,
Aggregators subscribe to those, and so on (Figure 2 of the paper).
Subscription is by message *class*; publishing delivers to every
subscriber of the message's class or any of its base classes.

Routing is cached per concrete message type: the MRO walk and the
base-class subscriber union are computed on the first publish of a type
and invalidated whenever the subscription tables change.  Publishing is
the hottest bus operation by far (every report of every period crosses
it), while subscriptions only change when pipelines start or stop.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.actors.actor import ActorRef


class EventBus:
    """Class-based topic routing onto actor mailboxes."""

    def __init__(self, system: "ActorSystem") -> None:
        self._system = system
        self._subscribers: Dict[type, List[ActorRef]] = defaultdict(list)
        #: message type -> resolved delivery list (MRO walk + per-name
        #: dedup, already applied).  Cleared on any subscription change.
        self._routes: Dict[type, Tuple[ActorRef, ...]] = {}

    def subscribe(self, topic: Type, subscriber: ActorRef) -> None:
        """Deliver every published instance of *topic* to *subscriber*."""
        if subscriber not in self._subscribers[topic]:
            self._subscribers[topic].append(subscriber)
            self._routes.clear()

    def unsubscribe(self, topic: Type, subscriber: ActorRef) -> None:
        """Stop delivering *topic* to *subscriber* (no-op if absent)."""
        if subscriber in self._subscribers[topic]:
            self._subscribers[topic].remove(subscriber)
            self._routes.clear()

    def unsubscribe_all(self, subscriber: ActorRef) -> None:
        """Remove *subscriber* from every topic."""
        removed = False
        for refs in self._subscribers.values():
            if subscriber in refs:
                refs.remove(subscriber)
                removed = True
        if removed:
            self._routes.clear()

    def _resolve(self, message_type: type) -> Tuple[ActorRef, ...]:
        """The delivery list for one message type, preserving publish's
        historical order: MRO-major, subscription-order-minor, first
        subscription of a given actor name wins."""
        delivered = set()
        route: List[ActorRef] = []
        for klass in message_type.__mro__:
            for subscriber in self._subscribers.get(klass, ()):
                if subscriber.name not in delivered:
                    delivered.add(subscriber.name)
                    route.append(subscriber)
        return tuple(route)

    def publish(self, message: Any, sender: Optional[ActorRef] = None) -> None:
        """Route *message* to all subscribers of its class hierarchy."""
        message_type = type(message)
        route = self._routes.get(message_type)
        if route is None:
            route = self._routes[message_type] = self._resolve(message_type)
        for subscriber in route:
            subscriber.tell(message, sender=sender)

    def subscriber_count(self, topic: Type) -> int:
        """Number of direct subscribers of *topic*."""
        return len(self._subscribers.get(topic, ()))

"""Deterministic actor runtime (the Akka-equivalent substrate)."""

from repro.actors.actor import (Actor, ActorContext, ActorRef, Envelope,
                                Mailbox)
from repro.actors.clock import ClockTick, VirtualClock
from repro.actors.eventbus import EventBus
from repro.actors.supervision import (Directive, EscalateStrategy,
                                      RestartStrategy, ResumeStrategy,
                                      StopStrategy, SupervisionStrategy)
from repro.actors.system import ActorSystem

__all__ = [
    "Actor", "ActorContext", "ActorRef", "ActorSystem", "ClockTick",
    "Directive", "Envelope", "EscalateStrategy", "EventBus", "Mailbox",
    "RestartStrategy", "ResumeStrategy", "StopStrategy",
    "SupervisionStrategy", "VirtualClock",
]

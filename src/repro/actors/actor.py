"""Actor base classes.

PowerAPI is built on lightweight actors processing messages with an
event-driven model (the paper uses Akka).  This runtime keeps the same
programming model — actors communicate only through messages delivered to
mailboxes — but executes deterministically on one thread, which makes
every experiment and test reproducible.

An :class:`Actor` subclass implements :meth:`~Actor.receive`.  It talks to
the world through its :class:`ActorContext`: ``context.self_ref`` to give
out its own address, ``context.system`` to reach the event bus or spawn
children, and ``sender`` to reply.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional

from repro.errors import ActorStoppedError, MailboxOverflowError

#: Default mailbox capacity; generous but bounded so a runaway publisher
#: fails loudly instead of consuming all memory.
DEFAULT_MAILBOX_CAPACITY = 1_000_000


@dataclass(frozen=True)
class Envelope:
    """A message plus its sender, as stored in a mailbox."""

    message: Any
    sender: Optional["ActorRef"]


class Mailbox:
    """Bounded FIFO queue of envelopes."""

    def __init__(self, capacity: int = DEFAULT_MAILBOX_CAPACITY) -> None:
        self.capacity = capacity
        self._queue: Deque[Envelope] = deque()

    def put(self, envelope: Envelope) -> None:
        """Enqueue an envelope; raises MailboxOverflowError when full."""
        if len(self._queue) >= self.capacity:
            raise MailboxOverflowError(
                f"mailbox overflow at {self.capacity} messages")
        self._queue.append(envelope)

    def get(self) -> Optional[Envelope]:
        """Dequeue the oldest envelope, or None when empty."""
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class ActorRef:
    """Address of an actor; the only handle other code may hold."""

    def __init__(self, name: str, system: "ActorSystem") -> None:
        self.name = name
        self._system = system

    def tell(self, message: Any, sender: Optional["ActorRef"] = None) -> None:
        """Send *message* asynchronously (fire-and-forget)."""
        self._system._deliver(self, message, sender)

    @property
    def alive(self) -> bool:
        """Whether the actor is still running."""
        return self._system._is_alive(self.name)

    def __repr__(self) -> str:
        return f"ActorRef({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ActorRef) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)


class ActorContext:
    """Runtime services available to an actor while processing a message."""

    def __init__(self, system: "ActorSystem", self_ref: ActorRef) -> None:
        self.system = system
        self.self_ref = self_ref
        #: Sender of the message currently being processed (may be None).
        self.sender: Optional[ActorRef] = None


class Actor:
    """Base class for all actors."""

    def __init__(self) -> None:
        self.context: Optional[ActorContext] = None

    # -- lifecycle hooks --------------------------------------------------

    def pre_start(self) -> None:
        """Called once before the first message."""

    def post_stop(self) -> None:
        """Called once after the actor stops."""

    def pre_restart(self, failure: Exception) -> None:
        """Called on the failing instance before a supervised restart."""

    # -- messaging ----------------------------------------------------------

    def receive(self, message: Any) -> None:
        """Handle one message; subclasses must implement."""
        raise NotImplementedError

    # -- conveniences ------------------------------------------------------

    @property
    def self_ref(self) -> ActorRef:
        """This actor's own address (only valid while running)."""
        if self.context is None:
            raise ActorStoppedError("actor is not running")
        return self.context.self_ref

    def publish(self, message: Any) -> None:
        """Publish *message* on the system event bus."""
        if self.context is None:
            raise ActorStoppedError("actor is not running")
        self.context.system.event_bus.publish(message, sender=self.self_ref)

"""Supervision strategies: what to do when an actor's receive raises.

Mirrors Akka's one-for-one strategies.  The system consults its strategy
with the failing actor's name, the exception and the failure count, and
acts on the returned :class:`Directive`.
"""

from __future__ import annotations

import enum


class Directive(enum.Enum):
    """Supervisor decision for one failure."""

    RESUME = "resume"      # drop the message, keep actor state
    RESTART = "restart"    # recreate the actor from its factory
    STOP = "stop"          # stop the actor
    ESCALATE = "escalate"  # re-raise to the caller of dispatch()


class SupervisionStrategy:
    """Base strategy; subclasses override :meth:`decide`."""

    def decide(self, actor_name: str, failure: Exception,
               failure_count: int) -> Directive:
        raise NotImplementedError


class StopStrategy(SupervisionStrategy):
    """Stop any actor that fails (fail-fast)."""

    def decide(self, actor_name: str, failure: Exception,
               failure_count: int) -> Directive:
        return Directive.STOP


class ResumeStrategy(SupervisionStrategy):
    """Drop the poisonous message and carry on."""

    def decide(self, actor_name: str, failure: Exception,
               failure_count: int) -> Directive:
        return Directive.RESUME


class RestartStrategy(SupervisionStrategy):
    """Restart up to *max_restarts* times, then stop."""

    def __init__(self, max_restarts: int = 3) -> None:
        self.max_restarts = max_restarts

    def decide(self, actor_name: str, failure: Exception,
               failure_count: int) -> Directive:
        if failure_count <= self.max_restarts:
            return Directive.RESTART
        return Directive.STOP


class EscalateStrategy(SupervisionStrategy):
    """Propagate every failure to the dispatch caller (useful in tests)."""

    def decide(self, actor_name: str, failure: Exception,
               failure_count: int) -> Directive:
        return Directive.ESCALATE

"""Supervision strategies: what to do when an actor's receive raises.

Mirrors Akka's one-for-one strategies.  The system consults its strategy
with the failing actor's name, the exception and the failure count, and
acts on the returned :class:`Directive`.
"""

from __future__ import annotations

import enum


class Directive(enum.Enum):
    """Supervisor decision for one failure."""

    RESUME = "resume"      # drop the message, keep actor state
    RESTART = "restart"    # recreate the actor from its factory
    STOP = "stop"          # stop the actor
    ESCALATE = "escalate"  # re-raise to the caller of dispatch()


class SupervisionStrategy:
    """Base strategy; subclasses override :meth:`decide`."""

    def decide(self, actor_name: str, failure: Exception,
               failure_count: int) -> Directive:
        raise NotImplementedError

    def backoff_s(self, failure_count: int) -> float:
        """Delay (virtual-clock seconds) before a RESTART takes effect.

        The default is 0.0: restart immediately.  Strategies with a
        backoff make the system hold the actor suspended — mail queues
        up, nothing is processed — until the system clock passes the
        failure time plus this delay.
        """
        return 0.0


class StopStrategy(SupervisionStrategy):
    """Stop any actor that fails (fail-fast)."""

    def decide(self, actor_name: str, failure: Exception,
               failure_count: int) -> Directive:
        return Directive.STOP


class ResumeStrategy(SupervisionStrategy):
    """Drop the poisonous message and carry on."""

    def decide(self, actor_name: str, failure: Exception,
               failure_count: int) -> Directive:
        return Directive.RESUME


class RestartStrategy(SupervisionStrategy):
    """Restart up to *max_restarts* times, then stop.

    With ``backoff_base_s > 0`` restarts are delayed by an exponential
    backoff in virtual-clock time: the first restart waits
    ``backoff_base_s``, each further one multiplies by
    ``backoff_factor``, capped at ``backoff_max_s``.  The default keeps
    the historical behaviour (immediate restart).
    """

    def __init__(self, max_restarts: int = 3,
                 backoff_base_s: float = 0.0,
                 backoff_factor: float = 2.0,
                 backoff_max_s: float = 30.0) -> None:
        if backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        self.max_restarts = max_restarts
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.backoff_max_s = backoff_max_s

    def decide(self, actor_name: str, failure: Exception,
               failure_count: int) -> Directive:
        if failure_count <= self.max_restarts:
            return Directive.RESTART
        return Directive.STOP

    def backoff_s(self, failure_count: int) -> float:
        if self.backoff_base_s <= 0:
            return 0.0
        delay = self.backoff_base_s * (
            self.backoff_factor ** max(0, failure_count - 1))
        return min(self.backoff_max_s, delay)


class EscalateStrategy(SupervisionStrategy):
    """Propagate every failure to the dispatch caller (useful in tests)."""

    def decide(self, actor_name: str, failure: Exception,
               failure_count: int) -> Directive:
        return Directive.ESCALATE

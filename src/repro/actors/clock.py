"""Virtual clock: periodic tick messages for monitoring pipelines.

PowerAPI sensors sample on a monitoring period.  The :class:`VirtualClock`
is driven by simulated time (the host calls :meth:`advance` as the kernel
steps) and publishes a :class:`ClockTick` on the event bus whenever a
period boundary passes, so every subscribed Sensor fires at its configured
rate regardless of the kernel quantum.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.actors.eventbus import EventBus
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ClockTick:
    """Published once per monitoring period."""

    #: Simulated time of the tick, seconds.
    time_s: float
    #: Length of the period that ended at ``time_s``.
    period_s: float


class VirtualClock:
    """Period generator over simulated time."""

    def __init__(self, bus: EventBus, period_s: float = 1.0) -> None:
        if period_s <= 0:
            raise ConfigurationError("clock period must be positive")
        self.bus = bus
        self.period_s = period_s
        self._elapsed_s = 0.0
        self._time_s = 0.0
        self.ticks_emitted = 0

    def advance(self, dt_s: float) -> int:
        """Advance simulated time; publish one tick per completed period.

        Returns the number of ticks published for this advance.
        """
        if dt_s < 0:
            raise ConfigurationError("cannot advance time backwards")
        self._elapsed_s += dt_s
        self._time_s += dt_s
        published = 0
        while self._elapsed_s >= self.period_s - 1e-12:
            self._elapsed_s -= self.period_s
            self.ticks_emitted += 1
            published += 1
            self.bus.publish(ClockTick(
                time_s=self._time_s - self._elapsed_s,
                period_s=self.period_s,
            ))
        return published

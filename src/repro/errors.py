"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the package
layout: simulation errors, perf-interface errors, power-meter errors, actor
errors and modelling errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class SimulationError(ReproError):
    """Base class for errors raised by the hardware/OS simulation."""


class TopologyError(SimulationError):
    """An invalid logical CPU, core or package was referenced."""


class FrequencyError(SimulationError):
    """An unsupported P-state or frequency was requested."""


class SchedulerError(SimulationError):
    """The OS scheduler was driven into an invalid state."""


class ProcessError(SimulationError):
    """An invalid process id or process state transition."""


class PerfError(ReproError):
    """Base class for perf-event interface errors."""


class UnknownEventError(PerfError):
    """An event name could not be resolved to an encoding."""


class CounterStateError(PerfError):
    """A counter was read/enabled/disabled in the wrong state."""


class CounterInvalidError(PerfError):
    """The counter's target vanished (ESRCH-style: pid exited)."""


class SampleLossError(PerfError):
    """A counter read was lost (injected or transient acquisition fault)."""


class PowerMeterError(ReproError):
    """Base class for power-meter errors."""


class MeterConnectionError(PowerMeterError):
    """The (simulated) meter is not connected or was disconnected."""


class ActorError(ReproError):
    """Base class for actor-runtime errors."""


class ActorStoppedError(ActorError):
    """A message was sent to a stopped actor."""


class MailboxOverflowError(ActorError):
    """An actor's bounded mailbox overflowed."""


class FaultInjectionError(ReproError):
    """An injected fault (used as the crash payload for actor faults)."""


class TelemetryError(ReproError):
    """Base class for streaming-telemetry errors."""


class WireProtocolError(TelemetryError):
    """A telemetry frame failed to encode or decode (corrupt stream,
    unsupported version, unknown frame kind, oversized payload)."""


class TelemetryConnectionError(TelemetryError):
    """A telemetry connection failed and could not be re-established."""


class SpoolError(TelemetryError):
    """The on-disk telemetry spool is invalid or was misused."""


class ModelError(ReproError):
    """Base class for power-model errors."""


class NotFittedError(ModelError):
    """A model was used for prediction before being fitted."""


class InsufficientDataError(ModelError):
    """Too few samples were provided to fit a model."""

"""Closed-loop power control: hold a package power cap via actuation.

The observation pipeline (Figure 2) estimates per-process power; this
package feeds the estimates back into :mod:`repro.os`.  A
:class:`~repro.control.actor.PowerCapActor` sits in the actor graph,
subscribes to aggregated reports, runs a pluggable
:class:`~repro.control.policy.ControlPolicy` and actuates through the
DVFS ceiling / process-throttle backends in :mod:`repro.os.actuation`.
"""

from repro.control.actor import PowerCapActor
from repro.control.policy import ControlPolicy, DeadBandPolicy, PIPolicy

__all__ = [
    "ControlPolicy",
    "DeadBandPolicy",
    "PIPolicy",
    "PowerCapActor",
]

"""Control policies: watts of error in, ladder steps out.

A policy sees one number per monitoring period — ``error_w = estimate -
cap`` — and answers with how many DVFS-ladder rungs to move (negative =
slow down).  Both built-ins carry hysteresis so the loop settles instead
of oscillating around the cap:

* :class:`DeadBandPolicy` — threshold stepping.  Any overshoot steps
  down immediately; stepping back up requires the estimate to sit at
  least ``band_w`` *below* the cap for ``up_patience`` consecutive
  periods.  The asymmetry is deliberate: overshooting a cap is the
  failure mode, undershooting merely costs throughput.
* :class:`PIPolicy` — proportional-integral control.  The control
  signal ``u = kp·error + ki·∫error`` is quantised to ladder steps of
  ``step_w`` watts each; ``|u| <= band_w`` maps to zero steps
  (hysteresis) and the integral is clamped (anti-windup) so a long
  unattainable excursion cannot bank unbounded correction.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class ControlPolicy:
    """Base class: one :meth:`decide` call per aggregated report."""

    def decide(self, error_w: float, period_s: float) -> int:
        """Ladder steps to move given ``error_w = estimate - cap``.

        Negative means step the frequency ceiling down (reduce power),
        positive means step it back up, zero means hold.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Forget accumulated state (cap changed, run restarted)."""


class DeadBandPolicy(ControlPolicy):
    """Dead-band threshold stepping with asymmetric hysteresis."""

    def __init__(self, band_w: float = 2.0, up_patience: int = 2) -> None:
        if band_w <= 0:
            raise ConfigurationError("band_w must be positive watts")
        if up_patience < 1:
            raise ConfigurationError("up_patience must be >= 1")
        self.band_w = band_w
        self.up_patience = up_patience
        self._below_streak = 0

    def decide(self, error_w: float, period_s: float) -> int:
        if error_w > 0:
            self._below_streak = 0
            return -1
        if error_w < -self.band_w:
            self._below_streak += 1
            if self._below_streak >= self.up_patience:
                self._below_streak = 0
                return 1
            return 0
        # Inside the dead band: converged, hold and restart the streak.
        self._below_streak = 0
        return 0

    def reset(self) -> None:
        self._below_streak = 0


class PIPolicy(ControlPolicy):
    """PI controller quantised to ladder steps, with anti-windup."""

    def __init__(self, step_w: float, kp: float = 0.4, ki: float = 0.15,
                 band_w: float = 1.0, max_step: int = 2,
                 windup_w: float = 30.0) -> None:
        if step_w <= 0:
            raise ConfigurationError("step_w must be positive watts")
        if kp < 0 or ki < 0 or kp + ki == 0:
            raise ConfigurationError(
                "gains must be >= 0 with at least one positive")
        if band_w < 0:
            raise ConfigurationError("band_w must be >= 0")
        if max_step < 1:
            raise ConfigurationError("max_step must be >= 1")
        if windup_w <= 0:
            raise ConfigurationError("windup_w must be positive watts")
        self.step_w = step_w
        self.kp = kp
        self.ki = ki
        self.band_w = band_w
        self.max_step = max_step
        self.windup_w = windup_w
        self._integral = 0.0

    def decide(self, error_w: float, period_s: float) -> int:
        self._integral += error_w * period_s
        # Anti-windup: bound the integral term's contribution so a long
        # saturated excursion (cap unattainable, actuator at the floor)
        # cannot bank a correction that later overwhelms the loop.
        if self.ki > 0:
            limit = self.windup_w / self.ki
            self._integral = max(-limit, min(limit, self._integral))
        u = self.kp * error_w + self.ki * self._integral
        if abs(u) <= self.band_w:
            return 0
        steps = int(u / self.step_w)
        if steps == 0:
            steps = 1 if u > 0 else -1
        steps = max(-self.max_step, min(self.max_step, steps))
        # u is in "excess watts"; positive excess means slow *down*.
        return -steps

    def reset(self) -> None:
        self._integral = 0.0

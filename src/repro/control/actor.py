"""The power-cap actor: closes the loop from estimates to actuation.

:class:`PowerCapActor` is a regular Figure-2 pipeline stage.  It
subscribes to :class:`~repro.core.messages.AggregatedPowerReport` (the
same stream the reporters render) and to
:class:`~repro.core.messages.SetCap` (runtime cap changes), consults a
:class:`~repro.control.policy.ControlPolicy`, and actuates through the
:mod:`repro.os.actuation` backends.

Actuation ordering (the escalation ladder):

1. **Frequency first.**  While the DVFS ceiling is above the floor,
   over-cap estimates step it down — cheap, reversible, hits every
   process fairly.
2. **Throttle second.**  At the frequency floor the actor raises the
   nice level of the hungriest monitored process, one process per
   period, so the scheduler shrinks its share.
3. **Unwind in reverse.**  When the estimate sits safely below the cap
   the actor first removes throttles (LIFO), then steps frequency back
   up, so the most intrusive actuation is the first to go.

After every actuation the actor waits ``grace_periods`` reports before
acting again: the aggregator releases timestamp ``T`` only when ``T+1``
arrives, so the estimate the actor sees always lags one period and the
first post-actuation report still reflects the old operating point.

``gap=True`` reports (degraded mode: sensors produced no data) freeze
the loop — no actuation on fabricated zeros — and an
``unattainable`` verdict is published once per cap when the cap lies
below the machine's idle floor or below what floor-frequency plus
exhausted throttling can reach.
"""

from __future__ import annotations

from typing import Optional

from repro.core.messages import AggregatedPowerReport, CapEvent, SetCap
from repro.core.stage import PipelineStage
from repro.control.policy import ControlPolicy, DeadBandPolicy
from repro.errors import ConfigurationError
from repro.os.actuation import FrequencyCapActuator, ProcessThrottle


class PowerCapActor(PipelineStage):
    """Holds estimated package power at or below a cap."""

    subscribes_to = (AggregatedPowerReport, SetCap)

    def __init__(self, kernel, cap_w: Optional[float] = None,
                 policy: Optional[ControlPolicy] = None,
                 grace_periods: int = 1, throttle: bool = True,
                 component: str = "power-cap") -> None:
        super().__init__(component=component)
        if cap_w is not None and cap_w <= 0:
            raise ConfigurationError("cap must be positive watts (or None)")
        if grace_periods < 0:
            raise ConfigurationError("grace_periods must be >= 0")
        self.kernel = kernel
        self.cap_w = cap_w
        self.policy = policy if policy is not None else DeadBandPolicy()
        self.grace_periods = grace_periods
        self.throttle_enabled = throttle
        self.actuator = FrequencyCapActuator(kernel)
        self.throttle = ProcessThrottle(kernel)
        self._grace_left = 0
        self._unattainable_reported = False
        #: Every CapEvent this actor published, in order (introspection).
        self.events = []

    # -- state ----------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether a cap is currently armed."""
        return self.cap_w is not None

    def on_start(self) -> None:
        if self.cap_w is not None:
            self.actuator.arm()

    def on_stop(self) -> None:
        self.throttle.restore_all()
        self.actuator.release()

    # -- messaging ------------------------------------------------------

    def handle(self, message) -> None:
        if isinstance(message, SetCap):
            self._handle_set_cap(message)
        elif isinstance(message, AggregatedPowerReport):
            self._handle_report(message)

    def _handle_set_cap(self, message: SetCap) -> None:
        time_s = self.kernel.time_s
        previous = self.cap_w
        self.cap_w = message.cap_w
        self.policy.reset()
        self._grace_left = 0
        self._unattainable_reported = False
        if self.cap_w is None:
            self.throttle.restore_all()
            self.actuator.release()
            if previous is not None:
                self._emit(time_s, "cap-removed", estimate_w=0.0,
                           detail=f"cap {previous:.2f} W removed")
        else:
            self.actuator.arm()
            self._emit(time_s, "cap-set", estimate_w=0.0,
                       detail=f"cap set to {self.cap_w:.2f} W")

    def _handle_report(self, report: AggregatedPowerReport) -> None:
        if self.cap_w is None:
            return
        if report.gap:
            # Degraded mode: the report carries no real estimate.  Hold
            # the current operating point rather than actuate on zeros.
            return
        estimate = report.total_w
        if self._check_unattainable(report):
            return
        if self._grace_left > 0:
            self._grace_left -= 1
            return
        steps = self.policy.decide(estimate - self.cap_w, report.period_s)
        if steps < 0:
            self._escalate(report, -steps)
        elif steps > 0:
            self._deescalate(report, steps)

    # -- the escalation ladder ------------------------------------------

    def _escalate(self, report: AggregatedPowerReport, steps: int) -> None:
        applied = self.actuator.step(-steps)
        if applied != 0:
            self._emit(report.time_s, "step-down",
                       estimate_w=report.total_w,
                       detail=f"ceiling -> {self.actuator.frequency_hz} Hz")
            self._grace_left = self.grace_periods
            return
        if self.throttle_enabled:
            pid = self.throttle.throttle_hungriest(report.by_pid)
            if pid is not None:
                self._emit(report.time_s, "throttle",
                           estimate_w=report.total_w, pid=pid,
                           detail=f"nice {self.kernel.process(pid).nice}")
                self._grace_left = self.grace_periods
                return
        # Frequency at the floor and nothing left to throttle.
        self._report_unattainable(report, "actuation exhausted")

    def _deescalate(self, report: AggregatedPowerReport, steps: int) -> None:
        if self.throttle.depth() > 0:
            pid = self.throttle.unthrottle_last()
            if pid is not None:
                self._emit(report.time_s, "unthrottle",
                           estimate_w=report.total_w, pid=pid)
                self._grace_left = self.grace_periods
                return
        applied = self.actuator.step(steps)
        if applied != 0:
            self._emit(report.time_s, "step-up",
                       estimate_w=report.total_w,
                       detail=f"ceiling -> {self.actuator.frequency_hz} Hz")
            self._grace_left = self.grace_periods

    # -- unattainable caps ----------------------------------------------

    def _check_unattainable(self, report: AggregatedPowerReport) -> bool:
        """Caps below the idle floor can never be held; say so once."""
        if self.cap_w is not None and self.cap_w < report.idle_w:
            self._report_unattainable(
                report,
                f"cap {self.cap_w:.2f} W below idle floor "
                f"{report.idle_w:.2f} W")
            return True
        return False

    def _report_unattainable(self, report: AggregatedPowerReport,
                             why: str) -> None:
        if self._unattainable_reported:
            return
        self._unattainable_reported = True
        self._emit(report.time_s, "unattainable",
                   estimate_w=report.total_w, detail=why)

    # -- event publication ----------------------------------------------

    def _emit(self, time_s: float, action: str, estimate_w: float,
              pid: int = -1, detail: str = "") -> None:
        event = CapEvent(
            time_s=time_s, action=action, cap_w=self.cap_w,
            estimate_w=estimate_w,
            frequency_hz=self.actuator.frequency_hz,
            level=self.actuator.level, pid=pid, detail=detail)
        self.events.append(event)
        self.publish(event)
        # Mirror onto the health log / telemetry stream: HealthEvent is
        # already forwarded by the bridge and collected per pipeline, so
        # control transitions travel with zero wire-protocol changes.
        self.report_health(time_s, f"cap-{action}",
                           detail or f"{estimate_w:.2f} W vs "
                                     f"{self.cap_w if self.cap_w is not None else float('nan'):.2f} W")

"""C2 — related-work comparison: HAPPY (hyperthread-aware power model).

The paper cites Zhai et al.'s hyperthread-aware model reaching a 7.5 %
average error on (unreproducible) private Google benchmarks, where
SMT-oblivious models err more because two hyperthreads on one core draw
far less than two cores.

Reproduction: the hyperthread-aware model (per-logical-CPU overlap
feature, OLS with a free-signed overlap weight) against the SMT-oblivious
generic trio, both scored on co-located asymmetric workload pairs on the
SMT Xeon — the placement mix that maximises the effect.  Expected shape:
the HT-aware model lands in the high single digits and beats the
oblivious one.
"""

import pytest

from repro.analysis.report import render_grid
from repro.baselines.evaluation import run_windows, score_model
from repro.baselines.happy import HAPPY_BASE_EVENTS, learn_happy_model
from repro.core.sampling import SamplingCampaign, learn_power_model
from repro.simcpu.spec import intel_xeon_smt
from repro.workloads.mix import colocated_pair
from repro.workloads.stress import CpuStress, MemoryStress

SETTLE_S = 100.0


@pytest.fixture(scope="module")
def xeon_spec():
    return intel_xeon_smt()


@pytest.fixture(scope="module")
def happy_model(xeon_spec):
    report = learn_happy_model(
        xeon_spec,
        frequencies_hz=[xeon_spec.max_frequency_hz],
        duration_per_run_s=6.0, settle_s=SETTLE_S, window_s=1.0,
        quantum_s=0.05, idle_duration_s=15.0)
    return report.model


@pytest.fixture(scope="module")
def oblivious_model(xeon_spec):
    """Same steady-state discipline, but SMT-oblivious.

    Trained only on *spread* placements (at most one thread per physical
    core, the default scheduler's preference) — the per-thread attribution
    Zhai et al. show breaks down once threads share a core.
    """
    campaign = SamplingCampaign(
        xeon_spec,
        workloads=[CpuStress(utilization=u, threads=t)
                   for u in (0.5, 1.0) for t in (1, 2, 4)]
        + [MemoryStress(utilization=1.0, threads=t,
                        working_set_bytes=32 * 1024 ** 2)
           for t in (1, 4)],
        frequencies_hz=[xeon_spec.max_frequency_hz],
        window_s=1.0, windows_per_run=4, settle_s=SETTLE_S, quantum_s=0.05)
    return learn_power_model(xeon_spec, campaign=campaign,
                             idle_duration_s=15.0).model


@pytest.fixture(scope="module")
def colocated_windows(xeon_spec):
    """Windows from separate SMT co-location scenarios.

    Each placement runs alone (its own steady-state machine) so every
    window isolates one co-location pattern: one compute pair, a fully
    packed package, a half-load packed package, and an asymmetric
    compute/memory pair.
    """
    compute_a, memory_a = colocated_pair(duration_s=400.0)
    scenarios = [
        [CpuStress(duration_s=400.0)] * 2,
        [CpuStress(duration_s=400.0)] * 8,
        [CpuStress(utilization=0.5, duration_s=400.0)] * 8,
        [compute_a, memory_a],
    ]
    windows = []
    for index, workloads in enumerate(scenarios):
        windows.extend(run_windows(
            xeon_spec, workloads,
            frequency_hz=xeon_spec.max_frequency_hz,
            events=HAPPY_BASE_EVENTS, duration_s=12.0, window_s=1.0,
            settle_s=SETTLE_S, quantum_s=0.05, meter_seed=9100 + index,
            with_smt_overlap=True, pin_each_to_core=True))
    return windows


def test_cmp_happy_error_band(benchmark, happy_model, colocated_windows,
                              save_result):
    summary = benchmark.pedantic(score_model,
                                 args=(happy_model, colocated_windows),
                                 rounds=3, iterations=1)
    save_result("cmp_happy",
                f"hyperthread-aware model on SMT co-located pairs: "
                f"mean APE {summary['mean_ape'] * 100:.2f}% "
                f"(paper cites HAPPY: 7.5% average)")
    # Published shape: single-digit error on SMT-heavy placements.
    assert summary["mean_ape"] < 0.12


def test_cmp_happy_beats_smt_oblivious(happy_model, oblivious_model,
                                       colocated_windows, benchmark,
                                       save_result):
    def scores():
        aware = score_model(happy_model, colocated_windows)["mean_ape"]
        oblivious = score_model(oblivious_model,
                                colocated_windows)["mean_ape"]
        return aware, oblivious

    aware, oblivious = benchmark.pedantic(scores, rounds=1, iterations=1)
    save_result("cmp_happy_vs_oblivious", render_grid(
        ["model", "mean APE on SMT co-location"],
        [["hyperthread-aware (overlap feature)", f"{aware * 100:.2f}%"],
         ["SMT-oblivious generic trio", f"{oblivious * 100:.2f}%"]],
        title="C2: hyperthread awareness matters on SMT parts"))
    assert aware < oblivious

"""A3 — ablation: CPU-load metric vs hardware performance counters.

Section 3 argues HPCs beat the CPU load "as these performance counters
can capture all the processor activities while the CPU load mostly
indicates whether the processor executes a job" (contrasting with
Versick et al.).  This ablation holds the methodology fixed and swaps the
metric: a cycles-only (load) model vs the generic-counter model, scored
on workloads with equal load but different memory behaviour.
"""

import pytest

from repro.analysis.report import render_grid
from repro.baselines.cpuload import CPU_LOAD_EVENTS, learn_cpu_load_model
from repro.baselines.evaluation import run_windows, score_model
from repro.core.sampling import SamplingCampaign, learn_power_model
from repro.simcpu.counters import CYCLES, GENERIC_TRIO
from repro.workloads.stress import CpuStress, MemoryStress

MIB = 1024 ** 2


def _training_workloads():
    return ([CpuStress(utilization=u, threads=4) for u in (0.5, 1.0)]
            + [MemoryStress(utilization=u, threads=4,
                            working_set_bytes=64 * MIB)
               for u in (0.5, 1.0)]
            + [MemoryStress(utilization=1.0, threads=4,
                            working_set_bytes=2 * MIB)])


@pytest.fixture(scope="module")
def hpc_model(i3_spec):
    campaign = SamplingCampaign(
        i3_spec, workloads=_training_workloads(),
        frequencies_hz=[i3_spec.max_frequency_hz],
        window_s=1.0, windows_per_run=4, settle_s=0.5, quantum_s=0.05)
    return learn_power_model(i3_spec, campaign=campaign,
                             idle_duration_s=10.0).model


@pytest.fixture(scope="module")
def load_model(i3_spec):
    campaign = SamplingCampaign(
        i3_spec, events=CPU_LOAD_EVENTS, workloads=_training_workloads(),
        frequencies_hz=[i3_spec.max_frequency_hz],
        window_s=1.0, windows_per_run=4, settle_s=0.5, quantum_s=0.05)
    return learn_cpu_load_model(i3_spec, campaign=campaign,
                                idle_duration_s=10.0).model


@pytest.fixture(scope="module")
def heterogeneous_windows(i3_spec):
    """Same CPU load, very different memory traffic, run separately."""
    scenarios = [
        [CpuStress(utilization=0.8, threads=2, duration_s=400.0)],
        [MemoryStress(utilization=0.8, threads=2, duration_s=400.0,
                      working_set_bytes=96 * MIB, locality=0.6)],
        [CpuStress(utilization=0.8, duration_s=400.0),
         MemoryStress(utilization=0.8, duration_s=400.0,
                      working_set_bytes=96 * MIB, locality=0.6)],
    ]
    windows = []
    for index, workloads in enumerate(scenarios):
        windows.extend(run_windows(
            i3_spec, workloads, frequency_hz=i3_spec.max_frequency_hz,
            events=list(GENERIC_TRIO) + [CYCLES],
            duration_s=30.0, window_s=1.0, quantum_s=0.05,
            meter_seed=8800 + index))
    return windows


def test_abl_hpc_beats_cpu_load(benchmark, hpc_model, load_model,
                                heterogeneous_windows, save_result):
    def scores():
        return (score_model(hpc_model, heterogeneous_windows)["median_ape"],
                score_model(load_model, heterogeneous_windows)["median_ape"])

    hpc_error, load_error = benchmark.pedantic(scores, rounds=1,
                                               iterations=1)
    save_result("abl_cpuload", render_grid(
        ["activity metric", "median APE (equal-load mixed workloads)"],
        [["hardware performance counters (paper)",
          f"{hpc_error * 100:.2f}%"],
         ["CPU load (Versick et al.)", f"{load_error * 100:.2f}%"]],
        title="A3: HPCs see what the CPU load cannot"))

    assert hpc_error < load_error


def test_abl_load_blind_to_memory_traffic(load_model, hpc_model, i3_spec,
                                          heterogeneous_windows, benchmark):
    """The load model cannot tell equal-load CPU-bound and memory-bound
    windows apart at all — the HPC model can (the paper's §3 argument
    that load 'mostly indicates whether the processor executes a job')."""
    cpu_windows = [w for w in heterogeneous_windows
                   if w.workload == "stress-cpu-80"]
    mem_windows = [w for w in heterogeneous_windows
                   if w.workload.startswith("stress-mem") and
                   "+" not in w.workload]
    assert cpu_windows and mem_windows

    def load_prediction(window):
        return load_model.predict_total(window.frequency_hz,
                                        window.features)

    cpu_prediction = benchmark(load_prediction, cpu_windows[-1])
    mem_prediction = load_prediction(mem_windows[-1])
    # Equal load -> near-equal cycles -> near-equal load-model estimate.
    assert cpu_prediction == pytest.approx(mem_prediction, rel=0.02)

    # The HPC model sees the memory traffic and separates the scenarios.
    hpc_cpu = hpc_model.predict_total(cpu_windows[-1].frequency_hz,
                                      cpu_windows[-1].features)
    hpc_mem = hpc_model.predict_total(mem_windows[-1].frequency_hz,
                                      mem_windows[-1].features)
    assert abs(hpc_cpu - hpc_mem) > abs(cpu_prediction - mem_prediction)

"""Zero-loss chaos soak for the crash-recoverable telemetry stack.

The tier-1 chaos suite (``tests/test_chaos.py``) pins each recovery
mechanism with a few frames; this soak runs a seeded multi-thousand-frame
session through a dense fault campaign — three connection resets, a
partition window, mid-stream byte corruption and one consumer
crash-restart — and asserts the exactly-once contract end to end:

* every published report is reconstructed from the spool + live stream
  with **zero loss and zero duplicates, in order**,
* the only acceptable holes are **explicit** replay-eviction gap markers,
  and they appear only where the replay window provably scrolled
  (measured separately with a deliberately tiny window),
* crash-restart recovery latency (reconnect + RESUME + replay drain) is
  measured and recorded.

Results are written to ``BENCH_chaos.json`` at the repository root so
future PRs can diff the trajectory.  Marked ``slow`` + ``chaos``: the
tier-1 suite (``testpaths = ["tests"]``) never collects it; run it
explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_chaos_soak.py -q
"""

from __future__ import annotations

import json
import platform
import threading
import time
from pathlib import Path

import pytest

from repro.core.messages import AggregatedPowerReport
from repro.faults import (ByteCorruption, CircuitBreaker, ConnectionReset,
                          NetworkFaultInjector, NetworkFaultPlan, Partition)
from repro.telemetry.client import ReconnectPolicy, TelemetryClient
from repro.telemetry.server import TelemetryServer
from repro.telemetry.wire import GapTelemetry, ReportEvent

pytestmark = [pytest.mark.slow, pytest.mark.chaos]

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"

SEED = 20260806
#: Reports published per phase; six phases -> 2400 frames total.
PHASE = 400


def _report(time_s: float) -> AggregatedPowerReport:
    return AggregatedPowerReport(
        time_s=time_s, period_s=1.0,
        by_pid={100: 4.2, 101: 1.9, 102: 0.7},
        idle_w=31.48, formula="hpc")


def _publish(server: TelemetryServer, count: int, start: int) -> None:
    for index in range(start, start + count):
        server.publish_report(_report(float(index + 1)))


def _run_soak(spool_path: Path) -> dict:
    """The seeded campaign.  Fault due-times run on a fake plan clock so
    the schedule is deterministic: each phase advances the clock to arm
    the next fault, then publishes and drains a batch of frames."""
    clock = [0.0]
    plan = NetworkFaultPlan([
        ConnectionReset(10.0),
        ConnectionReset(20.0),
        ByteCorruption(25.0, nbytes=3),
        ConnectionReset(30.0),
        Partition(50.0, duration_s=0.5),
    ], seed=SEED)
    injector = NetworkFaultInjector(plan, clock=lambda: clock[0],
                                    sleep=lambda _s: None)
    server = TelemetryServer(port=0, replay_window=4096,
                             queue_capacity=1024).start()

    received: list = []
    wall_start = time.perf_counter()
    try:
        client = TelemetryClient(
            "127.0.0.1", server.port, read_timeout_s=30.0,
            reconnect=ReconnectPolicy(base_s=0.005, max_s=0.05),
            spool=spool_path, transport=injector.wrap,
            breaker=CircuitBreaker(failure_threshold=100,
                                   reset_timeout_s=0.05))
        client.connect()
        server.wait_for(lambda: server.subscriber_count == 1)

        _publish(server, PHASE, start=0)            # clean baseline
        received += client.collect(PHASE)

        clock[0] = 10.0                             # reset #1 due
        _publish(server, PHASE, start=PHASE)
        received += client.collect(PHASE)

        clock[0] = 20.0                             # reset #2 due
        _publish(server, PHASE // 2, start=2 * PHASE)
        received += client.collect(PHASE // 2)
        clock[0] = 25.0                             # corruption due
        _publish(server, PHASE // 2, start=2 * PHASE + PHASE // 2)
        received += client.collect(PHASE // 2)

        clock[0] = 30.0                             # reset #3 due
        _publish(server, PHASE, start=3 * PHASE)
        received += client.collect(PHASE)
        live_stats = {"reconnects": client.reconnects,
                      "stream_errors": client.stream_errors,
                      "duplicates_dropped": client.duplicates_dropped}

        # Consumer crash: the process dies, the spool file survives.
        client.close()
        _publish(server, PHASE, start=4 * PHASE)    # missed while down

        recovery_start = time.perf_counter()
        restarted = TelemetryClient(
            "127.0.0.1", server.port, read_timeout_s=30.0,
            reconnect=ReconnectPolicy(base_s=0.005, max_s=0.05),
            spool=spool_path, transport=injector.wrap)
        received += restarted.collect(PHASE)        # the replayed window
        recovery_latency_s = time.perf_counter() - recovery_start

        # Partition window [50, 50.5]: a timer lifts it after 0.2s of
        # real time while the client redials through it.
        clock[0] = 50.2
        lifter = threading.Timer(0.2, lambda: clock.__setitem__(0, 51.0))
        lifter.start()
        _publish(server, PHASE, start=5 * PHASE)
        received += restarted.collect(PHASE)
        lifter.join()

        total = 6 * PHASE
        wall_s = time.perf_counter() - wall_start
        stats = server.stats()
        result = {
            "frames_published": total,
            "frames_received": len(received),
            "frames_replayed": stats["frames_replayed"],
            "resumes_served": stats["resumes_served"],
            "replay_evictions": stats["replay_evictions"],
            "reconnects": live_stats["reconnects"] + restarted.reconnects,
            "stream_errors": (live_stats["stream_errors"]
                              + restarted.stream_errors),
            "duplicates_dropped": (live_stats["duplicates_dropped"]
                                   + restarted.duplicates_dropped),
            "resets_injected": injector.resets_injected,
            "corruptions_injected": injector.corruptions_injected,
            "partition_hits": injector.partition_hits,
            "crash_recovery_latency_s": round(recovery_latency_s, 4),
            "wall_s": round(wall_s, 3),
            "events": received,
        }
        restarted.close()
        return result
    finally:
        server.stop()


def _run_eviction_probe(spool_path: Path) -> dict:
    """A window far smaller than the outage: the resuming client must
    see one explicit gap covering exactly the evicted range, then the
    surviving tail — never silence."""
    window, missed = 64, 200
    server = TelemetryServer(port=0, replay_window=window).start()
    try:
        client = TelemetryClient("127.0.0.1", server.port,
                                 read_timeout_s=30.0, spool=spool_path)
        client.connect()
        server.wait_for(lambda: server.subscriber_count == 1)
        _publish(server, 10, start=0)
        client.collect(10)
        client.close()

        _publish(server, missed, start=10)          # seqs 10..209

        restarted = TelemetryClient("127.0.0.1", server.port,
                                    read_timeout_s=30.0, spool=spool_path)
        events = restarted.collect(1 + window)      # the gap + the tail
        gap, tail = events[0], events[1:]
        restarted.close()
        assert isinstance(gap, GapTelemetry)
        assert gap.marker.source == "replay-eviction"
        # Window keeps the last `window` seqs; everything before them
        # is declared evicted, explicitly.
        assert gap.evicted_from == 10
        assert gap.evicted_through == 10 + missed - window - 1
        assert [e.report.time_s for e in tail] \
            == [float(seq + 1) for seq in range(10 + missed - window,
                                                10 + missed)]
        return {
            "replay_window": window,
            "frames_missed": missed,
            "frames_replayed": window,
            "evicted_from": gap.evicted_from,
            "evicted_through": gap.evicted_through,
            "explicit_gap": True,
        }
    finally:
        server.stop()


def test_chaos_soak(save_result, tmp_path):
    soak = _run_soak(tmp_path / "chaos_soak.spool")
    events = soak.pop("events")

    # The exactly-once contract, frame by frame.
    times = [event.report.time_s for event in events
             if isinstance(event, ReportEvent)]
    assert times == [float(index + 1)
                     for index in range(soak["frames_published"])]
    assert not any(isinstance(event, GapTelemetry) for event in events)
    assert soak["resets_injected"] == 3
    assert soak["corruptions_injected"] == 1
    assert soak["partition_hits"] >= 1
    assert soak["resumes_served"] >= 1          # the crash-restart
    assert soak["frames_replayed"] >= PHASE     # at least the missed batch
    assert soak["replay_evictions"] == 0        # window held everything

    eviction = _run_eviction_probe(tmp_path / "chaos_eviction.spool")

    results = {"soak": soak, "eviction": eviction, "seed": SEED,
               "python": platform.python_version()}
    BENCH_PATH.write_text(json.dumps(results, indent=2, sort_keys=True)
                          + "\n")
    lines = [
        f"soak: {soak['frames_published']} frames, seed {SEED}, "
        f"wall {soak['wall_s']}s",
        f"  delivered exactly-once: {len(times)} reports, 0 lost, "
        f"{soak['duplicates_dropped']} duplicate(s) dropped at the client",
        f"  faults: {soak['resets_injected']} resets, "
        f"{soak['corruptions_injected']} corruption(s), "
        f"{soak['partition_hits']} partition hit(s); "
        f"{soak['reconnects']} reconnect(s)",
        f"  crash-restart: {soak['resumes_served']} resume(s), "
        f"{soak['frames_replayed']} frame(s) replayed, recovery "
        f"latency {soak['crash_recovery_latency_s']}s",
        f"eviction probe: window {eviction['replay_window']}, "
        f"{eviction['frames_missed']} missed -> explicit gap "
        f"[{eviction['evicted_from']}..{eviction['evicted_through']}] "
        f"+ {eviction['frames_replayed']} replayed",
        f"-> {BENCH_PATH.name}",
    ]
    save_result("chaos_soak", "\n".join(lines))

"""Telemetry fan-out and relay-tree benchmark.

Measures the streaming tier against the acceptance bars of the
telemetry subsystem:

* ``fanout`` — aggregate delivered reports/s while one batched server
  fans a publish stream out to 64/256/1024 concurrent TCP subscribers
  with zero codec errors.  Subscribers are header-scanning drainer
  processes: they negotiate protocol v2, then count frames by walking
  wire headers (struct unpack + payload skip, descending into BATCH
  envelopes) without JSON-decoding payloads, so the measurement is
  dominated by server-side fan-out cost rather than client parse cost.
* ``relay_tree`` — a simulated 10 000-host fleet streamed through a
  two-level relay tree (two edge servers -> two mid-tier relays -> one
  root relay), verifying per-host origin identity survives both hops
  and measuring end-to-end relayed frames/s.
* ``slow_subscriber`` — per-overflow-policy behaviour with one
  deliberately slow subscriber in the fan-out: ``drop-oldest`` and
  ``coalesce`` must never stall the publisher; ``block`` must stall
  (that is its contract) while losing nothing.

Results are written to ``BENCH_telemetry.json`` at the repository root
so future PRs can diff the trajectory.  Marked ``slow`` + ``telemetry``:
the tier-1 suite (``testpaths = ["tests"]``) never collects it; run it
explicitly with
``PYTHONPATH=src python -m pytest benchmarks/test_telemetry_bench.py -q``.
"""

from __future__ import annotations

import json
import multiprocessing
import platform
import socket
import threading
import time
from pathlib import Path

import pytest

from repro.core.messages import AggregatedPowerReport
from repro.telemetry import wire
from repro.telemetry.client import TelemetryClient
from repro.telemetry.relay import TelemetryRelay
from repro.telemetry.server import (BatchPolicy, OverflowPolicy,
                                    TelemetryServer)
from repro.telemetry.wire import FrameKind, ReportEvent

pytestmark = [pytest.mark.slow, pytest.mark.telemetry]

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"

#: Subscriber counts swept in the fan-out measurement, with the number
#: of reports published at each width (wider sweeps publish fewer
#: frames so every width finishes in a few wall-clock seconds while
#: still delivering hundreds of thousands of frames in aggregate).
FANOUT_SWEEP = ((64, 2000), (256, 800), (1024, 300))
#: Header-scanning drainer processes the subscriber load is spread over.
DRAINER_PROCS = 2
#: Hosts simulated in the relay-tree measurement.
FLEET_HOSTS = 10_000
#: Relay levels between the edge servers and the root (edge -> mid ->
#: root is two relay hops).
FLEET_LEVELS = 2
#: Reports published in each slow-subscriber run.
SLOW_REPORTS = 400


def _report(time_s: float) -> AggregatedPowerReport:
    return AggregatedPowerReport(
        time_s=time_s, period_s=1.0,
        by_pid={100: 4.2, 101: 1.9, 102: 0.7},
        idle_w=31.48, formula="hpc")


# --------------------------------------------------------------------------
# Header-scanning drainer processes


def _scan_frames(buffer: bytearray) -> int:
    """Count REPORT frames in *buffer*, consuming complete frames.

    Walks wire headers and skips payload bytes without decoding them.
    A BATCH envelope's body is a raw concatenation of complete inner
    frames, so the scan descends into it by consuming only the
    envelope header; partially-received inner frames stay buffered for
    the next pass exactly like partially-received bare frames.
    """
    count = 0
    offset = 0
    size = len(buffer)
    header = wire._HEADER
    header_size = wire.HEADER_SIZE
    report_kind = int(FrameKind.REPORT)
    batch_kind = int(FrameKind.BATCH)
    while size - offset >= header_size:
        _magic, _version, kind, length = header.unpack_from(buffer, offset)
        if kind == batch_kind:
            offset += header_size
            continue
        end = offset + header_size + length
        if end > size:
            break
        if kind == report_kind:
            count += 1
        offset = end
    del buffer[:offset]
    return count


def _drain_proc(port: int, connections: int, expect: int, conn) -> None:
    """Hold *connections* subscriptions and header-scan until done.

    Runs in a child process: opens every socket, handshakes protocol
    v2, then scans arriving bytes in a selector loop until each
    connection counted *expect* REPORT frames.  Reports
    ``(total_reports, errors)`` back over *conn* and exits.
    """
    import selectors

    sel = selectors.DefaultSelector()
    counts = {}
    buffers = {}
    errors = 0
    socks = []
    try:
        for _ in range(connections):
            sock = socket.create_connection(("127.0.0.1", port),
                                            timeout=30.0)
            sock.sendall(wire.encode_frame(
                FrameKind.HELLO,
                {"agent": "bench-drainer", "versions": [1, 2]}))
            sock.sendall(wire.encode_frame(
                FrameKind.SUBSCRIBE, {"downsample": 1}))
            sock.setblocking(False)
            sel.register(sock, selectors.EVENT_READ)
            counts[sock] = 0
            buffers[sock] = bytearray()
            socks.append(sock)
        pending = set(socks)
        while pending:
            for key, _events in sel.select(timeout=30.0):
                sock = key.fileobj
                try:
                    data = sock.recv(1 << 18)
                except BlockingIOError:
                    continue
                except OSError:
                    data = b""
                if not data:
                    errors += 1
                    sel.unregister(sock)
                    pending.discard(sock)
                    continue
                buffer = buffers[sock]
                buffer.extend(data)
                counts[sock] += _scan_frames(buffer)
                if counts[sock] >= expect and sock in pending:
                    pending.discard(sock)
                    sel.unregister(sock)
        conn.send((sum(counts.values()), errors))
    except Exception:  # noqa: BLE001 - reported, not raised
        conn.send((sum(counts.values()), errors + 1))
    finally:
        for sock in socks:
            try:
                sock.close()
            except OSError:
                pass
        conn.close()


def _measure_fanout(subscribers: int, reports: int) -> dict:
    server = TelemetryServer(port=0, overflow=OverflowPolicy.BLOCK,
                             queue_capacity=1024,
                             batch=BatchPolicy()).start()
    ctx = multiprocessing.get_context("fork")
    procs = []
    pipes = []
    per_proc = subscribers // DRAINER_PROCS
    remainder = subscribers - per_proc * DRAINER_PROCS
    for index in range(DRAINER_PROCS):
        count = per_proc + (1 if index < remainder else 0)
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_drain_proc,
                           args=(server.port, count, reports, child_conn),
                           daemon=True)
        proc.start()
        child_conn.close()
        procs.append(proc)
        pipes.append(parent_conn)
    assert server.wait_for_subscribers(subscribers, timeout=60.0)

    start = time.perf_counter()
    for index in range(reports):
        server.publish_report(_report(float(index)))
    # Snapshot while the subscriptions are still connected; drainer
    # processes hang up the moment their count is reached.
    stats = server.stats()
    received = 0
    errors = 0
    for parent_conn in pipes:
        assert parent_conn.poll(timeout=120.0), "drainer timed out"
        got, bad = parent_conn.recv()
        received += got
        errors += bad
    elapsed = time.perf_counter() - start

    dropped = sum(sub["frames_dropped"] for sub in stats["subscribers"])
    high_water = max((sub["queue_high_water"]
                      for sub in stats["subscribers"]), default=0)
    for proc in procs:
        proc.join(timeout=30.0)
    server.stop()
    assert errors == 0
    assert dropped == 0
    assert received == reports * subscribers
    return {
        "subscribers": subscribers,
        "published": reports,
        "delivered": received,
        "delivered_per_sec": round(received / elapsed, 1),
        "published_per_sec": round(reports / elapsed, 1),
        "queue_high_water": high_water,
        "codec_errors": errors,
    }


# --------------------------------------------------------------------------
# 10k-host fleet through a two-level relay tree


def _fleet_payload(host: str, time_s: float) -> dict:
    payload = _report(time_s).to_wire()
    payload["host"] = host
    return payload


def _measure_relay_tree(hosts: int) -> dict:
    """Two edge servers impersonate *hosts* fleet members; frames flow
    edge -> mid relay -> root relay and a client at the root verifies
    per-host origin identity survived both hops."""
    lossless = {"overflow": OverflowPolicy.BLOCK, "queue_capacity": 2048}
    edges = [TelemetryServer(host_label=f"edge-{index}",
                             **lossless).start()
             for index in range(2)]
    mids = [TelemetryRelay((("127.0.0.1", edge.port),), **lossless).start()
            for edge in edges]
    root = TelemetryRelay(tuple(("127.0.0.1", mid.port)
                                for mid in mids), **lossless).start()
    consumer = TelemetryClient("127.0.0.1", root.port,
                               agent="bench-fleet-consumer")
    consumer.connect()
    assert root.wait_for_subscribers(1, timeout=30.0)
    # Nothing may be published until every hop's uplink subscription is
    # live: there are no replay windows in this tree, so early frames
    # would simply miss the not-yet-connected tier.
    for edge in edges:
        assert edge.wait_for_subscribers(1, timeout=30.0)
    for mid in mids:
        assert mid.wait_for_subscribers(1, timeout=30.0)

    half = hosts // 2
    start = time.perf_counter()

    def publish(edge: TelemetryServer, first: int, count: int) -> None:
        for index in range(first, first + count):
            edge.publish_frame(
                FrameKind.REPORT,
                _fleet_payload(f"h{index:05d}", float(index)))

    feeder = threading.Thread(
        target=publish, args=(edges[1], half, hosts - half), daemon=True)
    feeder.start()
    publish(edges[0], 0, half)
    feeder.join(timeout=120.0)

    seen = {}
    identity_preserved = True
    for event in consumer:
        if not isinstance(event, ReportEvent):
            continue
        host, epoch, _seq = event.identity()
        if epoch is None:
            identity_preserved = False
        seen[host] = epoch
        if len(seen) >= hosts:
            break
    elapsed = time.perf_counter() - start
    assert root.wait_until_relayed(hosts, timeout=30.0)

    stats = root.stats()
    duplicates = sum(up["duplicates_dropped"] for up in stats["uplinks"])
    consumer.close()
    root.stop()
    for mid in mids:
        mid.stop()
    for edge in edges:
        edge.stop()
    assert len(seen) == hosts
    assert identity_preserved
    assert duplicates == 0
    return {
        "hosts": hosts,
        "levels": FLEET_LEVELS,
        "frames": hosts,
        "relayed_per_sec": round(hosts / elapsed, 1),
        "distinct_hosts": len(seen),
        "duplicates_dropped": duplicates,
        "identity_preserved": identity_preserved,
    }


# --------------------------------------------------------------------------
# Slow-subscriber overflow behaviour (unchanged from the pre-batch tier)


class _Drainer:
    """One subscriber connection drained on its own thread."""

    def __init__(self, port: int, expect: int = 0) -> None:
        self.client = TelemetryClient("127.0.0.1", port,
                                      agent="repro-bench-drainer")
        self.expect = expect
        self.received = 0
        self.codec_errors = 0
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.client.connect()
        self.thread.start()

    def _run(self) -> None:
        try:
            for event in self.client:
                if isinstance(event, ReportEvent):
                    self.received += 1
                    if self.expect and self.received >= self.expect:
                        return
        except Exception:  # noqa: BLE001 - counted, not raised
            self.codec_errors += 1

    def stop(self) -> None:
        self.client.close()
        self.thread.join(timeout=30.0)


def _measure_slow_subscriber(policy: str) -> dict:
    """One paused subscriber (tiny queue) beside one healthy drainer."""
    server = TelemetryServer(port=0, overflow=policy,
                             queue_capacity=8).start()
    healthy = _Drainer(server.port)
    slow = TelemetryClient("127.0.0.1", server.port,
                           agent="repro-bench-slow").connect()
    assert server.wait_for_subscribers(2, timeout=30.0)
    # The slow subscriber never reads: its server-side queue fills and
    # the socket buffer backs up, exactly like a wedged consumer.
    paused = [sub for sub in server.subscribers()
              if sub.agent == "repro-bench-slow"]
    assert len(paused) == 1
    paused[0].queue.pause()

    start = time.perf_counter()
    unblocker = None
    if policy == OverflowPolicy.BLOCK:
        # The publisher will stall by design; resume the consumer once
        # the first stall is counted so the run completes.
        def _unblock() -> None:
            server.wait_for(lambda: server.stalls >= 1, timeout=30.0)
            paused[0].queue.resume()

        unblocker = threading.Thread(target=_unblock, daemon=True)
        unblocker.start()
    for index in range(SLOW_REPORTS):
        server.publish_report(_report(float(index)))
    publish_wall_s = time.perf_counter() - start
    if unblocker is not None:
        unblocker.join(timeout=30.0)
    else:
        paused[0].queue.resume()

    stats = server.stats()
    slow_stats = next(sub for sub in stats["subscribers"]
                      if sub["agent"] == "repro-bench-slow")
    result = {
        "policy": policy,
        "published": SLOW_REPORTS,
        "publish_wall_s": round(publish_wall_s, 4),
        "stalls": stats["stalls"],
        "slow_dropped": slow_stats["frames_dropped"],
        "slow_high_water": slow_stats["queue_high_water"],
    }
    slow.close()
    healthy.stop()
    server.stop()
    assert healthy.codec_errors == 0
    return result


def test_telemetry_bench():
    fanout = [_measure_fanout(count, reports)
              for count, reports in FANOUT_SWEEP]
    relay_tree = _measure_relay_tree(FLEET_HOSTS)
    slow = [_measure_slow_subscriber(policy)
            for policy in OverflowPolicy.ALL]

    # The acceptance bar: 64 subscribers at >= 4x the pre-batch 37k/s
    # aggregate, zero codec errors, queue memory bounded by the cap.
    widest = {entry["subscribers"]: entry for entry in fanout}
    assert widest[64]["delivered_per_sec"] >= 148_000
    for entry in fanout:
        assert entry["codec_errors"] == 0
        assert entry["queue_high_water"] <= 1024

    assert relay_tree["distinct_hosts"] == FLEET_HOSTS
    assert relay_tree["identity_preserved"]
    assert relay_tree["duplicates_dropped"] == 0

    by_policy = {entry["policy"]: entry for entry in slow}
    assert by_policy[OverflowPolicy.DROP_OLDEST]["stalls"] == 0
    assert by_policy[OverflowPolicy.COALESCE]["stalls"] == 0
    assert by_policy[OverflowPolicy.BLOCK]["stalls"] >= 1
    assert by_policy[OverflowPolicy.BLOCK]["slow_dropped"] == 0
    for policy in (OverflowPolicy.DROP_OLDEST, OverflowPolicy.COALESCE):
        assert by_policy[policy]["slow_high_water"] <= 8

    results = {
        "fanout": fanout,
        "relay_tree": relay_tree,
        "slow_subscriber": slow,
        # Headline scalars duplicated at the top level so CI's
        # diff_bench.py (flat-key lookups) can trend them across PRs.
        "fanout_64_delivered_per_sec": widest[64]["delivered_per_sec"],
        "fanout_1024_delivered_per_sec": widest[1024]["delivered_per_sec"],
        "relay_tree_relayed_per_sec": relay_tree["relayed_per_sec"],
        "python": platform.python_version(),
    }
    BENCH_PATH.write_text(json.dumps(results, indent=2, sort_keys=True)
                          + "\n")
    lines = [f"{entry['subscribers']:4d} subscribers: "
             f"{entry['delivered_per_sec']:>10,.0f} delivered/s "
             f"(high-water {entry['queue_high_water']})"
             for entry in fanout]
    lines += [f"{relay_tree['hosts']:,}-host fleet / "
              f"{relay_tree['levels']}-level relay tree: "
              f"{relay_tree['relayed_per_sec']:>10,.0f} relayed/s"]
    lines += [f"{entry['policy']:>12s}: stalls={entry['stalls']} "
              f"dropped={entry['slow_dropped']} "
              f"wall={entry['publish_wall_s']}s"
              for entry in slow]
    print("\n" + "\n".join(lines) + f"\n-> {BENCH_PATH.name}")

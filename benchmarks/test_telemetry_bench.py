"""Telemetry fan-out benchmark.

Measures the streaming service against the acceptance bar of the
telemetry subsystem:

* ``fanout`` — aggregate delivered reports/s while one server fans a
  publish stream out to 1..64 concurrent TCP subscribers, with zero
  codec errors and a bounded queue high-water mark,
* ``slow_subscriber`` — per-overflow-policy behaviour with one
  deliberately slow subscriber in the fan-out: ``drop-oldest`` and
  ``coalesce`` must never stall the publisher; ``block`` must stall
  (that is its contract) while losing nothing.

Results are written to ``BENCH_telemetry.json`` at the repository root
so future PRs can diff the trajectory.  Marked ``slow`` + ``telemetry``:
the tier-1 suite (``testpaths = ["tests"]``) never collects it; run it
explicitly with
``PYTHONPATH=src python -m pytest benchmarks/test_telemetry_bench.py -q``.
"""

from __future__ import annotations

import json
import platform
import threading
import time
from pathlib import Path

import pytest

from repro.core.messages import AggregatedPowerReport
from repro.telemetry.client import TelemetryClient
from repro.telemetry.server import OverflowPolicy, TelemetryServer
from repro.telemetry.wire import ReportEvent

pytestmark = [pytest.mark.slow, pytest.mark.telemetry]

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"

#: Reports published per fan-out measurement.
REPORTS = 2000
#: Subscriber counts swept in the fan-out measurement.
FANOUT_SWEEP = (1, 8, 64)
#: Reports published in each slow-subscriber run.
SLOW_REPORTS = 400


def _report(time_s: float) -> AggregatedPowerReport:
    return AggregatedPowerReport(
        time_s=time_s, period_s=1.0,
        by_pid={100: 4.2, 101: 1.9, 102: 0.7},
        idle_w=31.48, formula="hpc")


class _Drainer:
    """One subscriber connection drained on its own thread.

    The thread exits on its own once *expect* reports arrived, so
    joining it marks true end-to-end delivery (decoded by the client,
    not merely handed to the kernel's socket buffer).
    """

    def __init__(self, port: int, expect: int = 0) -> None:
        self.client = TelemetryClient("127.0.0.1", port,
                                      agent="repro-bench-drainer")
        self.expect = expect
        self.received = 0
        self.codec_errors = 0
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.client.connect()
        self.thread.start()

    def _run(self) -> None:
        try:
            for event in self.client:
                if isinstance(event, ReportEvent):
                    self.received += 1
                    if self.expect and self.received >= self.expect:
                        return
        except Exception:  # noqa: BLE001 - counted, not raised
            self.codec_errors += 1

    def stop(self) -> None:
        self.client.close()
        self.thread.join(timeout=30.0)


def _measure_fanout(subscribers: int) -> dict:
    server = TelemetryServer(port=0, overflow=OverflowPolicy.BLOCK,
                             queue_capacity=1024).start()
    drainers = [_Drainer(server.port, expect=REPORTS)
                for _ in range(subscribers)]
    assert server.wait_for_subscribers(subscribers, timeout=30.0)
    start = time.perf_counter()
    for index in range(REPORTS):
        server.publish_report(_report(float(index)))
    for drainer in drainers:
        drainer.thread.join(timeout=120.0)
        assert not drainer.thread.is_alive()
    elapsed = time.perf_counter() - start
    stats = server.stats()
    high_water = max(sub["queue_high_water"] for sub in stats["subscribers"])
    dropped = sum(sub["frames_dropped"] for sub in stats["subscribers"])
    for drainer in drainers:
        drainer.stop()
    server.stop()
    received = sum(drainer.received for drainer in drainers)
    codec_errors = sum(drainer.codec_errors for drainer in drainers)
    assert codec_errors == 0
    assert dropped == 0
    assert received == REPORTS * subscribers
    return {
        "subscribers": subscribers,
        "published": REPORTS,
        "delivered": received,
        "delivered_per_sec": round(received / elapsed, 1),
        "published_per_sec": round(REPORTS / elapsed, 1),
        "queue_high_water": high_water,
        "codec_errors": codec_errors,
    }


def _measure_slow_subscriber(policy: str) -> dict:
    """One paused subscriber (tiny queue) beside one healthy drainer."""
    server = TelemetryServer(port=0, overflow=policy,
                             queue_capacity=8).start()
    healthy = _Drainer(server.port)
    slow = TelemetryClient("127.0.0.1", server.port,
                           agent="repro-bench-slow").connect()
    assert server.wait_for_subscribers(2, timeout=30.0)
    # The slow subscriber never reads: its server-side queue fills and
    # the socket buffer backs up, exactly like a wedged consumer.
    paused = [sub for sub in server.subscribers()
              if sub.agent == "repro-bench-slow"]
    assert len(paused) == 1
    paused[0].queue.pause()

    start = time.perf_counter()
    unblocker = None
    if policy == OverflowPolicy.BLOCK:
        # The publisher will stall by design; resume the consumer once
        # the first stall is counted so the run completes.
        def _unblock() -> None:
            server.wait_for(lambda: server.stalls >= 1, timeout=30.0)
            paused[0].queue.resume()

        unblocker = threading.Thread(target=_unblock, daemon=True)
        unblocker.start()
    for index in range(SLOW_REPORTS):
        server.publish_report(_report(float(index)))
    publish_wall_s = time.perf_counter() - start
    if unblocker is not None:
        unblocker.join(timeout=30.0)
    else:
        paused[0].queue.resume()

    stats = server.stats()
    slow_stats = next(sub for sub in stats["subscribers"]
                      if sub["agent"] == "repro-bench-slow")
    result = {
        "policy": policy,
        "published": SLOW_REPORTS,
        "publish_wall_s": round(publish_wall_s, 4),
        "stalls": stats["stalls"],
        "slow_dropped": slow_stats["frames_dropped"],
        "slow_high_water": slow_stats["queue_high_water"],
    }
    slow.close()
    healthy.stop()
    server.stop()
    assert healthy.codec_errors == 0
    return result


def test_telemetry_bench():
    fanout = [_measure_fanout(count) for count in FANOUT_SWEEP]
    slow = [_measure_slow_subscriber(policy)
            for policy in OverflowPolicy.ALL]

    # The acceptance bar: 64 subscribers at >= 5k reports/s aggregate,
    # zero codec errors, queue memory bounded by the configured cap.
    widest = fanout[-1]
    assert widest["subscribers"] == 64
    assert widest["delivered_per_sec"] >= 5000
    assert widest["codec_errors"] == 0
    assert widest["queue_high_water"] <= 1024

    by_policy = {entry["policy"]: entry for entry in slow}
    assert by_policy[OverflowPolicy.DROP_OLDEST]["stalls"] == 0
    assert by_policy[OverflowPolicy.COALESCE]["stalls"] == 0
    assert by_policy[OverflowPolicy.BLOCK]["stalls"] >= 1
    assert by_policy[OverflowPolicy.BLOCK]["slow_dropped"] == 0
    for policy in (OverflowPolicy.DROP_OLDEST, OverflowPolicy.COALESCE):
        assert by_policy[policy]["slow_high_water"] <= 8

    results = {
        "fanout": fanout,
        "slow_subscriber": slow,
        "reports_per_measurement": REPORTS,
        "python": platform.python_version(),
    }
    BENCH_PATH.write_text(json.dumps(results, indent=2, sort_keys=True)
                          + "\n")
    lines = [f"{entry['subscribers']:3d} subscribers: "
             f"{entry['delivered_per_sec']:>10,.0f} delivered/s "
             f"(high-water {entry['queue_high_water']})"
             for entry in fanout]
    lines += [f"{entry['policy']:>12s}: stalls={entry['stalls']} "
              f"dropped={entry['slow_dropped']} "
              f"wall={entry['publish_wall_s']}s"
              for entry in slow]
    print("\n" + "\n".join(lines) + f"\n-> {BENCH_PATH.name}")

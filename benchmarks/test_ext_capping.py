"""E2 — extension: adaptive power capping from PowerAPI estimates.

The paper's motivation section calls for "adaptive strategies that can
cope with the sporadic nature" of renewable energy.  This benchmark runs
the estimate-driven DVFS cap controller at several budgets and under a
solar-like varying budget, and reports the compliance/throughput
trade-off the estimates enable *without any physical meter in the loop*.
"""

import pytest

from conftest import paper_campaign

from repro.analysis.report import render_grid
from repro.core.capping import run_capped, solar_budget
from repro.core.sampling import learn_power_model
from repro.workloads.stress import CpuStress


@pytest.fixture(scope="module")
def cap_model(i3_spec):
    """A per-frequency model (the controller needs the whole ladder)."""
    return learn_power_model(i3_spec, campaign=paper_campaign(i3_spec),
                             idle_duration_s=10.0).model


def _workload():
    return [CpuStress(utilization=1.0, threads=4, duration_s=1000.0)]


def test_ext_fixed_budgets_tradeoff(benchmark, i3_spec, cap_model,
                                    save_result):
    # All feasible: the machine floor (idle + 4 busy threads at the
    # lowest P-state) sits near 41 W on this part.
    budgets = [65.0, 50.0, 44.0]

    def sweep():
        return {budget: run_capped(i3_spec, cap_model, _workload(),
                                   budget=budget, duration_s=20.0,
                                   period_s=0.5)
                for budget in budgets}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    previous_instructions = None
    for budget in budgets:
        result = results[budget]
        rows.append([
            f"{budget:.0f} W",
            f"{result.overshoot_fraction(tolerance_w=1.5) * 100:.0f}%",
            f"{result.true_energy_j:.0f} J",
            f"{result.instructions / 1e9:.1f} G",
        ])
        if previous_instructions is not None:
            # Tighter budget -> less work done (monotone trade-off).
            assert result.instructions <= previous_instructions * 1.02
        previous_instructions = result.instructions
    save_result("ext_capping", render_grid(
        ["budget", "overshoot", "true energy", "work"],
        rows,
        title="E2: estimate-driven power capping "
              "(20 s, 4 busy threads, no meter in the loop)"))

    # Under the loosest budget nothing is throttled; under the tightest
    # the machine uses much less energy.
    assert (results[44.0].true_energy_j
            < results[65.0].true_energy_j * 0.8)


def test_ext_infeasible_budget_pegs_minimum(benchmark, i3_spec, cap_model,
                                            save_result):
    """A budget below the machine floor drives (and holds) the lowest
    P-state — the controller degrades gracefully instead of oscillating."""
    result = benchmark.pedantic(
        lambda: run_capped(i3_spec, cap_model, _workload(), budget=34.0,
                           duration_s=15.0, period_s=0.5),
        rounds=1, iterations=1)
    # Second half of the run: pegged at the minimum frequency.
    tail = result.frequency_trace_hz[len(result.frequency_trace_hz) // 2:]
    assert set(tail) == {i3_spec.min_frequency_hz}
    save_result("ext_capping_infeasible",
                "budget 34 W is below the ~41 W machine floor: controller "
                "pegs the lowest P-state and holds it (no oscillation)")


def test_ext_solar_budget_followed(benchmark, i3_spec, cap_model,
                                   save_result):
    budget = solar_budget(peak_w=58.0, floor_w=38.0, period_s=20.0)

    result = benchmark.pedantic(
        lambda: run_capped(i3_spec, cap_model, _workload(), budget=budget,
                           duration_s=40.0, period_s=0.5),
        rounds=1, iterations=1)
    overshoot = result.overshoot_fraction(tolerance_w=2.5)
    visited = len(set(result.frequency_trace_hz))
    save_result("ext_capping_solar",
                f"solar budget 38-58 W, 40 s: overshoot "
                f"{overshoot * 100:.1f}% of periods, "
                f"{visited} P-states visited")
    # The controller genuinely follows the feed up and down the ladder.
    assert visited >= 3
    assert overshoot < 0.40

"""EQ — the published power-model equation.

The paper publishes, for the i3-2120,

    Power = 31.48 + sum_f Power_f
    Power_3.30 = 2.22e-9 i + 2.48e-8 r + 1.87e-7 m

This benchmark learns a model on the simulated i3-2120 with the same
methodology and checks the learned equation has the published *shape*:
the idle constant isolates the machine's idle power, all coefficients are
positive, they land within an order of magnitude of the published values,
and the per-event cost ordering (cache-misses > cache-references >
instructions) that leads the paper to observe "cache activities tend to
lead the power consumption" holds.
"""

import pytest

from repro.analysis.report import render_grid
from repro.core.model import published_i3_2120_model
from repro.units import ghz

PUBLISHED = {
    "instructions": 2.22e-9,
    "cache-references": 2.48e-8,
    "cache-misses": 1.87e-7,
}


def test_eq_idle_constant_recovered(benchmark, paper_model):
    """Learned constant matches the published 31.48 W idle power."""
    benchmark.pedantic(lambda: paper_model.idle_w, rounds=10, iterations=10)
    assert paper_model.idle_w == pytest.approx(31.48, rel=0.02)


def test_eq_coefficients_shape(benchmark, i3_spec, paper_model, save_result):
    formula = paper_model.formula(i3_spec.max_frequency_hz)
    learned = formula.coefficients

    rows = []
    for event, published_value in PUBLISHED.items():
        rows.append([event, f"{published_value:.3g}",
                     f"{learned[event]:.3g}"])
        # Same order of magnitude as the published coefficient.
        assert learned[event] == pytest.approx(published_value, rel=9.0), event
        assert learned[event] > 0
    # Per-event cost ordering: cache activities lead the consumption.
    assert (learned["cache-misses"] > learned["cache-references"]
            > learned["instructions"])

    save_result("eq_model_recovery", render_grid(
        ["coefficient (W per event/s)", "paper", "reproduction"], rows,
        title=f"Published equation vs learned model "
              f"(idle: paper 31.48 W, ours {paper_model.idle_w:.2f} W)")
        + "\n\n" + paper_model.equation_text())

    benchmark.pedantic(
        lambda: formula.predict({"instructions": 1e9,
                                 "cache-references": 1e8,
                                 "cache-misses": 1e7}),
        rounds=100, iterations=10)


def test_eq_published_model_replays(benchmark):
    """The exact published equation is available as a preset and predicts."""
    model = published_i3_2120_model()
    rates = {"instructions": 4e9, "cache-references": 2e8,
             "cache-misses": 5e7}
    power = benchmark(model.predict_total, ghz(3.3), rates)
    # 31.48 + 8.88 + 4.96 + 9.35
    assert power == pytest.approx(54.67, abs=0.05)


def test_eq_lower_frequencies_cost_less(paper_model, i3_spec, benchmark):
    """Per-frequency formulas scale down with frequency (DVFS shape)."""
    rates = {"instructions": 1e9, "cache-references": 1e8,
             "cache-misses": 1e7}
    powers = [paper_model.predict_active(f, rates)
              for f in paper_model.frequencies_hz]
    benchmark.pedantic(lambda: paper_model.predict_active(
        i3_spec.max_frequency_hz, rates), rounds=50, iterations=10)
    # Broadly increasing with frequency (same rates cost more at high V/f).
    assert powers[-1] > powers[0]

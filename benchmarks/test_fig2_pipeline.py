"""F2 — Figure 2: the PowerAPI actor architecture.

Verifies the four-component pipeline (Sensor -> Formula -> Aggregator ->
Reporter over the event bus) assembles and runs, and benchmarks the two
properties the paper claims for the actor runtime: message throughput
("it can handle millions of messages per second") and the end-to-end
monitoring step.
"""

import pytest

from repro.actors.actor import Actor
from repro.actors.system import ActorSystem
from repro.core.monitor import PowerAPI
from repro.core.reporters import InMemoryReporter
from repro.os.kernel import SimKernel
from repro.workloads.stress import CpuStress


class _Counter(Actor):
    def __init__(self):
        super().__init__()
        self.count = 0

    def receive(self, message):
        self.count += 1


def test_fig2_actor_message_throughput(benchmark, save_result):
    """Raw mailbox throughput of the actor runtime."""
    system = ActorSystem()
    counter = _Counter()
    ref = system.spawn(counter, "sink")

    def pump():
        for _ in range(10_000):
            ref.tell("m")
        system.dispatch()

    result = benchmark(pump)
    rate = 10_000 / benchmark.stats.stats.mean
    save_result("fig2_actor_throughput",
                f"Actor message throughput: {rate:,.0f} messages/s "
                f"(paper claims 'millions of messages per second' on Akka)")
    assert counter.count >= 10_000


def test_fig2_pipeline_structure(i3_spec, paper_model, benchmark):
    """The assembled pipeline contains the four Figure 2 components."""
    kernel = SimKernel(i3_spec, quantum_s=0.02)
    pid = kernel.spawn(CpuStress(duration_s=60.0))
    api = PowerAPI(kernel, paper_model)
    handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
    names = " ".join(api.system.actor_names()).lower()
    # Sensor, Formula, two Aggregators, Reporter.
    assert len(api.system.actor_names()) == 5

    def step():
        kernel.tick()
        api.clock.advance(kernel.quantum_s)
        api.system.dispatch()

    benchmark(step)
    api.flush()
    assert handle.reporter.aggregated or kernel.time_s < 1.0


def test_fig2_monitoring_overhead(i3_spec, paper_model, benchmark,
                                  save_result):
    """Overhead of live estimation: monitored vs bare simulation step.

    Both variants run several times and the medians are compared, so the
    reported overhead is not one scheduling hiccup.
    """
    import statistics
    import time

    def run_bare():
        kernel = SimKernel(i3_spec, quantum_s=0.02)
        kernel.spawn(CpuStress(duration_s=60.0))
        kernel.run(5.0)

    def run_monitored():
        kernel = SimKernel(i3_spec, quantum_s=0.02)
        pid = kernel.spawn(CpuStress(duration_s=60.0))
        api = PowerAPI(kernel, paper_model)
        api.monitor(pid).every(1.0).to(InMemoryReporter())
        api.run(5.0)

    def timed(function, rounds=5):
        samples = []
        for _round in range(rounds):
            start = time.perf_counter()
            function()
            samples.append(time.perf_counter() - start)
        return statistics.median(samples)

    bare_s = timed(run_bare)
    with_monitor_s = timed(run_monitored)
    benchmark.pedantic(run_monitored, rounds=1, iterations=1)

    overhead = (with_monitor_s - bare_s) / bare_s * 100
    save_result("fig2_monitoring_overhead",
                f"bare 5 s simulation (median of 5):      {bare_s:.3f} s\n"
                f"monitored 5 s simulation (median of 5): "
                f"{with_monitor_s:.3f} s\n"
                f"PowerAPI overhead:                      {overhead:.1f}% "
                f"(the paper targets a non-invasive, lightweight tool)")
    # Non-invasive: live estimation must not slow the system noticeably.
    assert overhead < 50.0

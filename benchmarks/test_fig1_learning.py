"""F1 — Figure 1: the power-model learning process.

Exercises the full pipeline of the paper's Figure 1: stress workloads x
every available frequency, PowerSpy + HPC collection, multivariate
regression, one model per frequency.  The benchmark times one complete
(workload, frequency) sampling run — the unit the campaign repeats.
"""

from conftest import paper_campaign, paper_style_workloads

from repro.analysis.report import render_grid
from repro.core.sampling import SamplingCampaign
from repro.simcpu.counters import GENERIC_TRIO


def test_fig1_sampling_run(benchmark, i3_spec):
    """Time one pinned sampling run (the repeated unit of Figure 1)."""
    campaign = SamplingCampaign(
        i3_spec, workloads=paper_style_workloads()[:1],
        frequencies_hz=[i3_spec.max_frequency_hz],
        window_s=1.0, windows_per_run=2, settle_s=0.25, quantum_s=0.05)
    points = benchmark.pedantic(campaign.run, rounds=3, iterations=1)
    assert len(points) == 2


def test_fig1_full_learning_process(benchmark, i3_spec, paper_model_report,
                                    save_result):
    """The complete campaign: every frequency gets its own formula."""
    report = paper_model_report
    # One formula per available frequency, as the paper requires.
    assert report.model.frequencies_hz == i3_spec.all_frequencies_hz
    # The sampled dataset covers every frequency with every workload.
    assert len(report.dataset.frequencies_hz) == len(
        i3_spec.all_frequencies_hz)
    # The regression used the paper's generic counters.
    assert set(report.model.events) == set(GENERIC_TRIO)
    # Counter rates span a wide dynamic range (CPU- vs memory-bound).
    misses = [point.rates["cache-misses"] for point in report.dataset.points]
    assert max(misses) > 100 * (min(misses) + 1.0)

    from repro.core.validation import cross_validate

    rows = []
    for frequency in report.model.frequencies_hz:
        result = report.regressions[frequency]
        validation = cross_validate(report.dataset, report.idle_w,
                                    frequency)
        rows.append([f"{frequency / 1e9:.2f} GHz",
                     str(result.samples),
                     f"{result.r2:.3f}",
                     f"{validation.pooled_median_ape * 100:.1f}%"])
    save_result("fig1_learning", render_grid(
        ["frequency", "samples", "train r2", "LOWO median APE"], rows,
        title="Figure 1 pipeline: per-frequency regressions "
              f"(idle = {report.idle_w:.2f} W; LOWO = leave-one-"
              "workload-out cross-validation)"))

    benchmark.pedantic(lambda: report.model.predict_total(
        i3_spec.max_frequency_hz,
        {"instructions": 1e9, "cache-references": 1e8,
         "cache-misses": 1e7}), rounds=100, iterations=10)

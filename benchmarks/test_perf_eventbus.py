"""Event-bus publish-path microbenchmark.

Every report of every monitoring period crosses
:meth:`repro.actors.eventbus.EventBus.publish`, so its cost scales with
pipelines × pids × periods.  This benchmark measures publish throughput
on a realistically-shaped bus (a Figure 2 pipeline's subscription
pattern, messages routed through a three-deep class hierarchy) in the
steady state the per-type route cache targets, plus the cache-miss case
of a bus whose subscriptions churn every publish.

Results are written to ``BENCH_eventbus.json`` at the repository root
so future PRs can diff the perf trajectory.  Marked ``perf``: the
tier-1 suite (``testpaths = ["tests"]``) never collects it; run it
explicitly with
``PYTHONPATH=src python -m pytest benchmarks/test_perf_eventbus.py -q``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.actors.actor import Actor
from repro.actors.system import ActorSystem
from repro.core.messages import (HpcReport, PowerReport, ProcFsReport,
                                 SensorReport)

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_eventbus.json"

#: Publishes per timed measurement.
PUBLISHES = 20_000


class _Sink(Actor):
    def __init__(self) -> None:
        super().__init__()
        self.received = 0

    def receive(self, message) -> None:
        self.received += 1


def _pipeline_shaped_bus(pipelines: int = 4):
    """A bus subscribed the way ``pipelines`` Figure 2 pipelines do it:
    formulas on the concrete report types, plus a tap on the
    :class:`SensorReport` base class (telemetry-bridge style)."""
    system = ActorSystem("bench")
    sinks = []
    for _ in range(pipelines):
        for topic in (HpcReport, ProcFsReport, PowerReport, SensorReport):
            sink = _Sink()
            system.spawn(sink)
            system.event_bus.subscribe(topic, sink.self_ref)
            sinks.append(sink)
    return system, sinks


def _drain(system: ActorSystem) -> None:
    system.dispatch()


def test_perf_eventbus_microbench():
    message = HpcReport(time_s=1.0, period_s=1.0, pid=42,
                        counters={"cycles": 1e9}, frequency_hz=3_300_000_000)

    # -- steady state: same message type, stable subscriptions --------
    system, _sinks = _pipeline_shaped_bus()
    bus = system.event_bus
    for _ in range(100):  # warm the route cache and the mailboxes
        bus.publish(message)
    _drain(system)
    start = time.perf_counter()
    for _ in range(PUBLISHES):
        bus.publish(message)
    steady_elapsed = time.perf_counter() - start
    _drain(system)
    steady_per_sec = PUBLISHES / steady_elapsed

    # -- churn: subscriptions change between publishes (cache misses) --
    churn_system, churn_sinks = _pipeline_shaped_bus()
    churn_bus = churn_system.event_bus
    victim = churn_sinks[0].self_ref
    start = time.perf_counter()
    for _ in range(PUBLISHES // 10):
        churn_bus.unsubscribe(HpcReport, victim)
        churn_bus.subscribe(HpcReport, victim)
        churn_bus.publish(message)
    churn_elapsed = time.perf_counter() - start
    _drain(churn_system)
    churn_per_sec = (PUBLISHES // 10) / churn_elapsed

    system.shutdown()
    churn_system.shutdown()
    assert steady_per_sec > 0 and churn_per_sec > 0

    results = {
        "publishes_per_sec_steady": round(steady_per_sec, 1),
        "publishes_per_sec_churn": round(churn_per_sec, 1),
        "publishes_timed": PUBLISHES,
        "python": platform.python_version(),
    }
    BENCH_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\npublish/sec steady: {steady_per_sec:,.0f}  "
          f"churn: {churn_per_sec:,.0f}  -> {BENCH_PATH.name}")

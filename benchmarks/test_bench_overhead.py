"""Monitoring overhead vs sampling period (the paper's Section 5 axis).

PowerAPI's pitch is "runtime overhead proportional to the sampling
frequency": the paper reports sub-1% CPU overhead at 1 Hz and a few
percent at millisecond periods.  This harness measures the analogue in
the simulator: wall time of driving the kernel bare (``kernel.run``)
vs driving the same workload through the full Figure-2 monitoring
pipeline, at sampling periods from 1 ms to 1 s.

Per period the result records ``bare_wall_s``, ``monitored_wall_s``
and ``overhead_pct``; the headline ``overhead_at_1s_pct`` /
``overhead_at_1ms_pct`` pair is diffed by CI against the committed
``BENCH_overhead.json`` baseline.  Marked ``perf``: run explicitly
with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_overhead.py -q``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.core.model import FrequencyFormula, PowerModel
from repro.core.monitor import PowerAPI
from repro.core.reporters import InMemoryReporter
from repro.os.kernel import SimKernel
from repro.simcpu.spec import intel_i3_2120
from repro.workloads.stress import CpuStress

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_overhead.json"

#: Sampling periods swept, seconds (1 ms up to the paper's 1 s default).
PERIODS_S = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0)
#: Simulated duration per measurement.
DURATION_S = 20.0
#: Kernel quantum: fine enough to honour the 1 ms sampling period.
QUANTUM_S = 0.001
#: Repetitions per period (median taken) to tame scheduler noise.
REPEATS = 3


def frequency_model(spec):
    formulas = []
    for frequency in spec.frequencies_hz:
        scale = (frequency / spec.max_frequency_hz) ** 3
        formulas.append(FrequencyFormula(frequency, {
            "instructions": 2.8e-9 * scale,
            "cache-references": 3.8e-8 * scale,
            "cache-misses": 3.5e-7 * scale,
        }))
    return PowerModel(idle_w=31.48, formulas=formulas,
                      name="bench-overhead")


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def run_bare():
    kernel = SimKernel(intel_i3_2120(), quantum_s=QUANTUM_S)
    kernel.spawn(CpuStress(utilization=1.0, threads=4,
                           duration_s=DURATION_S * 2), name="workload")
    start = time.perf_counter()
    kernel.run(DURATION_S)
    return time.perf_counter() - start


def run_monitored(model, period_s):
    kernel = SimKernel(intel_i3_2120(), quantum_s=QUANTUM_S)
    pid = kernel.spawn(CpuStress(utilization=1.0, threads=4,
                                 duration_s=DURATION_S * 2),
                       name="workload")
    api = PowerAPI(kernel, model, period_s=period_s)
    memory = InMemoryReporter()
    api.monitor(pid).every(period_s).to(memory)
    start = time.perf_counter()
    api.run(DURATION_S)
    elapsed = time.perf_counter() - start
    reports = len(memory.total_series())
    api.shutdown()
    return elapsed, reports


def test_monitoring_overhead_curve(save_result):
    model = frequency_model(intel_i3_2120())
    bare_wall_s = _median([run_bare() for _ in range(REPEATS)])

    curve = []
    lines = [f"bare kernel: {bare_wall_s:.3f}s wall for {DURATION_S:.0f}s "
             f"simulated (quantum {QUANTUM_S * 1000:.0f} ms)",
             "",
             f"{'period':>8} {'monitored s':>12} {'overhead %':>11} "
             f"{'reports':>8}"]
    for period_s in PERIODS_S:
        samples = [run_monitored(model, period_s) for _ in range(REPEATS)]
        monitored_wall_s = _median([wall for wall, _ in samples])
        reports = samples[0][1]
        overhead_pct = ((monitored_wall_s - bare_wall_s) / bare_wall_s
                        * 100.0)
        # Sanity, not timing: every sampling period produced a report.
        assert reports >= int(DURATION_S / period_s) - 2
        curve.append({
            "period_s": period_s,
            "monitored_wall_s": round(monitored_wall_s, 4),
            "overhead_pct": round(overhead_pct, 2),
            "reports": reports,
        })
        lines.append(f"{period_s * 1000:>6.0f}ms {monitored_wall_s:>12.3f} "
                     f"{overhead_pct:>11.2f} {reports:>8}")

    # The paper's proportionality claim: cost rises monotonically-ish as
    # the period shrinks; enforce only the endpoints (timing noise).
    at = {point["period_s"]: point["overhead_pct"] for point in curve}
    results = {
        "machine": platform.machine(),
        "python": platform.python_version(),
        "duration_s": DURATION_S,
        "quantum_s": QUANTUM_S,
        "bare_wall_s": round(bare_wall_s, 4),
        "overhead_at_1s_pct": at[1.0],
        "overhead_at_1ms_pct": at[0.001],
        "curve": curve,
    }
    BENCH_PATH.write_text(json.dumps(results, indent=2, sort_keys=True)
                          + "\n")
    lines.append("")
    lines.append(f"overhead 1 s: {at[1.0]:.2f}%, 1 ms: {at[0.001]:.2f}% "
                 f"-> {BENCH_PATH.name}")
    save_result("bench_overhead", "\n".join(lines))

"""Closed-loop cap evaluation: adherence vs throughput across a sweep.

For each workload scenario (cpu / memory / mixed) the harness runs the
monitored workload uncapped once, then under a sweep of power caps, and
records per (scenario, cap):

* ``mean_power_w`` — steady-state mean of the estimated package power,
* ``adherence`` — fraction of steady-state periods at or below the cap
  (with 5% tolerance), the acceptance criterion of the control PR,
* ``throughput_loss_pct`` — instructions the workload retired under the
  cap vs uncapped (DVFS ceilings slow the core, nice throttling shrinks
  its share; both show up here where plain CPU-seconds would not),
* the actuation event counts (step-downs, throttles, ...).

Results go to ``BENCH_control.json`` at the repository root; CI diffs
``mean_adherence`` / ``mean_throughput_loss_pct`` against the committed
baseline via ``benchmarks/diff_bench.py``.  Marked ``perf`` +
``control``: run explicitly with
``PYTHONPATH=src python -m pytest benchmarks/test_bench_control.py -q``.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import pytest

from repro.core.model import FrequencyFormula, PowerModel
from repro.core.monitor import PowerAPI
from repro.core.reporters import InMemoryReporter
from repro.os.kernel import SimKernel
from repro.perf.counting import PerfSession
from repro.simcpu.spec import intel_i3_2120
from repro.workloads.stress import CpuStress, MemoryStress, MixedStress

pytestmark = [pytest.mark.perf, pytest.mark.control]

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_control.json"

DURATION_S = 30.0
PERIOD_S = 0.5
QUANTUM_S = 0.02
#: Steady state: skip the escalation transient at the front.
STEADY_FRACTION = 0.5
#: The sweep brackets the i3's envelope: idle is ~31.5 W, full load
#: lands near 66 W with this model.
CAP_SWEEP_W = (36.0, 40.0, 45.0, 50.0, 55.0)

SCENARIOS = (
    ("cpu", lambda: CpuStress(utilization=1.0, threads=4,
                              duration_s=DURATION_S * 2)),
    ("memory", lambda: MemoryStress(utilization=1.0, threads=4,
                                    working_set_bytes=64 * 1024 ** 2,
                                    duration_s=DURATION_S * 2)),
    ("mixed", lambda: MixedStress(utilization=1.0, threads=4,
                                  duration_s=DURATION_S * 2)),
)


def frequency_model(spec):
    formulas = []
    for frequency in spec.frequencies_hz:
        scale = (frequency / spec.max_frequency_hz) ** 3
        formulas.append(FrequencyFormula(frequency, {
            "instructions": 2.8e-9 * scale,
            "cache-references": 3.8e-8 * scale,
            "cache-misses": 3.5e-7 * scale,
        }))
    return PowerModel(idle_w=31.48, formulas=formulas, name="bench-control")


def run_scenario(spec, model, workload_factory, cap_w):
    """One monitored run; cap_w=None runs uncapped."""
    kernel = SimKernel(spec, quantum_s=QUANTUM_S)
    pid = kernel.spawn(workload_factory(), name="workload")
    # Throughput proxy: instructions the workload retires.  A separate
    # perf session so the count is independent of the monitoring
    # pipeline's own counters.
    work_session = PerfSession(kernel.machine)
    work_counter = work_session.open("instructions", pid=pid)
    api = PowerAPI(kernel, model, period_s=PERIOD_S)
    memory = InMemoryReporter()
    builder = api.monitor(pid).every(PERIOD_S)
    if cap_w is not None:
        builder = builder.cap(cap_w, grace_periods=1)
    handle = builder.to(memory)
    api.run(DURATION_S)
    totals = memory.total_series()
    steady = totals[int(len(totals) * STEADY_FRACTION):]
    instructions = work_counter.read().scaled
    work_session.close()
    events = (handle.control.events if handle.control is not None else [])
    api.shutdown()
    return {
        "mean_power_w": sum(steady) / len(steady),
        "instructions": instructions,
        "steady": steady,
        "events": events,
    }


def test_cap_sweep_adherence_and_throughput(save_result):
    spec = intel_i3_2120()
    model = frequency_model(spec)
    curves = {}
    adherences = []
    losses = []
    overshoots = []
    lines = [f"{'scenario':<8} {'cap W':>6} {'mean W':>8} "
             f"{'adhere':>7} {'loss %':>7}  actuations"]
    for name, factory in SCENARIOS:
        baseline = run_scenario(spec, model, factory, None)
        points = []
        for cap in CAP_SWEEP_W:
            run = run_scenario(spec, model, factory, cap)
            tolerance = cap * 1.05
            adherence = (sum(1 for w in run["steady"] if w <= tolerance)
                         / len(run["steady"]))
            loss_pct = max(0.0, (baseline["instructions"]
                                 - run["instructions"])
                           / baseline["instructions"] * 100.0)
            worst = max(run["steady"])
            overshoot_pct = max(0.0, (worst - cap) / cap * 100.0)
            actions = {}
            for event in run["events"]:
                actions[event.action] = actions.get(event.action, 0) + 1
            bound = cap < baseline["mean_power_w"]
            if bound:
                # The acceptance criterion: a binding, attainable cap is
                # held within 5% in steady state.
                assert adherence >= 0.9, (name, cap, adherence)
                adherences.append(adherence)
                losses.append(loss_pct)
                overshoots.append(overshoot_pct)
            points.append({
                "cap_w": cap,
                "mean_power_w": round(run["mean_power_w"], 3),
                "adherence": round(adherence, 4),
                "throughput_loss_pct": round(loss_pct, 2),
                "worst_overshoot_pct": round(overshoot_pct, 2),
                "binding": bound,
                "actuations": actions,
            })
            summary = ",".join(f"{k}x{v}" for k, v in sorted(actions.items()))
            lines.append(f"{name:<8} {cap:>6.1f} "
                         f"{run['mean_power_w']:>8.2f} {adherence:>7.2f} "
                         f"{loss_pct:>7.2f}  {summary or '-'}")
        curves[name] = {
            "uncapped_mean_power_w": round(baseline["mean_power_w"], 3),
            "uncapped_instructions": round(baseline["instructions"]),
            "sweep": points,
        }

    results = {
        "machine": platform.machine(),
        "python": platform.python_version(),
        "duration_s": DURATION_S,
        "period_s": PERIOD_S,
        "cap_sweep_w": list(CAP_SWEEP_W),
        "mean_adherence": round(sum(adherences) / len(adherences), 4),
        "mean_throughput_loss_pct": round(sum(losses) / len(losses), 2),
        "worst_overshoot_pct": round(max(overshoots), 2),
        "scenarios": curves,
    }
    BENCH_PATH.write_text(json.dumps(results, indent=2, sort_keys=True)
                          + "\n")
    lines.append("")
    lines.append(f"mean adherence {results['mean_adherence']:.3f}, "
                 f"mean throughput loss "
                 f"{results['mean_throughput_loss_pct']:.2f}% "
                 f"-> {BENCH_PATH.name}")
    save_result("bench_control", "\n".join(lines))

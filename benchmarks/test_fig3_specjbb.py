"""F3 — Figure 3: preliminary experiment on the SPECjbb2013 benchmark.

The paper overlays the PowerSpy trace with the PowerAPI estimation over a
~2500 s SPECjbb2013 run on the i3-2120 and reports that the estimates
"follow the same trend as the real power consumption and exhibit a
median error of 15 %".

This benchmark regenerates the full trace: the synthetic SPECjbb runs on
the simulated i3-2120 under live PowerAPI monitoring while a simulated
PowerSpy samples wall power; the two series are aligned and the figure is
rendered as an ASCII chart.  The reproduction must (a) follow the trend
(positive correlation) and (b) land in the paper's error band.
"""

import numpy as np
import pytest

from repro.analysis.report import ascii_chart, format_metrics
from repro.analysis.traces import PowerTrace, align, compare
from repro.core.monitor import PowerAPI
from repro.core.reporters import InMemoryReporter
from repro.os.kernel import SimKernel
from repro.powermeter.powerspy import PowerSpy
from repro.workloads.specjbb import SpecJbbWorkload

TRACE_DURATION_S = 2500.0


@pytest.fixture(scope="module")
def fig3_traces(i3_spec, paper_model):
    """(measured, estimated) traces for the full Figure 3 run."""
    kernel = SimKernel(i3_spec, quantum_s=0.05)
    meter = PowerSpy(kernel.machine, sample_rate_hz=1.0, seed=777)
    meter.connect()
    pid = kernel.spawn(SpecJbbWorkload(duration_s=TRACE_DURATION_S,
                                       threads=4), name="specjbb2013")
    api = PowerAPI(kernel, paper_model, period_s=1.0)
    handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
    api.run(TRACE_DURATION_S)
    measured = PowerTrace.from_samples("powerspy", meter.samples)
    estimated = PowerTrace.from_series("powerapi",
                                       handle.reporter.time_series(),
                                       handle.reporter.total_series())
    return measured, estimated


def test_fig3_median_error_in_paper_band(fig3_traces, benchmark,
                                         save_result):
    from repro.analysis.stats import median_ape_interval

    measured, estimated = fig3_traces
    summary = benchmark.pedantic(compare, args=(measured, estimated),
                                 rounds=3, iterations=1)
    _times, aligned_measured, aligned_estimated = align(measured, estimated)
    interval = median_ape_interval(aligned_measured, aligned_estimated)

    chart = ascii_chart(
        [measured, estimated], width=78, height=18,
        title=f"Figure 3: SPECjbb2013 on i3-2120 — PowerSpy vs PowerAPI "
              f"({summary['aligned']} samples)")
    text = (chart + "\n\n"
            + format_metrics(summary) + "\n"
            + f"paper median error: 15%   "
              f"reproduction: {summary['median_ape'] * 100:.1f}% "
              f"(95% bootstrap CI {interval.low * 100:.1f}"
              f"-{interval.high * 100:.1f}%)")
    save_result("fig3_specjbb", text)

    # The paper's headline number: 15 % median error.  The substituted
    # substrate will not match exactly; the shape band is 10-22 %.
    assert 0.10 < summary["median_ape"] < 0.22
    # The interval is tight enough for the point estimate to be meaningful.
    assert interval.width < 0.05


def test_fig3_estimates_follow_the_trend(fig3_traces, benchmark):
    """'The estimations ... follow the same trend as the real power.'"""
    measured, estimated = fig3_traces
    times, ref, est = align(measured, estimated)
    correlation = benchmark(lambda: float(np.corrcoef(ref, est)[0, 1]))
    assert correlation > 0.6


def test_fig3_trace_covers_dynamic_range(fig3_traces, benchmark):
    """The trace shows the ramp and plateaus of Figure 3 (not flat)."""
    measured, _estimated = fig3_traces
    powers = np.asarray(measured.powers_w)
    benchmark(lambda: powers.std())
    # Load varies between near-idle+ and heavy load.
    assert powers.max() - powers.min() > 10.0
    assert powers.min() < 45.0
    assert powers.max() > 55.0

"""T1 — Table 1: Intel Core i3 2120 specifications.

Regenerates the paper's Table 1 from the simulated machine description
and verifies every row against the published values.
"""

from repro.analysis.report import render_table
from repro.simcpu.machine import Machine
from repro.units import ghz


def test_table1_specifications(benchmark, i3_spec, save_result):
    rows = benchmark(i3_spec.specification_table)
    table = dict(rows)

    assert table["Vendor"] == "Intel"
    assert table["Processor"] == "i3"
    assert table["Model"] == "2120"
    assert table["Design"] == "4 threads"
    assert table["Frequency"] == "3.30 GHz"
    assert table["TDP"] == "65 W"
    assert table["SpeedStep (DVFS)"] == "yes"
    assert table["HyperThreading (SMT)"] == "yes"
    assert table["TurboBoost (Overclocking)"] == "no"
    assert table["C-states (Idle states)"] == "yes"
    assert table["L1 cache"] == "64 KB / core"
    assert table["L2 cache"] == "256 KB / core"
    assert table["L3 cache"] == "3 MB"

    save_result("table1_specs", render_table(
        rows, title="Table 1: Intel Core i3 2120 specifications"))


def test_table1_machine_instantiates(benchmark, i3_spec):
    """The spec is buildable: the simulated machine boots from Table 1."""
    machine = benchmark(Machine, i3_spec)
    assert len(machine.topology) == 4
    assert machine.spec.max_frequency_hz == ghz(3.3)

"""C1 — related-work comparison: Bertran et al. (decomposable model).

The paper cites Bertran et al.'s decomposable per-component power model
reaching a 4.63 % average error on six SPEC CPU2006 applications on a
Core 2 Duo — "a simple architecture without any features for improving
performances (no HyperThreading, no TurboBoost)".

Reproduction: the decomposable model (wide per-component event set,
steady-state training) is learned on the simulated Core 2 Duo and scored
on the six synthetic SPEC CPU apps.  Expected shape: a mean error within
a few percent — clearly better than the generic-trio PowerAPI methodology
on the same workloads.
"""

import pytest

from conftest import paper_style_workloads

from repro.analysis.report import render_grid
from repro.baselines.bertran import BERTRAN_EVENTS, learn_bertran_model
from repro.baselines.evaluation import run_windows, score_model
from repro.core.sampling import SamplingCampaign, learn_power_model
from repro.simcpu.spec import intel_core2duo_e6600
from repro.workloads.speccpu import APP_NAMES, spec_cpu_app
from repro.workloads.stress import CpuStress, MemoryStress, MixedStress

#: Steady-state settle (past the thermal time constant).
SETTLE_S = 100.0


def _training_workloads(threads):
    kib, mib = 1024, 1024 ** 2
    workloads = []
    for utilization in (0.5, 1.0):
        workloads.append(CpuStress(utilization=utilization, threads=threads))
        workloads.append(MixedStress(utilization=utilization,
                                     threads=threads))
        for working_set in (256 * kib, 8 * mib, 64 * mib):
            workloads.append(MemoryStress(
                utilization=utilization, threads=threads,
                working_set_bytes=working_set))
    return workloads


@pytest.fixture(scope="module")
def core2_spec():
    return intel_core2duo_e6600()


@pytest.fixture(scope="module")
def bertran_model(core2_spec):
    campaign = SamplingCampaign(
        core2_spec, events=BERTRAN_EVENTS,
        workloads=_training_workloads(core2_spec.num_threads),
        frequencies_hz=[core2_spec.max_frequency_hz],
        window_s=1.0, windows_per_run=4, settle_s=SETTLE_S, quantum_s=0.05)
    return learn_bertran_model(core2_spec, campaign=campaign,
                               idle_duration_s=15.0).model


@pytest.fixture(scope="module")
def speccpu_windows(core2_spec):
    """Each app measured alone at steady state, like Bertran's protocol."""
    windows = {}
    for name in APP_NAMES:
        windows[name] = run_windows(
            core2_spec, [spec_cpu_app(name)],
            frequency_hz=core2_spec.max_frequency_hz,
            events=BERTRAN_EVENTS, duration_s=30.0, window_s=1.0,
            settle_s=SETTLE_S, quantum_s=0.05,
            meter_seed=hash(name) % 10_000)
    return windows


def test_cmp_bertran_error_band(benchmark, core2_spec, bertran_model,
                                speccpu_windows, save_result):
    per_app = {}
    for name, windows in speccpu_windows.items():
        per_app[name] = score_model(bertran_model, windows)["mean_ape"]
    average = sum(per_app.values()) / len(per_app)

    rows = [[name, f"{error * 100:.2f}%"]
            for name, error in sorted(per_app.items())]
    rows.append(["average", f"{average * 100:.2f}%"])
    save_result("cmp_bertran", render_grid(
        ["SPEC CPU app", "mean APE"], rows,
        title="C1: decomposable model on Core 2 Duo "
              "(paper cites Bertran et al.: 4.63% average)"))

    benchmark.pedantic(
        lambda: score_model(bertran_model,
                            speccpu_windows[APP_NAMES[0]]),
        rounds=3, iterations=1)
    # The published shape: mid-single-digit average error.
    assert average < 0.09


def test_cmp_bertran_beats_generic_trio(core2_spec, bertran_model,
                                        speccpu_windows, benchmark,
                                        save_result):
    """On the same apps, the quick generic-trio methodology does worse."""
    trio_campaign = SamplingCampaign(
        core2_spec,
        workloads=paper_style_workloads(core2_spec.num_threads),
        frequencies_hz=[core2_spec.max_frequency_hz],
        window_s=1.0, windows_per_run=4, settle_s=0.5, quantum_s=0.05)
    trio_model = learn_power_model(core2_spec, campaign=trio_campaign,
                                   idle_duration_s=10.0).model

    def scores():
        bertran_errors = []
        trio_errors = []
        for windows in speccpu_windows.values():
            bertran_errors.append(
                score_model(bertran_model, windows)["mean_ape"])
            trio_errors.append(score_model(trio_model, windows)["mean_ape"])
        return (sum(bertran_errors) / len(bertran_errors),
                sum(trio_errors) / len(trio_errors))

    bertran_avg, trio_avg = benchmark.pedantic(scores, rounds=1,
                                               iterations=1)
    save_result("cmp_bertran_vs_trio",
                f"decomposable (steady-state, {len(BERTRAN_EVENTS)} events): "
                f"{bertran_avg * 100:.2f}%\n"
                f"generic trio (quick sampling, 3 events):   "
                f"{trio_avg * 100:.2f}%")
    assert bertran_avg < trio_avg

"""Simulator performance microbenchmark.

Records the two numbers the ROADMAP's "as fast as the hardware allows"
goal is tracked by:

* ``ticks_per_sec`` — single-process :meth:`Machine.step` throughput on
  a fully loaded i3-2120 (the hot path under every campaign and monitor),
* ``campaign_wall_s`` — wall time of the default Figure 1 sampling
  campaign (840 runs), serial and with a 4-worker process pool.

Results are written to ``BENCH_sim.json`` at the repository root so
future PRs can diff the perf trajectory.  Marked ``perf``: the tier-1
suite (``testpaths = ["tests"]``) never collects it; run it explicitly
with ``PYTHONPATH=src python -m pytest benchmarks/test_perf_sim.py -q``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.core.sampling import SamplingCampaign
from repro.simcpu import (InstructionMix, Machine, MemoryProfile,
                          ThreadAssignment, intel_i3_2120)

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: Steps for the Machine.step throughput measurement.
STEP_TICKS = 4000


def _full_load_assignments(spec):
    """One busy thread per logical CPU with mixed cpu/memory profiles."""
    assignments = []
    for cpu_id in range(spec.num_threads):
        memory_bound = cpu_id % 2 == 1
        assignments.append(ThreadAssignment(
            pid=100 + cpu_id, cpu_id=cpu_id, busy_fraction=0.9,
            mix=InstructionMix(fp_fraction=0.1 if memory_bound else 0.05),
            memory=MemoryProfile(
                mem_ops_per_instruction=0.4 if memory_bound else 0.15,
                working_set_bytes=(32 * 1024 * 1024 if memory_bound
                                   else 8 * 1024),
                locality=0.75 if memory_bound else 0.99),
        ))
    return assignments


def test_perf_sim_microbench():
    spec = intel_i3_2120()

    # -- Machine.step throughput -------------------------------------
    machine = Machine(spec)
    assignments = _full_load_assignments(spec)
    for _ in range(200):  # warm every memo cache before timing
        machine.step(assignments, dt_s=0.01)
    start = time.perf_counter()
    for _ in range(STEP_TICKS):
        machine.step(assignments, dt_s=0.01)
    step_elapsed = time.perf_counter() - start
    ticks_per_sec = STEP_TICKS / step_elapsed

    # -- default campaign wall time -----------------------------------
    campaign = SamplingCampaign(spec, window_s=1.0, windows_per_run=2)
    start = time.perf_counter()
    serial_dataset = campaign.run(workers=1)
    serial_wall_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel_dataset = campaign.run(workers=4)
    parallel_wall_s = time.perf_counter() - start

    assert len(serial_dataset) == len(parallel_dataset) > 0
    assert ticks_per_sec > 0

    results = {
        "ticks_per_sec": round(ticks_per_sec, 1),
        "campaign_wall_s": round(parallel_wall_s, 3),
        "campaign_wall_serial_s": round(serial_wall_s, 3),
        "campaign_workers": 4,
        "campaign_runs": len(campaign.run_plan()),
        "step_ticks_timed": STEP_TICKS,
        "python": platform.python_version(),
    }
    BENCH_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nticks/sec: {ticks_per_sec:,.0f}  "
          f"campaign serial: {serial_wall_s:.2f}s  "
          f"workers=4: {parallel_wall_s:.2f}s  -> {BENCH_PATH.name}")

"""Simulator performance microbenchmark.

Records the numbers the ROADMAP's "as fast as the hardware allows" goal
is tracked by:

* ``ticks_per_sec`` — single-process :meth:`Machine.step` throughput on
  a fully loaded i3-2120 (the hot path under every campaign and monitor),
* ``batched_ticks_per_sec`` — :meth:`Machine.run_batch` throughput for
  the same occupancy, the path campaigns and soaks advance thousands of
  ticks per Python-level call on,
* ``campaign_wall_by_workers`` — wall time of the default Figure 1
  sampling campaign (840 runs) at 1, 2 and 4 pool workers, with the
  chunked per-worker dispatch,
* ``adaptive`` — per-scenario tick counts and whole-run energy error of
  the adaptive sampler against full-resolution stepping.

Results are written to ``BENCH_sim.json`` at the repository root so
future PRs can diff the perf trajectory (``benchmarks/diff_bench.py``
does exactly that in CI).  Marked ``perf``: the tier-1 suite
(``testpaths = ["tests"]``) never collects it; run it explicitly with
``PYTHONPATH=src python -m pytest benchmarks/test_perf_sim.py -q``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.core.sampling import SamplingCampaign
from repro.simcpu import (AdaptiveConfig, AdaptiveSampler, InstructionMix,
                          Machine, MemoryProfile, ThreadAssignment,
                          intel_i3_2120)

pytestmark = pytest.mark.perf

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: Steps for the Machine.step throughput measurement.
STEP_TICKS = 4000
#: Steps for the Machine.run_batch throughput measurement.
BATCH_TICKS = 200_000


def _full_load_assignments(spec):
    """One busy thread per logical CPU with mixed cpu/memory profiles."""
    assignments = []
    for cpu_id in range(spec.num_threads):
        memory_bound = cpu_id % 2 == 1
        assignments.append(ThreadAssignment(
            pid=100 + cpu_id, cpu_id=cpu_id, busy_fraction=0.9,
            mix=InstructionMix(fp_fraction=0.1 if memory_bound else 0.05),
            memory=MemoryProfile(
                mem_ops_per_instruction=0.4 if memory_bound else 0.15,
                working_set_bytes=(32 * 1024 * 1024 if memory_bound
                                   else 8 * 1024),
                locality=0.75 if memory_bound else 0.99),
        ))
    return assignments


def _assignments(spec, busy, fp=0.2, mem=0.1, ws=1 << 16, locality=0.95):
    return [ThreadAssignment(
        pid=200 + cpu_id, cpu_id=cpu_id, busy_fraction=busy,
        mix=InstructionMix(fp_fraction=fp),
        memory=MemoryProfile(mem_ops_per_instruction=mem,
                             working_set_bytes=ws, locality=locality))
        for cpu_id in range(spec.num_threads)]


def _adaptive_scenarios(spec):
    """Two phased workload schedules with real transients to detect."""
    return {
        "phased-cpu": [
            (_assignments(spec, 0.9), 20.0),
            (_assignments(spec, 0.3), 10.0),
            (_assignments(spec, 1.0, fp=0.5), 20.0),
            ([], 5.0),
        ],
        "memory-churn": [
            (_assignments(spec, 0.6, mem=0.4, ws=1 << 24, locality=0.6), 15.0),
            (_assignments(spec, 0.2, mem=0.4, ws=1 << 24, locality=0.6), 10.0),
            (_assignments(spec, 0.8), 15.0),
        ],
    }


def test_perf_sim_microbench():
    spec = intel_i3_2120()

    # -- Machine.step throughput (tick-at-a-time façade) ---------------
    machine = Machine(spec)
    assignments = _full_load_assignments(spec)
    for _ in range(200):  # warm every memo cache before timing
        machine.step(assignments, dt_s=0.01)
    start = time.perf_counter()
    for _ in range(STEP_TICKS):
        machine.step(assignments, dt_s=0.01)
    step_elapsed = time.perf_counter() - start
    ticks_per_sec = STEP_TICKS / step_elapsed

    # -- Machine.run_batch throughput (batched engine) -----------------
    machine = Machine(spec)
    machine.run_batch(assignments, 200, dt_s=0.01)  # warm the program
    start = time.perf_counter()
    machine.run_batch(assignments, BATCH_TICKS, dt_s=0.01)
    batch_elapsed = time.perf_counter() - start
    batched_ticks_per_sec = BATCH_TICKS / batch_elapsed

    # -- default campaign wall time at 1/2/4 workers --------------------
    campaign = SamplingCampaign(spec, window_s=1.0, windows_per_run=2)
    wall_by_workers = {}
    datasets = {}
    for workers in (1, 2, 4):
        start = time.perf_counter()
        datasets[workers] = campaign.run(workers=workers)
        wall_by_workers[str(workers)] = round(time.perf_counter() - start, 3)
    assert len(datasets[1]) == len(datasets[2]) == len(datasets[4]) > 0
    assert ticks_per_sec > 0

    # -- adaptive sampling vs full resolution ---------------------------
    config = AdaptiveConfig()
    adaptive = {}
    for name, schedule in _adaptive_scenarios(spec).items():
        reference = Machine(spec)
        reference.set_frequency(spec.max_frequency_hz)
        energy_before = reference.energy_j
        for segment_assignments, duration_s in schedule:
            n_ticks = max(1, int(round(duration_s / config.fine_dt_s)))
            reference.run_batch(segment_assignments, n_ticks,
                                config.fine_dt_s)
        reference_energy_j = reference.energy_j - energy_before

        adaptive_machine = Machine(spec)
        adaptive_machine.set_frequency(spec.max_frequency_hz)
        report = AdaptiveSampler(adaptive_machine, config, seed=42).run(
            schedule)
        error_pct = (abs(report.energy_j - reference_energy_j)
                     / reference_energy_j * 100.0)
        assert error_pct <= 1.0, (name, error_pct)
        adaptive[name] = {
            "fine_ticks": report.fine_ticks,
            "coarse_ticks": report.coarse_ticks,
            "probe_windows": report.probe_windows,
            "tick_reduction": round(report.tick_reduction(config), 2),
            "energy_error_pct": round(error_pct, 4),
        }

    results = {
        "ticks_per_sec": round(ticks_per_sec, 1),
        "batched_ticks_per_sec": round(batched_ticks_per_sec, 1),
        "batch_ticks_timed": BATCH_TICKS,
        "campaign_wall_s": wall_by_workers["4"],
        "campaign_wall_serial_s": wall_by_workers["1"],
        "campaign_wall_by_workers": wall_by_workers,
        "campaign_workers": 4,
        "campaign_runs": len(campaign.run_plan()),
        "host_cpus": os.cpu_count(),
        "adaptive": adaptive,
        "step_ticks_timed": STEP_TICKS,
        "python": platform.python_version(),
    }
    BENCH_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nticks/sec: {ticks_per_sec:,.0f}  "
          f"batched: {batched_ticks_per_sec:,.0f}  "
          f"campaign workers 1/2/4: "
          f"{wall_by_workers['1']}/{wall_by_workers['2']}/"
          f"{wall_by_workers['4']}s  -> {BENCH_PATH.name}")

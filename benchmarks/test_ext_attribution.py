"""E1 — extension: validating *per-process* attribution against an oracle.

The paper promises power estimation "at process ... level", but its
evaluation (Figure 3) can only validate the *machine-level* sum — no
physical meter sees one process.  The simulated substrate can: the
ground-truth power model knows which process caused which watt
(:mod:`repro.simcpu.attribution`), enabling a validation the authors
could not run.

Finding (reproduced here as assertions): with the generic three-counter
model, per-process attribution errors are several times larger than the
machine-level error that Figure 3 reports, and close consumers can even
swap ranks — quantifying why the follow-up literature (BitWatts,
SmartWatts) kept working on attribution.
"""

import pytest

from repro.analysis.report import render_grid
from repro.core.monitor import PowerAPI
from repro.core.reporters import InMemoryReporter
from repro.os.kernel import SimKernel
from repro.simcpu.attribution import TrueProcessPower
from repro.workloads.stress import CpuStress, MemoryStress


@pytest.fixture(scope="module")
def attribution_run(i3_spec, paper_model):
    """One mixed run observed simultaneously by PowerAPI and the oracle."""
    kernel = SimKernel(i3_spec, quantum_s=0.05)
    oracle = TrueProcessPower(kernel.machine)
    pids = {
        "cpu-bound": kernel.spawn(
            CpuStress(utilization=1.0, duration_s=1000.0), name="cpu"),
        "memory-bound": kernel.spawn(
            MemoryStress(utilization=1.0, duration_s=1000.0,
                         working_set_bytes=64 * 1024 ** 2), name="mem"),
        "half-load": kernel.spawn(
            CpuStress(utilization=0.5, duration_s=1000.0), name="half"),
        "light": kernel.spawn(
            CpuStress(utilization=0.1, duration_s=1000.0), name="light"),
    }
    api = PowerAPI(kernel, paper_model, period_s=1.0)
    handle = api.monitor(*pids.values()).every(1.0).to(InMemoryReporter())
    api.run(60.0)
    estimated = {name: handle.pid_aggregator.energy_by_pid_j[pid]
                 for name, pid in pids.items()}
    true = {name: oracle.energy_j(pid) for name, pid in pids.items()}
    api.shutdown()
    return estimated, true


def test_ext_attribution_within_factor_two(benchmark, attribution_run,
                                           save_result):
    estimated, true = attribution_run

    def per_process_errors():
        return {name: (estimated[name] - true[name]) / true[name]
                for name in true}

    errors = benchmark(per_process_errors)
    rows = [[name, f"{true[name]:.0f} J", f"{estimated[name]:.0f} J",
             f"{errors[name] * 100:+.1f}%"]
            for name in sorted(true, key=lambda n: -true[n])]
    save_result("ext_attribution", render_grid(
        ["process", "true active energy", "estimated", "error"],
        rows,
        title="E1: per-process attribution vs the simulator's oracle "
              "(generic-trio model)"))

    # Attribution stays within a factor of two per process ...
    for name, error in errors.items():
        assert abs(error) < 1.0, f"{name}: {error:.2f}"


def test_ext_attribution_worse_than_machine_level(attribution_run,
                                                  benchmark, save_result):
    """The finding: per-process errors dwarf the machine-level error."""
    estimated, true = attribution_run

    def errors():
        machine = abs(sum(estimated.values()) - sum(true.values())) \
            / sum(true.values())
        per_process = sum(
            abs(estimated[name] - true[name]) / true[name]
            for name in true) / len(true)
        return machine, per_process

    machine_error, process_error = benchmark(errors)
    save_result("ext_attribution_gap",
                f"machine-level active-energy error: "
                f"{machine_error * 100:.1f}%\n"
                f"mean per-process attribution error: "
                f"{process_error * 100:.1f}%\n"
                "(Figure 3 can only ever validate the first number)")
    assert process_error > machine_error


def test_ext_well_separated_consumers_rank_correctly(attribution_run,
                                                     benchmark):
    """The paper's use case — identify the largest consumers — holds for
    clearly separated loads despite the attribution noise."""
    estimated, true = attribution_run

    def check():
        return (estimated["cpu-bound"] > estimated["half-load"]
                > estimated["light"],
                true["cpu-bound"] > true["half-load"] > true["light"])

    est_order, true_order = benchmark(check)
    assert est_order and true_order

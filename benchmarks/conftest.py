"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one artefact of the paper (a table, a figure,
or a comparison row).  Expensive set-up — model learning, long traces —
lives in session-scoped fixtures so the harness runs end-to-end in
minutes; rendered artefacts are written to ``benchmarks/results/`` and
echoed to stdout for the record.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.sampling import SamplingCampaign, learn_power_model
from repro.simcpu.spec import intel_i3_2120
from repro.workloads.stress import CpuStress, MemoryStress

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    """Write an artefact to benchmarks/results/<name>.txt and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def i3_spec():
    """The paper's evaluation machine."""
    return intel_i3_2120()


def paper_style_workloads(threads: int = 4):
    """The paper's sampling dimensions: CPU- and memory-intensive stress."""
    return [
        CpuStress(utilization=1.0, threads=threads),
        MemoryStress(utilization=1.0, threads=threads,
                     working_set_bytes=64 * 1024 ** 2),
        MemoryStress(utilization=1.0, threads=threads,
                     working_set_bytes=2 * 1024 ** 2),
    ]


def paper_campaign(spec, frequencies_hz=None):
    """A Figure 1 campaign with the paper's quick full-load methodology."""
    return SamplingCampaign(
        spec,
        workloads=paper_style_workloads(spec.num_threads),
        frequencies_hz=frequencies_hz,
        window_s=1.0,
        windows_per_run=4,
        settle_s=0.5,
        quantum_s=0.05,
    )


@pytest.fixture(scope="session")
def paper_model_report(i3_spec):
    """The generic-trio model learned the way the paper learns it."""
    return learn_power_model(i3_spec, campaign=paper_campaign(i3_spec),
                             idle_duration_s=20.0)


@pytest.fixture(scope="session")
def paper_model(paper_model_report):
    return paper_model_report.model

"""Diff a freshly measured BENCH_sim.json against the committed baseline.

CI runs the perf microbenchmarks on every push; this script turns the
result into a review signal: it compares the throughput metrics of the
fresh ``BENCH_sim.json`` against the baseline committed in git, prints a
markdown table (appended to ``$GITHUB_STEP_SUMMARY`` when set), and
flags any metric that regressed by more than the threshold.

Shared-runner timing noise is real, so the job stays non-blocking — the
annotation is for humans, the exit code (1 on regression) only colours
the non-blocking job.  Usage::

    python benchmarks/diff_bench.py BASELINE.json CURRENT.json [--threshold 10]
    python benchmarks/diff_bench.py BENCH_control.baseline.json \
        BENCH_control.json --higher mean_adherence \
        --lower mean_throughput_loss_pct,worst_overshoot_pct

Without ``--higher``/``--lower`` the defaults diff the simulator
throughput file (``BENCH_sim.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: Higher-is-better metrics diffed between baseline and current.
THROUGHPUT_METRICS = ("ticks_per_sec", "batched_ticks_per_sec")
#: Lower-is-better metrics diffed between baseline and current.
WALL_METRICS = ("campaign_wall_s", "campaign_wall_serial_s")


def diff_benchmarks(baseline: dict, current: dict, threshold_pct: float,
                    higher=THROUGHPUT_METRICS,
                    lower=WALL_METRICS) -> tuple[list, list]:
    """Returns (markdown table rows, regression messages)."""
    rows = []
    regressions = []
    for metric in tuple(higher) + tuple(lower):
        base = baseline.get(metric)
        new = current.get(metric)
        if base is None or new is None or not base:
            rows.append((metric, base, new, "n/a", ""))
            continue
        higher_is_better = metric in higher
        change_pct = (new - base) / base * 100.0
        regressed_pct = -change_pct if higher_is_better else change_pct
        flag = ""
        if regressed_pct > threshold_pct:
            flag = f"regression ({regressed_pct:+.1f}%)"
            regressions.append(
                f"{metric}: {base} -> {new} ({change_pct:+.1f}%)")
        rows.append((metric, base, new, f"{change_pct:+.1f}%", flag))
    return rows, regressions


def render_markdown(rows, regressions, threshold_pct) -> str:
    lines = ["### Simulator benchmark vs committed baseline", ""]
    lines.append("| metric | baseline | current | change | |")
    lines.append("|---|---|---|---|---|")
    for metric, base, new, change, flag in rows:
        lines.append(f"| {metric} | {base} | {new} | {change} | {flag} |")
    lines.append("")
    if regressions:
        lines.append(f"**{len(regressions)} metric(s) regressed more than "
                     f"{threshold_pct:.0f}%:**")
        lines.extend(f"- {entry}" for entry in regressions)
    else:
        lines.append(f"No regressions beyond {threshold_pct:.0f}%.")
    lines.append("")
    return "\n".join(lines)


def _metric_list(value: str) -> tuple:
    return tuple(name for name in value.split(",") if name)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold, percent (default 10)")
    parser.add_argument("--higher", type=_metric_list,
                        default=THROUGHPUT_METRICS, metavar="M1,M2",
                        help="comma-separated higher-is-better metrics "
                             f"(default: {','.join(THROUGHPUT_METRICS)})")
    parser.add_argument("--lower", type=_metric_list,
                        default=WALL_METRICS, metavar="M1,M2",
                        help="comma-separated lower-is-better metrics "
                             f"(default: {','.join(WALL_METRICS)})")
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; nothing to diff")
        return 0
    if not args.current.exists():
        print(f"no current results at {args.current}; benchmark did not run?")
        return 0
    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())

    rows, regressions = diff_benchmarks(baseline, current, args.threshold,
                                        higher=args.higher,
                                        lower=args.lower)
    markdown = render_markdown(rows, regressions, args.threshold)
    print(markdown)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as summary:
            summary.write(markdown + "\n")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())

"""Long-running fault-injection soak for the monitoring pipeline.

The tier-1 suite covers each fault class with a few seconds of virtual
time; this soak runs a 10-minute virtual campaign with a dense seeded
schedule of overlapping faults (meter dropouts, pid churn, slot
starvation, sample loss, actor crashes) and asserts the pipeline never
stalls, marks every hole, and stays deterministic across the run.

Marked ``slow`` + ``faults`` and placed outside ``testpaths``, so tier-1
never collects it.  Run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_faults_soak.py -q
"""

from __future__ import annotations

import pytest

from repro.actors.supervision import RestartStrategy
from repro.core.model import FrequencyFormula, PowerModel
from repro.core.monitor import PowerAPI
from repro.core.reporters import InMemoryReporter
from repro.faults import ActorCrash, FaultPlan
from repro.os.kernel import SimKernel
from repro.powermeter.powerspy import PowerSpy
from repro.simcpu.spec import intel_i3_2120
from repro.workloads.stress import CpuStress, MixedStress

pytestmark = [pytest.mark.slow, pytest.mark.faults]

SOAK_DURATION_S = 600.0
SEED = 20260806


def _soak_model():
    formulas = [FrequencyFormula(f, {"instructions": 3e-9,
                                     "cache-references": 2e-8,
                                     "cache-misses": 2e-7})
                for f in intel_i3_2120().frequencies_hz]
    return PowerModel(idle_w=31.48, formulas=formulas, name="soak-model")


def _soak_plan():
    """A dense seeded schedule plus periodic formula crashes."""
    plan = FaultPlan.random(SEED, duration_s=SOAK_DURATION_S,
                            meter_dropouts=6, pid_exits=2,
                            starvations=4, sample_losses=5)
    crashes = [ActorCrash(at_s=at, actor="formula-0")
               for at in (60.0, 240.0, 420.0)]
    return FaultPlan(list(plan.events) + crashes, seed=SEED)


def _run_soak():
    kernel = SimKernel(intel_i3_2120(), quantum_s=0.05)
    pids = [kernel.spawn(CpuStress(duration_s=SOAK_DURATION_S * 2),
                         name="steady"),
            kernel.spawn(MixedStress(duration_s=SOAK_DURATION_S * 2),
                         name="mixed"),
            kernel.spawn(CpuStress(utilization=0.3,
                                   duration_s=SOAK_DURATION_S * 2),
                         name="light")]
    api = PowerAPI(kernel, _soak_model())
    api.system.strategy = RestartStrategy(max_restarts=10,
                                          backoff_base_s=1.0)
    api.attach_meter(PowerSpy(kernel.machine, seed=SEED), name="meter")
    handle = api.monitor(*pids).every(1.0).to(InMemoryReporter())
    injector = api.install_faults(_soak_plan())
    api.run(SOAK_DURATION_S)
    api.flush()
    result = {
        "signature": handle.health.signature(),
        "series": handle.reporter.total_series(),
        "gaps": handle.reporter.gap_count(),
        "exhausted": injector.exhausted,
        "health": handle.health,
    }
    api.shutdown()
    return result


@pytest.fixture(scope="module")
def soak():
    return _run_soak()


def test_soak_pipeline_never_stalls(soak):
    # ~600 one-second periods; every one of them accounted for (power
    # report or marked gap), never a silent hole or an unhandled crash.
    assert len(soak["series"]) >= SOAK_DURATION_S * 0.95
    assert soak["exhausted"]


def test_soak_records_every_fault_class(soak, save_result):
    health = soak["health"]
    kinds = set(health.kinds())
    for expected in ("fault-injected", "meter-dropout", "meter-reconnected",
                     "degraded", "recovered", "pid-lost",
                     "actor-restart-scheduled", "actor-restarted"):
        assert expected in kinds, f"missing {expected} in soak health log"
    assert soak["gaps"] > 0
    lines = [f"soak: {SOAK_DURATION_S:.0f}s virtual, seed {SEED}",
             f"periods reported: {len(soak['series'])}",
             f"marked gap periods: {soak['gaps']}",
             f"health events: {len(health)}"]
    for kind in sorted(kinds):
        lines.append(f"  {kind}: {health.count(kind)}")
    save_result("faults_soak", "\n".join(lines))


def test_soak_is_reproducible():
    # The full 10-minute campaign replays to a byte-identical health log.
    assert _run_soak()["signature"] == _run_soak()["signature"]

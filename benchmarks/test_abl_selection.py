"""A1 — ablation: Spearman counter selection (the paper's future work).

The paper concludes that "only consider[ing] the generic counters is not
necessarily the most reliable solution leading to high errors" and plans
"the Spearman rank correlation for finding automatically the most
correlated ones with the power consumption".

Reproduction: rank every portable counter by Spearman correlation with
measured power on a rich sampling dataset, select a diverse top-3, learn
models on (a) the fixed generic trio and (b) the selected set, and score
both on held-out random workloads.  Expected shape: the automatic
selection demotes ``instructions`` (weakly correlated on this silicon),
promotes busy-time counters, and does not lose to the fixed trio.
"""

import pytest

from repro.analysis.report import render_grid
from repro.baselines.evaluation import run_windows, score_model
from repro.core.calibration import calibrate_idle_power
from repro.core.model import FrequencyFormula, PowerModel
from repro.core.regression import fit
from repro.core.sampling import SamplingCampaign
from repro.core.selection import rank_counters, select_counters
from repro.perf.events import portable_events
from repro.simcpu.counters import GENERIC_TRIO
from repro.workloads.mix import RandomWorkload
from repro.workloads.stress import CpuStress, MemoryStress, MixedStress


@pytest.fixture(scope="module")
def rich_dataset(i3_spec):
    """A sampling dataset with every portable event and varied load."""
    campaign = SamplingCampaign(
        i3_spec, events=portable_events(),
        workloads=[CpuStress(utilization=u, threads=t)
                   for u in (0.25, 0.5, 1.0) for t in (1, 4)]
        + [MemoryStress(utilization=u, threads=4, working_set_bytes=ws)
           for u in (0.5, 1.0)
           for ws in (2 * 1024 ** 2, 64 * 1024 ** 2)]
        + [MixedStress(utilization=u, threads=2) for u in (0.5, 1.0)],
        frequencies_hz=[i3_spec.max_frequency_hz],
        window_s=1.0, windows_per_run=4, settle_s=0.5, quantum_s=0.05)
    return campaign.run()


@pytest.fixture(scope="module")
def idle_w(i3_spec):
    return calibrate_idle_power(i3_spec, duration_s=10.0)


def _model_from(dataset, events, idle_w, frequency_hz):
    features, targets = dataset.feature_matrix(frequency_hz)
    active = [max(0.0, power - idle_w) for power in targets]
    result = fit(features, active, list(events), method="nnls",
                 fit_intercept=False)
    return PowerModel(idle_w, [FrequencyFormula(
        frequency_hz, dict(result.coefficients))])


@pytest.fixture(scope="module")
def holdout_windows(i3_spec):
    return run_windows(
        i3_spec,
        [RandomWorkload(duration_s=150.0, seed=33, threads=2),
         RandomWorkload(duration_s=150.0, seed=44, threads=2)],
        frequency_hz=i3_spec.max_frequency_hz, events=portable_events(),
        duration_s=150.0, window_s=1.0, quantum_s=0.05)


def test_abl_spearman_ranking(benchmark, rich_dataset, save_result):
    ranking = benchmark(rank_counters, rich_dataset, method="spearman")
    scores = dict(ranking.ranked)

    rows = [[event, f"{score:.3f}"] for event, score in ranking.ranked]
    save_result("abl_selection_ranking", render_grid(
        ["portable event", "|spearman| vs power"], rows,
        title="A1: Spearman correlation ranking "
              "(the paper's proposed automatic selection)"))

    # The paper's suspicion confirmed: the fixed trio is not optimal —
    # plain instruction counting correlates weakly once IPC varies.
    assert scores["cycles"] > scores["instructions"]
    # Cache activity genuinely tracks power (the paper's observation).
    assert scores["cache-references"] > 0.5


def test_abl_selected_vs_fixed_trio(benchmark, i3_spec, rich_dataset,
                                    idle_w, holdout_windows, save_result):
    frequency = i3_spec.max_frequency_hz
    selected = select_counters(rich_dataset, k=3, method="spearman")
    trio_model = _model_from(rich_dataset, GENERIC_TRIO, idle_w, frequency)
    selected_model = _model_from(rich_dataset, selected, idle_w, frequency)

    def scores():
        return (score_model(trio_model, holdout_windows)["median_ape"],
                score_model(selected_model, holdout_windows)["median_ape"])

    trio_error, selected_error = benchmark.pedantic(scores, rounds=1,
                                                    iterations=1)
    save_result("abl_selection", render_grid(
        ["counter set", "median APE (held-out random load)"],
        [[" + ".join(GENERIC_TRIO), f"{trio_error * 100:.2f}%"],
         [" + ".join(selected), f"{selected_error * 100:.2f}%"]],
        title="A1: fixed generic trio vs Spearman-selected counters"))

    # Selection must not lose to the fixed trio (the paper's hypothesis
    # is that it wins; on this substrate it wins modestly).
    assert selected_error <= trio_error * 1.05


def test_abl_diverse_selection_avoids_duplicates(rich_dataset, benchmark):
    """Redundancy filtering spends the 3 slots on distinct signals."""
    naive = select_counters(rich_dataset, k=3, max_redundancy=None)
    diverse = benchmark(select_counters, rich_dataset, 3)
    # The naive top-3 contains near-duplicates (LLC loads ~ references);
    # the diverse set must not pick both spellings of the same signal.
    assert not {"cache-references", "LLC-loads"} <= set(diverse)
    assert len(set(diverse)) == 3
    del naive

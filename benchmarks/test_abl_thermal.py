"""A4 — ablation: sampling settle time vs hot-run accuracy.

Mechanism check for the Figure 3 error: the paper's quick stress
sampling runs seconds per operating point, but silicon leakage keeps
rising for ~2 thermal time constants.  Training three otherwise
identical models with increasing settle time and scoring them on a
*hot* sustained run isolates how much of the 15 % headline error is the
cold-training artefact.
"""

import pytest

from conftest import paper_style_workloads

from repro.analysis.report import render_grid
from repro.baselines.evaluation import run_windows, score_model
from repro.core.sampling import SamplingCampaign, learn_power_model
from repro.workloads.stress import CpuStress, MemoryStress

#: Settle times to sweep: cold (the paper's style), warm, steady-state.
SETTLES_S = (0.5, 30.0, 100.0)


@pytest.fixture(scope="module")
def models_by_settle(i3_spec):
    models = {}
    for settle_s in SETTLES_S:
        campaign = SamplingCampaign(
            i3_spec, workloads=paper_style_workloads(),
            frequencies_hz=[i3_spec.max_frequency_hz],
            window_s=1.0, windows_per_run=4, settle_s=settle_s,
            quantum_s=0.05)
        models[settle_s] = learn_power_model(
            i3_spec, campaign=campaign, idle_duration_s=10.0).model
    return models


@pytest.fixture(scope="module")
def hot_windows(i3_spec):
    """A sustained mixed run, well past thermal equilibrium."""
    return run_windows(
        i3_spec,
        [CpuStress(utilization=1.0, threads=2, duration_s=1000.0),
         MemoryStress(utilization=1.0, threads=2, duration_s=1000.0,
                      working_set_bytes=64 * 1024 ** 2)],
        frequency_hz=i3_spec.max_frequency_hz,
        duration_s=30.0, window_s=1.0, settle_s=120.0, quantum_s=0.05)


def test_abl_settle_time_reduces_hot_error(benchmark, models_by_settle,
                                           hot_windows, save_result):
    def sweep():
        return {settle: score_model(model, hot_windows)["median_ape"]
                for settle, model in models_by_settle.items()}

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[f"{settle:.1f} s", f"{errors[settle] * 100:.1f}%"]
            for settle in SETTLES_S]
    save_result("abl_thermal", render_grid(
        ["training settle per point", "median APE on hot 30 s run"], rows,
        title="A4: cold sampling (the paper's quick methodology) "
              "underestimates hot runs"))

    # Longer settle monotonically reduces the hot-run error and the
    # steady-state model cuts the cold model's error by at least a third.
    cold, warm, steady = (errors[s] for s in SETTLES_S)
    assert steady < warm < cold
    assert steady < cold * 0.67


def test_abl_cold_model_underestimates(models_by_settle, hot_windows,
                                       benchmark):
    """The cold model's error is specifically *under*-estimation."""
    cold_model = models_by_settle[SETTLES_S[0]]

    def mean_bias():
        deltas = [cold_model.predict_total(w.frequency_hz, w.features)
                  - w.power_w for w in hot_windows]
        return sum(deltas) / len(deltas)

    bias = benchmark(mean_bias)
    assert bias < -2.0  # watts below the meter, like Figure 3's plateaus

"""A2 — ablation: per-frequency models vs one global linear model.

The paper's model structure computes "one power model per frequency"
(Section 3) because voltage scaling makes power superlinear in frequency:
a single linear model over counter rates cannot represent ten P-states at
once.  This ablation quantifies that design choice.
"""

import pytest

from repro.analysis.report import render_grid
from repro.baselines.evaluation import run_windows, score_model
from repro.core.model import FrequencyFormula, PowerModel
from repro.core.regression import fit
from repro.core.sampling import learn_power_model
from repro.simcpu.counters import CACHE_MISSES, CACHE_REFERENCES, CYCLES
from repro.workloads.mix import RandomWorkload

#: Both structures get the same adequate event set (busy time + caches),
#: so the ablation isolates the per-frequency-vs-pooled choice rather
#: than re-testing the trio's known weaknesses.
EVENTS = (CYCLES, CACHE_REFERENCES, CACHE_MISSES)


@pytest.fixture(scope="module")
def frequency_report(i3_spec):
    """Per-frequency models over a three-frequency ladder subset.

    Trained on the richer utilisation grid (partial loads included) so
    both model structures see the same training distribution and the
    ablation isolates only the per-frequency-vs-pooled choice.
    """
    from repro.core.sampling import SamplingCampaign
    from repro.workloads.stress import CpuStress, MemoryStress

    frequencies = [i3_spec.min_frequency_hz,
                   i3_spec.frequencies_hz[len(i3_spec.frequencies_hz) // 2],
                   i3_spec.max_frequency_hz]
    workloads = ([CpuStress(utilization=u, threads=t)
                  for u in (0.25, 0.5, 1.0) for t in (1, 4)]
                 + [MemoryStress(utilization=u, threads=4,
                                 working_set_bytes=ws)
                    for u in (0.5, 1.0)
                    for ws in (2 * 1024 ** 2, 64 * 1024 ** 2)])
    campaign = SamplingCampaign(
        i3_spec, events=EVENTS, workloads=workloads,
        frequencies_hz=frequencies,
        window_s=1.0, windows_per_run=4, settle_s=0.5, quantum_s=0.05)
    return learn_power_model(i3_spec, events=EVENTS, campaign=campaign,
                             idle_duration_s=10.0)


@pytest.fixture(scope="module")
def global_model(i3_spec, frequency_report):
    """One formula fitted on the pooled all-frequency dataset."""
    features, targets = frequency_report.dataset.feature_matrix(None)
    idle_w = frequency_report.idle_w
    active = [max(0.0, power - idle_w) for power in targets]
    result = fit(features, active, list(EVENTS), method="nnls",
                 fit_intercept=False)
    return PowerModel(idle_w, [FrequencyFormula(
        i3_spec.max_frequency_hz, dict(result.coefficients))],
        name="global-pooled")


@pytest.fixture(scope="module")
def dvfs_windows(i3_spec, frequency_report):
    """Held-out load levels pinned in turn at each modelled frequency.

    Sweeping the ladder exposes the structural question cleanly: a global
    linear formula must mispredict at the P-states it averaged away.  The
    evaluation workloads stay within the training family (stress at
    *unseen* utilisation levels, cold silicon, short runs) so the only
    generalisation demanded is across frequency — exactly the axis the
    two structures differ on.
    """
    from repro.workloads.stress import CpuStress, MemoryStress

    held_out = [
        [CpuStress(utilization=0.85, threads=4, duration_s=100.0)],
        [CpuStress(utilization=0.4, threads=2, duration_s=100.0)],
        [MemoryStress(utilization=0.85, threads=4, duration_s=100.0,
                      working_set_bytes=16 * 1024 ** 2)],
    ]
    windows = []
    run = 0
    for frequency in frequency_report.model.frequencies_hz:
        for workloads in held_out:
            run += 1
            windows.extend(run_windows(
                i3_spec, workloads,
                frequency_hz=frequency, events=EVENTS,
                duration_s=10.0, window_s=1.0,
                quantum_s=0.05, meter_seed=6600 + run))
    return windows


def test_abl_per_frequency_beats_global(benchmark, frequency_report,
                                        global_model, dvfs_windows,
                                        save_result):
    per_frequency = frequency_report.model
    frequencies = per_frequency.frequencies_hz

    def scores():
        rows = []
        for frequency in frequencies:
            at_frequency = [w for w in dvfs_windows
                            if w.frequency_hz == frequency]
            rows.append((
                frequency,
                score_model(per_frequency, at_frequency)["median_ape"],
                score_model(global_model, at_frequency)["median_ape"],
            ))
        overall = (score_model(per_frequency, dvfs_windows)["median_ape"],
                   score_model(global_model, dvfs_windows)["median_ape"])
        return rows, overall

    rows, overall = benchmark.pedantic(scores, rounds=1, iterations=1)
    grid = [[f"{frequency / 1e9:.2f} GHz",
             f"{per_freq * 100:.2f}%", f"{pooled * 100:.2f}%"]
            for frequency, per_freq, pooled in rows]
    grid.append(["overall", f"{overall[0] * 100:.2f}%",
                 f"{overall[1] * 100:.2f}%"])
    save_result("abl_per_frequency", render_grid(
        ["pinned frequency", "per-frequency (paper)", "pooled global"],
        grid,
        title="A2: the per-frequency model structure under a DVFS sweep"))

    # Overall the paper's structure wins; at the low end — the P-states a
    # pooled fit averages away — it must win decisively.
    assert overall[0] < overall[1]
    low_frequency, low_per_freq, low_pooled = rows[0]
    assert low_per_freq < low_pooled


def test_abl_formulas_differ_across_frequencies(frequency_report, benchmark):
    """The learned formulas are genuinely frequency-dependent."""
    model = frequency_report.model
    rates = {"instructions": 2e9, "cache-references": 2e8,
             "cache-misses": 2e7}
    low = model.predict_active(model.frequencies_hz[0], rates)
    high = benchmark(model.predict_active, model.frequencies_hz[-1], rates)
    # Same counter rates cost visibly more at high frequency/voltage.
    assert high > low * 1.2

"""E3 — extension: how far better sampling takes the same three counters.

The paper blames its 15 % median error partly on the generic counters
("only consider the generic counters is not necessarily the most
reliable solution").  A4 and A1 decompose the error; this experiment
composes the fixes: same machine, same SPECjbb trace, same three
counters — but a best-practice campaign (partial-load levels, thread
sweep, several working sets, thermal steady-state settle) instead of the
quick full-load one.

Shape claim: the paper's ~15 % drops into the mid single digits without
touching the model form, showing the error was mostly methodology, not
metric choice.
"""

import pytest

from conftest import paper_campaign

from repro.analysis.traces import PowerTrace, compare
from repro.core.monitor import PowerAPI
from repro.core.reporters import InMemoryReporter
from repro.core.sampling import SamplingCampaign, learn_power_model
from repro.os.kernel import SimKernel
from repro.powermeter.powerspy import PowerSpy
from repro.workloads.specjbb import SpecJbbWorkload
from repro.workloads.stress import CpuStress, MemoryStress, MixedStress

TRACE_S = 600.0


def best_practice_campaign(spec):
    """Partial loads, thread sweep, working-set sweep, steady-state settle."""
    mib = 1024 ** 2
    workloads = (
        [CpuStress(utilization=u, threads=t)
         for u in (0.3, 0.6, 1.0) for t in (1, 4)]
        + [MemoryStress(utilization=u, threads=4, working_set_bytes=ws)
           for u in (0.5, 1.0) for ws in (2 * mib, 64 * mib)]
        + [MixedStress(utilization=0.7, threads=2)]
    )
    return SamplingCampaign(
        spec, workloads=workloads,
        frequencies_hz=[spec.max_frequency_hz],
        window_s=1.0, windows_per_run=3, settle_s=100.0, quantum_s=0.05)


def specjbb_error(spec, model, meter_seed=777):
    kernel = SimKernel(spec, quantum_s=0.05)
    meter = PowerSpy(kernel.machine, sample_rate_hz=1.0, seed=meter_seed)
    meter.connect()
    pid = kernel.spawn(SpecJbbWorkload(duration_s=TRACE_S, threads=4),
                       name="specjbb")
    api = PowerAPI(kernel, model, period_s=1.0)
    handle = api.monitor(pid).every(1.0).to(InMemoryReporter())
    api.run(TRACE_S)
    measured = PowerTrace.from_samples("powerspy", meter.samples)
    estimated = PowerTrace.from_series("estimate",
                                       handle.reporter.time_series(),
                                       handle.reporter.total_series())
    summary = compare(measured, estimated)
    api.shutdown()
    return summary["median_ape"]


def test_ext_best_practice_halves_the_error(benchmark, i3_spec,
                                            save_result):
    paper_style = learn_power_model(
        i3_spec,
        campaign=paper_campaign(i3_spec,
                                frequencies_hz=[i3_spec.max_frequency_hz]),
        idle_duration_s=10.0).model
    best = learn_power_model(
        i3_spec, campaign=best_practice_campaign(i3_spec),
        idle_duration_s=10.0).model

    def evaluate():
        return (specjbb_error(i3_spec, paper_style),
                specjbb_error(i3_spec, best))

    paper_error, best_error = benchmark.pedantic(evaluate, rounds=1,
                                                 iterations=1)
    save_result("ext_best_practice",
                "E3: same machine, same SPECjbb trace, same 3 counters\n"
                f"paper-style quick sampling:       "
                f"{paper_error * 100:.1f}% median APE\n"
                f"best-practice sampling campaign:  "
                f"{best_error * 100:.1f}% median APE\n"
                "(partial loads + thread sweep + working-set sweep + "
                "thermal steady-state settle)")

    # The composition of fixes at least halves the paper's error.
    assert best_error < paper_error * 0.5
    assert best_error < 0.08
